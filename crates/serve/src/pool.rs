//! Multi-device sharded serving: the `ks-pool` routing tier.
//!
//! Kernel summation is a pure sum over the source set, so a row-wise
//! partition of `A` across devices merges *exactly*: output row `i`
//! depends only on its own `A` row (plus all of `B`/`W`), and both
//! backends evaluate that row in a fixed order independent of the
//! partition. The pool exploits this: each batch is sharded over `N`
//! simulated devices with [`shard_ranges`] (128-row aligned, matching
//! the GPU block tile), the per-device partial `V` slices are merged
//! by concatenation in shard order, and the pooled result is
//! **bit-identical** to the single-device solve — the invariant
//! `tests/pool_differential.rs` pins.
//!
//! Architecture:
//!
//! * The **coordinator** (the server's worker thread) owns the
//!   per-device shard-plan caches and all placement decisions, made
//!   synchronously at enqueue time via [`crate::router::place`] —
//!   cache-first, then load-aware. Keeping routing out of the device
//!   threads makes warm/cold accounting (and therefore transfer bytes
//!   and simulated time) deterministic.
//! * Each device has a bounded task queue and a host thread. Idle
//!   threads **steal** from other queues (deterministic ring scan),
//!   but a stolen task still executes against its *owner's* device
//!   model, breaker and interconnect — stealing parallelises the
//!   host-side simulation without changing any modelled outcome.
//! * Each device has its own [`DeviceConfig`] (including an optional
//!   fault spec) and circuit breaker. A shard attempt that fails to
//!   launch or trips ABFT verification records a failure on *its own*
//!   breaker and completes on the bit-exact CPU fused path, so a sick
//!   device degrades without taking the pool down — and without ever
//!   failing a batch.
//! * Host↔device traffic is charged per shard through the owner's
//!   [`Interconnect`]: the shard's `A`-pack + norms upload on a cold
//!   placement, the `B`/`W` uploads and the `V` download always. The
//!   costs land as transfer entries on the shard's pipeline profile
//!   and in the per-device report.
//!
//! Simulated batch latency is the **max** over shard pipelines
//! (kernels + transfers): devices run concurrently, so the slowest
//! shard sets the pace. [`PoolReport::sim_time_s`] accumulates that
//! per-batch max — the quantity `pool_bench` compares across pool
//! sizes.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

use ks_core::plan::{shard_ranges, SourcePlan};
use ks_core::problem::PointSet;
use ks_core::FusedCpuConfig;
use ks_gpu_kernels::{TileGeometry, VerifyReport};
use ks_gpu_sim::config::{DeviceConfig, Interconnect};
use ks_gpu_sim::device::GpuDevice;
use ks_gpu_sim::fault::{DevicePhase, LifecycleSpec, LifecycleState, LinkFaultState};
use ks_gpu_sim::profiler::PipelineProfile;
use ks_gpu_sim::timing::{estimate_transfer, estimate_transfer_faulted};

use crate::cache::{PlanCacheStats, PlanKey};
use crate::executor;
use crate::health::{lifecycle_counter, HealthConfig, HealthMonitor, ShardHealth};
use crate::packed::{self, PackedSegment};
use crate::queue::BoundedQueue;
use crate::server::{
    injected_data_faults, splitmix64, Breaker, Query, ResilienceConfig, ServeBackend,
};

/// Rows per shard-alignment tile: the GPU block tile, so shard
/// boundaries never split a 128-row block and padding stays minimal.
pub const SHARD_ALIGN: usize = 128;

/// One slot of the pool: a device model plus the link it sits on.
#[derive(Debug, Clone)]
pub struct PoolDevice {
    /// The simulated device (its own fault spec, clocks, caches).
    pub device: DeviceConfig,
    /// The host↔device link shard traffic is charged through (its own
    /// optional link-fault spec — see
    /// [`ks_gpu_sim::fault::LinkFaultSpec`]).
    pub interconnect: Interconnect,
    /// Device-lifecycle fault injection (hang/loss/recovery per pool
    /// batch), or `None` for a device that never flaps. A property of
    /// the *slot*, like the interconnect.
    pub lifecycle: Option<LifecycleSpec>,
}

/// Pool shape and sizing.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// The devices; shard count per batch is at most `devices.len()`.
    pub devices: Vec<PoolDevice>,
    /// Per-device task queue bound.
    pub queue_capacity: usize,
    /// Per-device shard-plan cache capacity (entries).
    pub plan_cache_capacity: usize,
    /// Shard alignment in rows. Keep it a multiple of [`SHARD_ALIGN`]
    /// (the GPU block tile) for the bit-identity argument to cover the
    /// GPU backend.
    pub shard_align: usize,
    /// Eviction/readmission policy of the pool's health monitor.
    pub health: HealthConfig,
}

impl PoolConfig {
    /// `n` identical devices on identical links, with defaults sized
    /// so one batch's shards never deadlock on queue backpressure.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[must_use]
    pub fn homogeneous(n: usize, device: DeviceConfig, interconnect: Interconnect) -> Self {
        assert!(n > 0, "pool needs at least one device");
        Self {
            devices: vec![
                PoolDevice {
                    device,
                    interconnect,
                    lifecycle: None,
                };
                n
            ],
            queue_capacity: (2 * n).max(4),
            plan_cache_capacity: 8,
            shard_align: SHARD_ALIGN,
            health: HealthConfig::default(),
        }
    }
}

/// Per-device accounting, reported at shutdown.
#[derive(Debug, Clone, Default)]
pub struct DeviceReport {
    /// Device name (from its config).
    pub name: String,
    /// Shard tasks placed on (owned by) this device.
    pub shard_tasks: u64,
    /// Tasks this device's thread executed (own or stolen).
    pub executed: u64,
    /// Of `executed`: tasks stolen from another device's queue.
    pub stolen: u64,
    /// Shards completed on this device's GPU model.
    pub gpu_shards: u64,
    /// Shards recovered on the bit-exact CPU path (launch failure,
    /// detected corruption, or an open breaker).
    pub cpu_fallbacks: u64,
    /// ABFT verification failures on this device's attempts.
    pub corruption_detected: u64,
    /// Injected data-fault events observed in completed profiles.
    pub injected_faults: u64,
    /// Circuit-breaker transitions to open.
    pub breaker_trips: u64,
    /// Circuit-breaker recoveries.
    pub breaker_resets: u64,
    /// Health-monitor evictions (flaps count each time).
    pub evictions: u64,
    /// Health-monitor readmissions after a successful probe.
    pub readmissions: u64,
    /// Attempts that hit a lifecycle hang on this device.
    pub lifecycle_hangs: u64,
    /// Attempts that hit a (permanent) lifecycle loss.
    pub lifecycle_losses: u64,
    /// Transfers over this device's link that timed out (each fails
    /// its shard attempt; the shard recovers on the CPU path).
    pub link_timeouts: u64,
    /// In-flight corruptions the link CRC check caught.
    pub link_crc_detected: u64,
    /// Retransmissions recovering those corruptions.
    pub link_retransmits: u64,
    /// Shard-plan cache counters (coordinator-resolved).
    pub plan_cache: PlanCacheStats,
    /// Bytes moved over this device's interconnect.
    pub transfer_bytes: u64,
    /// Modelled time spent moving them, in seconds.
    pub transfer_time_s: f64,
    /// Summed simulated pipeline time of this device's GPU shards
    /// (kernels + transfers).
    pub busy_time_s: f64,
}

/// Pool-level accounting, attached to
/// [`crate::server::ServeReport::pool`].
#[derive(Debug, Clone, Default)]
pub struct PoolReport {
    /// Per-device reports, in device order.
    pub devices: Vec<DeviceReport>,
    /// Batches the pool executed.
    pub batches: u64,
    /// Shard tasks across all batches.
    pub shard_tasks: u64,
    /// Tasks executed by a thread other than their owner's.
    pub stolen_tasks: u64,
    /// Simulated serving time: Σ over batches of the slowest shard's
    /// pipeline time (devices run concurrently).
    pub sim_time_s: f64,
}

impl PoolReport {
    /// Total shards recovered on the CPU path across devices.
    #[must_use]
    pub fn total_fallbacks(&self) -> u64 {
        self.devices.iter().map(|d| d.cpu_fallbacks).sum()
    }

    /// Total breaker trips across devices.
    #[must_use]
    pub fn total_trips(&self) -> u64 {
        self.devices.iter().map(|d| d.breaker_trips).sum()
    }

    /// Total health-monitor evictions across devices.
    #[must_use]
    pub fn total_evictions(&self) -> u64 {
        self.devices.iter().map(|d| d.evictions).sum()
    }

    /// Total readmissions across devices.
    #[must_use]
    pub fn total_readmissions(&self) -> u64 {
        self.devices.iter().map(|d| d.readmissions).sum()
    }

    /// Total link timeouts across devices.
    #[must_use]
    pub fn total_link_timeouts(&self) -> u64 {
        self.devices.iter().map(|d| d.link_timeouts).sum()
    }
}

/// What one batch hands back to the server loop.
pub(crate) struct PoolBatch {
    /// Per-query result columns, merged to full `M` length.
    pub results: Vec<Vec<f32>>,
    /// Shard pipeline profiles in shard order (pure-CPU shards have
    /// none).
    pub profiles: Vec<PipelineProfile>,
    /// ABFT verification failures across the batch's shards.
    pub corruption_detected: u64,
    /// Injected data faults observed across the batch's shards.
    pub injected_faults: u64,
    /// Shards that recovered on the CPU path this batch.
    pub fallback_shards: u64,
    /// Shards whose completed GPU attempt recorded injected faults
    /// the checks (if any) did not catch — masked flips or faults
    /// outside ABFT coverage.
    pub undetected_shards: u64,
}

/// Result of one shard task.
struct ShardOutcome {
    /// Per-query columns over the shard's rows.
    results: Vec<Vec<f32>>,
    profile: Option<PipelineProfile>,
    fallback: bool,
    corruption: u64,
    injected: u64,
    /// What the attempt revealed about the owner device's health.
    health: ShardHealth,
    /// Lifecycle fault that forced the fallback, if any.
    lifecycle: Option<DevicePhase>,
}

/// Rendezvous for one batch's tasks (row shards or packed
/// sub-launches).
struct BatchMerge<T> {
    slots: Mutex<Vec<Option<T>>>,
    done: Condvar,
}

impl<T> BatchMerge<T> {
    fn new(slots: usize) -> Self {
        Self {
            slots: Mutex::new((0..slots).map(|_| None).collect()),
            done: Condvar::new(),
        }
    }

    fn complete(&self, slot: usize, outcome: T) {
        let mut g = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        debug_assert!(g[slot].is_none(), "merge slot filled twice");
        g[slot] = Some(outcome);
        drop(g);
        self.done.notify_all();
    }

    /// Blocks until every slot is filled; returns outcomes in slot
    /// order.
    fn wait(&self) -> Vec<T> {
        let mut g = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if g.iter().all(Option::is_some) {
                return g
                    .iter_mut()
                    .map(|s| s.take().expect("all filled"))
                    .collect();
            }
            g = self.done.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// One unit of device work: a shard of one coalesced batch, bound at
/// placement time to its owner device's model, link, warmth and
/// breaker — so a steal changes *which host thread* runs the
/// simulation, never what is simulated.
struct ShardTask {
    plan: Arc<SourcePlan>,
    targets: Arc<PointSet>,
    h: f32,
    weights: Arc<Vec<Vec<f32>>>,
    warm: bool,
    owner: usize,
    device: DeviceConfig,
    interconnect: Interconnect,
    /// The owner's lifecycle phase this batch, drawn by the
    /// coordinator and bound here so a steal never re-draws it.
    phase: DevicePhase,
    batch_idx: u64,
    slot: usize,
    merge: Arc<BatchMerge<ShardOutcome>>,
}

/// One device's slice of a horizontally-fused wave: the segments
/// placed on `owner`, executed as a single packed launch on its
/// device model (see [`crate::packed`]). Like [`ShardTask`], bound at
/// placement time so a steal never changes what is simulated.
struct PackedTask {
    /// The owner's segments, warm flags resolved against its history.
    segments: Vec<PackedSegment>,
    /// Wave-level index of each segment (for the merge).
    seg_indices: Vec<usize>,
    owner: usize,
    device: DeviceConfig,
    interconnect: Interconnect,
    /// The owner's lifecycle phase this wave (coordinator-drawn).
    phase: DevicePhase,
    batch_idx: u64,
    slot: usize,
    merge: Arc<BatchMerge<PackedTaskOutcome>>,
}

/// Result of one packed sub-launch.
struct PackedTaskOutcome {
    /// Wave-level index of each segment, matching `results`/`fallback`.
    seg_indices: Vec<usize>,
    /// Per-segment per-query result columns.
    results: Vec<Vec<Vec<f32>>>,
    /// Per-segment CPU-recovery flags (launch failure, detected
    /// corruption, or an open breaker).
    fallback: Vec<bool>,
    profile: Option<PipelineProfile>,
    corruption: u64,
    injected: u64,
    /// Whether a fused GPU launch completed on the owner's device.
    gpu_launch: bool,
    /// What the sub-launch revealed about the owner's health.
    health: ShardHealth,
    /// Lifecycle fault that forced the recovery, if any.
    lifecycle: Option<DevicePhase>,
}

/// A unit of device work: a row shard of one coalesced batch, or one
/// device's packed sub-launch of a horizontally-fused wave.
enum PoolTask {
    Shard(ShardTask),
    Packed(PackedTask),
}

/// Execution policy shared by every device thread.
struct PoolPolicy {
    /// Serve shards on the CPU fused path only (no GPU, no breaker).
    cpu_only: bool,
    /// Run GPU shard attempts through the ABFT-verified pipeline.
    verify: bool,
    cpu: FusedCpuConfig,
    /// Tile geometry every GPU shard launches with.
    geometry: TileGeometry,
}

/// State shared between the coordinator and the device threads.
struct Shared {
    queues: Vec<Arc<BoundedQueue<PoolTask>>>,
    breakers: Vec<Mutex<Breaker>>,
    stats: Vec<Mutex<DeviceReport>>,
    policy: PoolPolicy,
    /// Bumped (under the lock) whenever work is enqueued.
    work_seq: Mutex<u64>,
    work: Condvar,
    closed: AtomicBool,
}

/// Key of the per-device shard-plan caches: the batch-level plan key
/// plus the shard's full row range. Both endpoints matter — shards of
/// one corpus share a start row whenever an eviction or readmission
/// re-plans the shard count (`0..128` in a four-way split, `0..256`
/// in the three-way split that replaces it), and equal-length shards
/// share an extent — so either alone would alias.
#[derive(PartialEq, Eq, Hash, Clone, Copy)]
struct ShardKey {
    plan: PlanKey,
    row0: usize,
    rows: usize,
}

const NIL: usize = usize::MAX;

/// A small O(1) LRU map for shard plans — same intrusive-list design
/// as [`crate::cache::PlanCache`], private to the pool because its
/// key carries the shard offset.
struct ShardPlanCache {
    capacity: usize,
    map: HashMap<ShardKey, usize>,
    slab: Vec<(ShardKey, Arc<SourcePlan>, usize, usize)>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    stats: PlanCacheStats,
}

impl ShardPlanCache {
    fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "shard-plan cache capacity must be positive");
        Self {
            capacity,
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            stats: PlanCacheStats::default(),
        }
    }

    fn contains(&self, key: &ShardKey) -> bool {
        self.map.contains_key(key)
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].2, self.slab[idx].3);
        if prev == NIL {
            self.head = next;
        } else {
            self.slab[prev].3 = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slab[next].2 = prev;
        }
    }

    fn push_mru(&mut self, idx: usize) {
        self.slab[idx].2 = self.tail;
        self.slab[idx].3 = NIL;
        if self.tail == NIL {
            self.head = idx;
        } else {
            self.slab[self.tail].3 = idx;
        }
        self.tail = idx;
    }

    /// Returns `(shard plan, was_hit)`, building by slicing `full` on
    /// a miss.
    fn get_or_slice(
        &mut self,
        key: ShardKey,
        full: &SourcePlan,
        rows: std::ops::Range<usize>,
    ) -> (Arc<SourcePlan>, bool) {
        if let Some(&idx) = self.map.get(&key) {
            self.unlink(idx);
            self.push_mru(idx);
            self.stats.hits += 1;
            return (Arc::clone(&self.slab[idx].1), true);
        }
        self.stats.misses += 1;
        if self.map.len() >= self.capacity {
            let victim = self.head;
            self.unlink(victim);
            self.map.remove(&self.slab[victim].0);
            self.free.push(victim);
            self.stats.evictions += 1;
        }
        let plan = Arc::new(full.shard(rows));
        let entry = (key, Arc::clone(&plan), NIL, NIL);
        let idx = match self.free.pop() {
            Some(slot) => {
                self.slab[slot] = entry;
                slot
            }
            None => {
                self.slab.push(entry);
                self.slab.len() - 1
            }
        };
        self.push_mru(idx);
        self.map.insert(key, idx);
        (plan, false)
    }
}

/// The device pool. Owned by the server's worker thread; one instance
/// lives for the server's lifetime so breakers and shard-plan caches
/// persist across batches.
pub(crate) struct DevicePool {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
    /// Immutable device table (model + link per slot).
    devices: Vec<PoolDevice>,
    /// Coordinator-owned per-device shard-plan caches.
    caches: Vec<ShardPlanCache>,
    /// Per-device corpus warmth for packed placement: plan identities
    /// this device has already uploaded (so a repeat segment routes
    /// warm and skips the `A`+norms transfer, mirroring the shard
    /// caches).
    packed_warm: Vec<HashSet<u64>>,
    shard_align: usize,
    /// Per-device lifecycle generators (`None` = never flaps),
    /// advanced once per batch/wave on the coordinator so the phase
    /// trajectory is deterministic and evicted devices keep aging
    /// (a hung device can recover while out of the placement set).
    lifecycles: Vec<Option<LifecycleState>>,
    /// Membership authority: drain → evict → readmit.
    health: HealthMonitor,
    report: PoolReport,
}

/// What one horizontally-fused wave hands back to the server loop.
pub(crate) struct PackedPoolBatch {
    /// Per-segment per-query result columns, in segment order.
    pub results: Vec<Vec<Vec<f32>>>,
    /// Per-segment CPU-recovery flags.
    pub fallback_segments: Vec<bool>,
    /// Sub-launch pipeline profiles (CPU-recovered sub-waves have
    /// none).
    pub profiles: Vec<PipelineProfile>,
    /// ABFT verification failures across the wave's segments.
    pub corruption_detected: u64,
    /// Injected data faults observed across the wave's sub-launches.
    pub injected_faults: u64,
    /// Completed fused sub-launches whose faults went undetected.
    pub undetected: u64,
    /// Fused GPU launches that completed (≤ devices touched).
    pub packed_launches: u64,
    /// Segments served through those launches.
    pub packed_segments: u64,
}

impl DevicePool {
    /// Spawns the device threads.
    ///
    /// # Panics
    /// Panics on an empty device list or zero sizing.
    pub(crate) fn start(
        pool: &PoolConfig,
        backend: ServeBackend,
        resilience: &ResilienceConfig,
        cpu: FusedCpuConfig,
        geometry: TileGeometry,
    ) -> Self {
        assert!(!pool.devices.is_empty(), "pool needs at least one device");
        assert!(
            pool.queue_capacity > 0,
            "pool queue capacity must be positive"
        );
        assert!(pool.shard_align > 0, "shard alignment must be positive");
        let n = pool.devices.len();
        let policy = PoolPolicy {
            cpu_only: matches!(backend, ServeBackend::CpuFused),
            verify: matches!(backend, ServeBackend::GpuResilient) && resilience.verify,
            cpu,
            geometry,
        };
        let shared = Arc::new(Shared {
            queues: (0..n)
                .map(|_| Arc::new(BoundedQueue::new(pool.queue_capacity)))
                .collect(),
            breakers: (0..n)
                .map(|_| Mutex::new(Breaker::new(resilience)))
                .collect(),
            stats: pool
                .devices
                .iter()
                .map(|d| {
                    Mutex::new(DeviceReport {
                        name: d.device.name.clone(),
                        ..DeviceReport::default()
                    })
                })
                .collect(),
            policy,
            work_seq: Mutex::new(0),
            work: Condvar::new(),
            closed: AtomicBool::new(false),
        });
        let threads = (0..n)
            .map(|me| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || device_loop(me, &shared))
            })
            .collect();
        Self {
            shared,
            threads,
            devices: pool.devices.clone(),
            caches: (0..n)
                .map(|_| ShardPlanCache::new(pool.plan_cache_capacity.max(1)))
                .collect(),
            packed_warm: (0..n).map(|_| HashSet::new()).collect(),
            shard_align: pool.shard_align,
            lifecycles: pool
                .devices
                .iter()
                .map(|d| d.lifecycle.map(LifecycleState::new))
                .collect(),
            health: HealthMonitor::new(n, pool.health),
            report: PoolReport::default(),
        }
    }

    /// Advances every device's lifecycle one epoch (evicted devices
    /// included — a hung device must keep aging toward recovery) and
    /// returns the drawn phases.
    fn advance_lifecycles(&mut self) -> Vec<DevicePhase> {
        self.lifecycles
            .iter_mut()
            .map(|l| match l {
                Some(st) => st.advance(),
                None => DevicePhase::Healthy,
            })
            .collect()
    }

    /// Number of devices.
    pub(crate) fn len(&self) -> usize {
        self.devices.len()
    }

    /// Executes one coalesced batch across the pool and merges the
    /// shard results in shard order. Blocks the coordinator until
    /// every shard completes; never fails (sick shards land on the
    /// bit-exact CPU path). Only health-eligible devices receive
    /// shards — the shard count shrinks with the active set, and
    /// because the merge concatenates in slot order the pooled result
    /// stays bit-identical for *any* active count.
    pub(crate) fn run_batch(
        &mut self,
        plan: &SourcePlan,
        proto: &Query,
        weights: &[Vec<f32>],
        batch_idx: u64,
    ) -> PoolBatch {
        let phases = self.advance_lifecycles();
        let eligible = self.health.eligible(batch_idx);
        let active = eligible.iter().filter(|&&e| e).count();
        let (m, _) = plan.dims();
        let ranges = shard_ranges(m, active, self.shard_align);
        let key = PlanKey::new(&proto.sources, proto.h);
        let merge = Arc::new(BatchMerge::new(ranges.len()));
        let weights = Arc::new(weights.to_vec());
        // Placement load = queue depth plus what this batch already
        // placed (queues may drain faster than we enqueue).
        let mut placed = vec![0usize; self.len()];
        let mut owners = Vec::with_capacity(ranges.len());
        for (slot, rows) in ranges.iter().enumerate() {
            let skey = ShardKey {
                plan: key,
                row0: rows.start,
                rows: rows.len(),
            };
            let warm: Vec<bool> = self.caches.iter().map(|c| c.contains(&skey)).collect();
            let depth: Vec<usize> = self
                .shared
                .queues
                .iter()
                .zip(&placed)
                .map(|(q, p)| q.len() + p)
                .collect();
            let owner = crate::router::place_masked(&warm, &depth, &eligible);
            placed[owner] += 1;
            owners.push(owner);
            let (shard_plan, hit) = self.caches[owner].get_or_slice(skey, plan, rows.clone());
            self.shared.stats[owner]
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .shard_tasks += 1;
            let item = PoolTask::Shard(ShardTask {
                plan: shard_plan,
                targets: Arc::clone(&proto.targets),
                h: proto.h,
                weights: Arc::clone(&weights),
                warm: hit,
                owner,
                device: self.devices[owner].device.clone(),
                interconnect: self.devices[owner].interconnect.clone(),
                phase: phases[owner],
                batch_idx,
                slot,
                merge: Arc::clone(&merge),
            });
            self.enqueue(owner, item);
        }
        let outcomes = merge.wait();

        // Merge: concatenate shard rows in shard order — the fixed
        // deterministic order the bit-identity invariant needs.
        let r = weights.len();
        let mut results: Vec<Vec<f32>> = (0..r).map(|_| Vec::with_capacity(m)).collect();
        let mut profiles = Vec::new();
        let mut corruption = 0u64;
        let mut injected = 0u64;
        let mut fallback_shards = 0u64;
        let mut undetected_shards = 0u64;
        let mut batch_sim = 0.0f64;
        for (slot, o) in outcomes.into_iter().enumerate() {
            // Score health in slot order, after every in-flight shard
            // has drained: evictions are deterministic and never race
            // a live batch.
            self.health.note_outcome(owners[slot], o.health, batch_idx);
            for (c, col) in o.results.iter().enumerate() {
                results[c].extend_from_slice(col);
            }
            if let Some(p) = o.profile {
                batch_sim = batch_sim.max(p.total_time_s());
                profiles.push(p);
            }
            corruption += o.corruption;
            injected += o.injected;
            fallback_shards += u64::from(o.fallback);
            undetected_shards += u64::from(!o.fallback && o.injected > 0);
        }
        self.report.batches += 1;
        self.report.shard_tasks += ranges.len() as u64;
        self.report.sim_time_s += batch_sim;
        PoolBatch {
            results,
            profiles,
            corruption_detected: corruption,
            injected_faults: injected,
            fallback_shards,
            undetected_shards,
        }
    }

    /// Pushes one task to `owner`'s queue (spinning through
    /// backpressure — the device threads are draining) and wakes the
    /// pool.
    fn enqueue(&self, owner: usize, item: PoolTask) {
        let mut item = item;
        loop {
            match self.shared.queues[owner].try_push(item) {
                Ok(()) => break,
                Err(back) => {
                    item = back;
                    std::thread::yield_now();
                }
            }
        }
        let mut seq = self
            .shared
            .work_seq
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *seq += 1;
        drop(seq);
        self.shared.work.notify_all();
    }

    /// Executes one horizontally-fused wave across the pool: each
    /// segment is placed whole on one device (cache-first on corpus
    /// warmth, then load-aware — the same policy as row shards), and
    /// every device owning segments runs them as **one** packed
    /// launch. Blocks until all sub-launches complete; never fails (a
    /// sick sub-launch recovers its own segments on the bit-exact CPU
    /// path, leaving the rest of the wave intact).
    pub(crate) fn run_packed(&mut self, segs: &[PackedSegment], batch_idx: u64) -> PackedPoolBatch {
        // Place each segment; a segment is "warm" on a device that
        // has already uploaded its corpus — including earlier in this
        // wave, so wave-mates sharing a corpus cluster on one device
        // and dedup its upload inside one fused launch. Only
        // health-eligible devices are considered, so an eviction
        // re-routes exactly the evicted device's segments and leaves
        // the rest of the wave's placement policy unchanged.
        let phases = self.advance_lifecycles();
        let eligible = self.health.eligible(batch_idx);
        let mut placed = vec![0usize; self.len()];
        let mut owner_of = Vec::with_capacity(segs.len());
        let mut wave_seen: Vec<HashSet<u64>> = (0..self.len()).map(|_| HashSet::new()).collect();
        for seg in segs {
            let ptr = Arc::as_ptr(&seg.plan) as u64;
            let warm: Vec<bool> = self
                .packed_warm
                .iter()
                .zip(&wave_seen)
                .map(|(seen, wave)| seen.contains(&ptr) || wave.contains(&ptr))
                .collect();
            let depth: Vec<usize> = self
                .shared
                .queues
                .iter()
                .zip(&placed)
                .map(|(q, p)| q.len() + p)
                .collect();
            let owner = crate::router::place_masked(&warm, &depth, &eligible);
            placed[owner] += 1;
            wave_seen[owner].insert(ptr);
            owner_of.push(owner);
        }
        // One sub-wave per owning device, segment order preserved.
        let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
        for (i, &owner) in owner_of.iter().enumerate() {
            match groups.iter_mut().find(|(d, _)| *d == owner) {
                Some((_, members)) => members.push(i),
                None => groups.push((owner, vec![i])),
            }
        }
        let merge = Arc::new(BatchMerge::new(groups.len()));
        for (slot, (owner, members)) in groups.iter().enumerate() {
            let owner = *owner;
            let mut segments = Vec::with_capacity(members.len());
            for &i in members {
                let s = &segs[i];
                let ptr = Arc::as_ptr(&s.plan) as u64;
                // Warm if the server's plan cache hit *or* this device
                // saw the corpus before (cold ≡ warm bitwise, so the
                // upgrade only changes modelled traffic).
                let warm = s.warm || self.packed_warm[owner].contains(&ptr);
                self.packed_warm[owner].insert(ptr);
                segments.push(PackedSegment {
                    plan: Arc::clone(&s.plan),
                    targets: Arc::clone(&s.targets),
                    h: s.h,
                    weights: s.weights.clone(),
                    warm,
                });
            }
            self.shared.stats[owner]
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .shard_tasks += members.len() as u64;
            let item = PoolTask::Packed(PackedTask {
                segments,
                seg_indices: members.clone(),
                owner,
                device: self.devices[owner].device.clone(),
                interconnect: self.devices[owner].interconnect.clone(),
                phase: phases[owner],
                batch_idx,
                slot,
                merge: Arc::clone(&merge),
            });
            self.enqueue(owner, item);
        }
        let outcomes = merge.wait();

        let mut results: Vec<Vec<Vec<f32>>> = (0..segs.len()).map(|_| Vec::new()).collect();
        let mut fallback_segments = vec![false; segs.len()];
        let mut profiles = Vec::new();
        let mut corruption = 0u64;
        let mut injected = 0u64;
        let mut undetected = 0u64;
        let mut packed_launches = 0u64;
        let mut packed_segments = 0u64;
        let mut batch_sim = 0.0f64;
        for (slot, o) in outcomes.into_iter().enumerate() {
            self.health
                .note_outcome(groups[slot].0, o.health, batch_idx);
            if o.gpu_launch {
                packed_launches += 1;
                packed_segments += o.seg_indices.len() as u64;
            }
            if o.injected > 0 && o.corruption == 0 && o.gpu_launch {
                undetected += 1;
            }
            corruption += o.corruption;
            injected += o.injected;
            if let Some(p) = o.profile {
                batch_sim = batch_sim.max(p.total_time_s());
                profiles.push(p);
            }
            for ((i, r), fb) in o.seg_indices.into_iter().zip(o.results).zip(o.fallback) {
                results[i] = r;
                fallback_segments[i] = fb;
            }
        }
        self.report.batches += 1;
        self.report.shard_tasks += segs.len() as u64;
        self.report.sim_time_s += batch_sim;
        PackedPoolBatch {
            results,
            fallback_segments,
            profiles,
            corruption_detected: corruption,
            injected_faults: injected,
            undetected,
            packed_launches,
            packed_segments,
        }
    }

    /// Joins the device threads and assembles the final report.
    pub(crate) fn shutdown(mut self) -> PoolReport {
        self.shared.closed.store(true, Ordering::SeqCst);
        for q in &self.shared.queues {
            q.close();
        }
        {
            let mut seq = self
                .shared
                .work_seq
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            *seq += 1;
        }
        self.shared.work.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        let mut report = std::mem::take(&mut self.report);
        for (d, stat) in self.shared.stats.iter().enumerate() {
            let mut dr = stat.lock().unwrap_or_else(PoisonError::into_inner).clone();
            let b = self.shared.breakers[d]
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            dr.breaker_trips = b.trips;
            dr.breaker_resets = b.resets;
            dr.plan_cache = self.caches[d].stats;
            dr.evictions = self.health.evictions[d];
            dr.readmissions = self.health.readmissions[d];
            report.stolen_tasks += dr.stolen;
            report.devices.push(dr);
        }
        report
    }
}

/// Device-thread main loop: drain the own queue, steal when idle,
/// park when the pool is quiet, exit when closed and fully drained.
fn device_loop(me: usize, shared: &Arc<Shared>) {
    let n = shared.queues.len();
    loop {
        if let Some(task) = shared.queues[me].try_pop() {
            run_task(task, me, false, shared);
            continue;
        }
        // Deterministic steal scan: ring-wise from the next device.
        let mut stole = false;
        for off in 1..n {
            let victim = (me + off) % n;
            if let Some(task) = shared.queues[victim].try_pop() {
                run_task(task, me, true, shared);
                stole = true;
                break;
            }
        }
        if stole {
            continue;
        }
        if shared.closed.load(Ordering::SeqCst) {
            // Queues are closed: nothing new arrives, and the scans
            // above found them all empty.
            return;
        }
        // Park until the coordinator enqueues more work (with a
        // timeout so a lost wakeup only costs latency, not liveness).
        let seq = shared
            .work_seq
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let before = *seq;
        let mut seq = seq;
        while *seq == before && !shared.closed.load(Ordering::SeqCst) {
            let (g, timeout) = shared
                .work
                .wait_timeout(seq, std::time::Duration::from_millis(5))
                .unwrap_or_else(PoisonError::into_inner);
            seq = g;
            if timeout.timed_out() {
                break;
            }
        }
    }
}

/// Executes one pool task on the executing thread `me` (`stolen` says
/// it differs from the owner).
fn run_task(task: PoolTask, me: usize, stolen: bool, shared: &Shared) {
    match task {
        PoolTask::Shard(t) => run_shard_task(t, me, stolen, shared),
        PoolTask::Packed(t) => run_packed_task(t, me, stolen, shared),
    }
}

/// Executes one shard task on behalf of its owner device and posts the
/// outcome to the batch merge. `me` is the executing thread's device
/// index; `stolen` says it differs from the owner.
fn run_shard_task(task: ShardTask, me: usize, stolen: bool, shared: &Shared) {
    let policy = &shared.policy;
    let outcome = if policy.cpu_only {
        ShardOutcome {
            results: executor::execute_cpu(
                &task.plan,
                &task.targets,
                task.h,
                &task.weights,
                &policy.cpu,
            ),
            profile: None,
            fallback: false,
            corruption: 0,
            injected: 0,
            health: ShardHealth::Passive,
            lifecycle: None,
        }
    } else {
        run_gpu_shard(&task, shared)
    };
    {
        let mut mine = shared.stats[me]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        mine.executed += 1;
        if stolen {
            mine.stolen += 1;
        }
    }
    {
        let mut owner = shared.stats[task.owner]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if outcome.fallback {
            owner.cpu_fallbacks += 1;
        } else if outcome.profile.is_some() {
            owner.gpu_shards += 1;
        }
        owner.corruption_detected += outcome.corruption;
        owner.injected_faults += outcome.injected;
        match outcome.lifecycle {
            Some(DevicePhase::Hung) => owner.lifecycle_hangs += 1,
            Some(DevicePhase::Lost) => owner.lifecycle_losses += 1,
            _ => {}
        }
        if let Some(p) = &outcome.profile {
            owner.transfer_bytes += p.transfer_bytes();
            owner.transfer_time_s += p.transfer_time_s();
            owner.busy_time_s += p.total_time_s();
            for t in &p.transfers {
                owner.link_crc_detected += t.crc_detected;
                owner.link_retransmits += t.retransmits;
                owner.link_timeouts += u64::from(t.timed_out);
            }
        }
    }
    task.merge.complete(task.slot, outcome);
}

/// One GPU shard attempt: per-column results, the shard's pipeline
/// profile and the ABFT report when the verified path ran.
type GpuAttempt =
    Result<(Vec<Vec<f32>>, PipelineProfile, Option<VerifyReport>), ks_gpu_sim::LaunchError>;

/// The per-shard resilience ladder: (verified) GPU on the owner's
/// device, else the bit-exact CPU fused path; every failure is
/// recorded on the owner's breaker only. A lifecycle fault (hang or
/// loss drawn by the coordinator) or a link timeout fails the attempt
/// the same way a launch error does — the shard is never dropped, it
/// recovers bit-exactly on the CPU and the evidence feeds the health
/// monitor.
fn run_gpu_shard(task: &ShardTask, shared: &Shared) -> ShardOutcome {
    let policy = &shared.policy;
    let allowed = shared.breakers[task.owner]
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .allow(task.batch_idx);
    let cpu_shard = |fallback: bool,
                     corruption: u64,
                     injected: u64,
                     profile,
                     health: ShardHealth,
                     lifecycle: Option<DevicePhase>| ShardOutcome {
        results: executor::execute_cpu(
            &task.plan,
            &task.targets,
            task.h,
            &task.weights,
            &policy.cpu,
        ),
        profile,
        fallback,
        corruption,
        injected,
        health,
        lifecycle,
    };
    if !allowed {
        // Open breaker: a passive fallback, no new health evidence.
        return cpu_shard(true, 0, 0, None, ShardHealth::Passive, None);
    }
    if !task.phase.is_healthy() {
        // The coordinator drew a hang or loss for this batch: the
        // launch never starts.
        shared.breakers[task.owner]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .record_failure(task.batch_idx);
        return cpu_shard(
            true,
            0,
            0,
            None,
            ShardHealth::Failure,
            lifecycle_counter(task.phase),
        );
    }
    // Decorrelate the fault schedule per (batch, shard): a fresh
    // device restarts the launch-epoch counter, so without the reseed
    // every shard of every batch would redraw identical faults.
    let mut dev_cfg = task.device.clone();
    if let Some(f) = &mut dev_cfg.fault {
        f.seed ^= splitmix64(task.batch_idx ^ ((task.slot as u64) << 48));
    }
    let mut dev = GpuDevice::new(dev_cfg);
    let attempt: GpuAttempt = if policy.verify {
        executor::execute_gpu_verified(
            &mut dev,
            &task.plan,
            &task.targets,
            task.h,
            &task.weights,
            task.warm,
            &policy.geometry,
        )
        .map(|(r, p, v)| (r, p, Some(v)))
    } else {
        executor::execute_gpu(
            &mut dev,
            &task.plan,
            &task.targets,
            task.h,
            &task.weights,
            task.warm,
            &policy.geometry,
        )
        .map(|(r, p)| (r, p, None))
    };
    match attempt {
        Ok((results, mut prof, verify)) => {
            let injected = injected_data_faults(&prof);
            attach_transfers(&mut prof, task);
            if prof.transfers.iter().any(|t| t.timed_out) {
                // A link timeout: the shard's data never (fully)
                // moved, so the attempt fails like a launch error.
                // The profile is kept — the time was spent — and the
                // CRC ledger records what happened on the wire.
                shared.breakers[task.owner]
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .record_failure(task.batch_idx);
                return cpu_shard(true, 0, injected, Some(prof), ShardHealth::Failure, None);
            }
            if verify
                .as_ref()
                .is_some_and(VerifyReport::corruption_detected)
            {
                // Surfaced corruption: discard the shard result, fail
                // the owner's breaker, recover bit-exactly on the CPU.
                // The attempt's profile is kept — its transfers and
                // kernel time were spent.
                shared.breakers[task.owner]
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .record_failure(task.batch_idx);
                return cpu_shard(true, 1, injected, Some(prof), ShardHealth::Failure, None);
            }
            shared.breakers[task.owner]
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .record_success();
            ShardOutcome {
                results,
                profile: Some(prof),
                fallback: false,
                corruption: 0,
                injected,
                health: ShardHealth::CleanGpu,
                lifecycle: None,
            }
        }
        Err(_) => {
            shared.breakers[task.owner]
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .record_failure(task.batch_idx);
            cpu_shard(true, 0, 0, None, ShardHealth::Failure, None)
        }
    }
}

/// Seed salt decorrelating the link-fault stream from the device's
/// soft-error stream of the same `(batch, slot)`.
const LINK_FAULT_SALT: u64 = 0x11f7_ab1e << 24;

/// Builds the per-task link-fault generator, if the task's link
/// carries a fault spec. Task-scoped on purpose (see
/// [`LinkFaultState`]): the seed is decorrelated by `(batch, slot)`
/// so the transfer draws are a pure function of the task identity, no
/// matter which host thread (owner or thief) executes it.
fn task_link_state(
    ic: &Interconnect,
    batch_idx: u64,
    slot: usize,
    salt: u64,
) -> Option<LinkFaultState> {
    ic.fault.map(|mut spec| {
        spec.seed ^= splitmix64(batch_idx ^ ((slot as u64) << 48) ^ LINK_FAULT_SALT ^ salt);
        LinkFaultState::new(spec)
    })
}

/// Charges one transfer, drawing from the link-fault stream when the
/// link carries one.
fn charge_transfer(
    prof: &mut PipelineProfile,
    ic: &Interconnect,
    link: &mut Option<LinkFaultState>,
    label: &str,
    bytes: u64,
) {
    let entry = match link {
        Some(st) => estimate_transfer_faulted(ic, label, bytes, st.next_draw()),
        None => estimate_transfer(ic, label, bytes),
    };
    prof.transfers.push(entry);
}

/// Charges the shard's host↔device traffic to its pipeline profile:
/// `A`-pack + norms upload on a cold placement, `B`/`W` uploads and
/// the `V` download always (logical payload sizes; padding is
/// device-side). With a quiet (or absent) link-fault spec the entries
/// are byte-identical to the fault-free model.
fn attach_transfers(prof: &mut PipelineProfile, task: &ShardTask) {
    const F32: u64 = 4;
    let (rows, k) = task.plan.dims();
    let n = task.targets.len();
    let r = task.weights.len();
    let ic = &task.interconnect;
    let mut link = task_link_state(ic, task.batch_idx, task.slot, 0);
    if !task.warm {
        charge_transfer(
            prof,
            ic,
            &mut link,
            "shard A+norms",
            (rows * k + rows) as u64 * F32,
        );
    }
    charge_transfer(prof, ic, &mut link, "targets B", (n * k) as u64 * F32);
    charge_transfer(prof, ic, &mut link, "weights W", (n * r) as u64 * F32);
    charge_transfer(prof, ic, &mut link, "result V", (rows * r) as u64 * F32);
}

/// Seed salt decorrelating a packed sub-launch's fault schedule from
/// the row-shard schedules of the same `(batch, slot)`.
const PACKED_POOL_SALT: u64 = 0x9a0c_4ed5 << 16;

/// Executes one packed sub-launch on behalf of its owner device: the
/// owner's breaker gates the fused attempt; a launch failure recovers
/// **all** of the task's segments on the bit-exact CPU path, detected
/// corruption recovers **only** the flagged segments (the rest of the
/// launch's results are kept — segments write disjoint outputs).
fn run_packed_task(task: PackedTask, me: usize, stolen: bool, shared: &Shared) {
    let policy = &shared.policy;
    let n_segs = task.segments.len();
    let cpu_seg = |seg: &PackedSegment| {
        executor::execute_cpu(&seg.plan, &seg.targets, seg.h, &seg.weights, &policy.cpu)
    };
    let all_cpu = |outcome_profile: Option<PipelineProfile>,
                   health: ShardHealth,
                   lifecycle: Option<DevicePhase>| PackedTaskOutcome {
        seg_indices: task.seg_indices.clone(),
        results: task.segments.iter().map(cpu_seg).collect(),
        fallback: vec![true; n_segs],
        profile: outcome_profile,
        corruption: 0,
        injected: 0,
        gpu_launch: false,
        health,
        lifecycle,
    };
    let allowed = !policy.cpu_only
        && shared.breakers[task.owner]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .allow(task.batch_idx);
    let outcome = if !allowed {
        all_cpu(None, ShardHealth::Passive, None)
    } else if !task.phase.is_healthy() {
        // Coordinator-drawn hang or loss: the fused launch never
        // starts; every segment recovers on the CPU path.
        shared.breakers[task.owner]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .record_failure(task.batch_idx);
        all_cpu(None, ShardHealth::Failure, lifecycle_counter(task.phase))
    } else {
        let mut dev_cfg = task.device.clone();
        if let Some(f) = &mut dev_cfg.fault {
            f.seed ^= splitmix64(task.batch_idx ^ ((task.slot as u64) << 48) ^ PACKED_POOL_SALT);
        }
        let mut dev = GpuDevice::new(dev_cfg);
        match packed::execute_gpu_packed(&mut dev, &task.segments, &policy.geometry, policy.verify)
        {
            Ok(out) => {
                let injected = injected_data_faults(&out.profile);
                let mut prof = out.profile;
                attach_packed_transfers(&mut prof, &task);
                if prof.transfers.iter().any(|t| t.timed_out) {
                    // A link timeout fails the whole sub-launch: the
                    // wave's data never (fully) moved. The profile —
                    // with its CRC ledger — is kept; every segment
                    // recovers bit-exactly on the CPU.
                    shared.breakers[task.owner]
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .record_failure(task.batch_idx);
                    all_cpu(Some(prof), ShardHealth::Failure, None)
                } else {
                    let corrupt: Vec<bool> = match &out.verify {
                        Some(reports) => reports
                            .iter()
                            .map(VerifyReport::corruption_detected)
                            .collect(),
                        None => vec![false; n_segs],
                    };
                    let corruption = corrupt.iter().filter(|&&c| c).count() as u64;
                    {
                        let mut b = shared.breakers[task.owner]
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner);
                        if corruption > 0 {
                            b.record_failure(task.batch_idx);
                        } else {
                            b.record_success();
                        }
                    }
                    let mut results = out.results;
                    for (i, flagged) in corrupt.iter().enumerate() {
                        if *flagged {
                            results[i] = cpu_seg(&task.segments[i]);
                        }
                    }
                    PackedTaskOutcome {
                        seg_indices: task.seg_indices.clone(),
                        results,
                        fallback: corrupt,
                        profile: Some(prof),
                        corruption,
                        injected,
                        gpu_launch: true,
                        health: if corruption > 0 {
                            ShardHealth::Failure
                        } else {
                            ShardHealth::CleanGpu
                        },
                        lifecycle: None,
                    }
                }
            }
            Err(_) => {
                shared.breakers[task.owner]
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .record_failure(task.batch_idx);
                all_cpu(None, ShardHealth::Failure, None)
            }
        }
    };
    {
        let mut mine = shared.stats[me]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        mine.executed += 1;
        if stolen {
            mine.stolen += 1;
        }
    }
    {
        let mut owner = shared.stats[task.owner]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let fallbacks = outcome.fallback.iter().filter(|&&f| f).count() as u64;
        owner.cpu_fallbacks += fallbacks;
        if outcome.gpu_launch {
            owner.gpu_shards += n_segs as u64 - fallbacks;
        }
        owner.corruption_detected += outcome.corruption;
        owner.injected_faults += outcome.injected;
        match outcome.lifecycle {
            Some(DevicePhase::Hung) => owner.lifecycle_hangs += 1,
            Some(DevicePhase::Lost) => owner.lifecycle_losses += 1,
            _ => {}
        }
        if let Some(p) = &outcome.profile {
            owner.transfer_bytes += p.transfer_bytes();
            owner.transfer_time_s += p.transfer_time_s();
            owner.busy_time_s += p.total_time_s();
            for t in &p.transfers {
                owner.link_crc_detected += t.crc_detected;
                owner.link_retransmits += t.retransmits;
                owner.link_timeouts += u64::from(t.timed_out);
            }
        }
    }
    task.merge.complete(task.slot, outcome);
}

/// Charges a packed sub-launch's host↔device traffic: `A`-pack +
/// norms once per **unique cold** corpus (device-side upload dedup is
/// mirrored on the link), `B` once per unique target set, `W` and `V`
/// per segment. Link faults draw from the packed-salted stream so a
/// packed wave and a row-shard batch of the same `(batch, slot)`
/// never share a schedule.
fn attach_packed_transfers(prof: &mut PipelineProfile, task: &PackedTask) {
    const F32: u64 = 4;
    let ic = &task.interconnect;
    let mut link = task_link_state(ic, task.batch_idx, task.slot, PACKED_POOL_SALT);
    let mut a_seen = HashSet::new();
    let mut b_seen = HashSet::new();
    for seg in &task.segments {
        let (rows, k) = seg.plan.dims();
        let n = seg.targets.len();
        let r = seg.weights.len();
        if a_seen.insert(Arc::as_ptr(&seg.plan) as u64) && !seg.warm {
            charge_transfer(
                prof,
                ic,
                &mut link,
                "segment A+norms",
                (rows * k + rows) as u64 * F32,
            );
        }
        if b_seen.insert(Arc::as_ptr(&seg.targets) as u64) {
            charge_transfer(prof, ic, &mut link, "segment B", (n * k) as u64 * F32);
        }
        charge_transfer(prof, ic, &mut link, "weights W", (n * r) as u64 * F32);
        charge_transfer(prof, ic, &mut link, "result V", (rows * r) as u64 * F32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ks_core::plan::SourceSet;
    use ks_core::problem::PointSet;

    #[test]
    fn homogeneous_pool_config_sizes_sanely() {
        let cfg = PoolConfig::homogeneous(4, DeviceConfig::gtx970(), Interconnect::pcie3_x16());
        assert_eq!(cfg.devices.len(), 4);
        assert_eq!(cfg.queue_capacity, 8);
        assert_eq!(cfg.shard_align, SHARD_ALIGN);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn zero_device_pool_is_rejected() {
        let _ = PoolConfig::homogeneous(0, DeviceConfig::gtx970(), Interconnect::nvlink());
    }

    #[test]
    fn shard_plan_cache_is_lru_and_range_keyed() {
        let pts = PointSet::uniform_cube(8, 3, 7);
        let full = SourcePlan::build(&pts);
        let source = PlanKey::new(&SourceSet::new(pts), 1.0);
        let mut cache = ShardPlanCache::new(3);
        let k0 = ShardKey {
            plan: source,
            row0: 0,
            rows: 4,
        };
        let k4 = ShardKey {
            plan: source,
            row0: 4,
            rows: 4,
        };
        // Equal-length shards at different offsets are distinct keys.
        let (_, hit) = cache.get_or_slice(k0, &full, 0..4);
        assert!(!hit);
        let (_, hit) = cache.get_or_slice(k4, &full, 4..8);
        assert!(!hit, "same length, different offset: no aliasing");
        let (p, hit) = cache.get_or_slice(k0, &full, 0..4);
        assert!(hit);
        assert_eq!(p.dims(), (4, 3));
        // Same start, different extent — what an eviction's re-plan
        // produces — must miss, not serve the stale shorter plan.
        let k0_wide = ShardKey {
            plan: source,
            row0: 0,
            rows: 8,
        };
        let (p, hit) = cache.get_or_slice(k0_wide, &full, 0..8);
        assert!(!hit, "same offset, different extent: no aliasing");
        assert_eq!(p.dims(), (8, 3));
        assert_eq!(cache.stats.evictions, 0);
    }

    #[test]
    fn transfer_charges_scale_with_shard_and_warmth() {
        let pts = PointSet::uniform_cube(256, 4, 3);
        let full = SourcePlan::build(&pts);
        let targets = Arc::new(PointSet::uniform_cube(32, 4, 4));
        let weights = Arc::new(vec![vec![1.0f32; 32]; 2]);
        let mk = |warm: bool| ShardTask {
            plan: Arc::new(full.shard(0..128)),
            targets: Arc::clone(&targets),
            h: 1.0,
            weights: Arc::clone(&weights),
            warm,
            owner: 0,
            device: DeviceConfig::gtx970(),
            interconnect: Interconnect::pcie3_x16(),
            phase: DevicePhase::Healthy,
            batch_idx: 0,
            slot: 0,
            merge: Arc::new(BatchMerge::new(1)),
        };
        let mut cold = PipelineProfile::new("t");
        attach_transfers(&mut cold, &mk(false));
        let mut warm = PipelineProfile::new("t");
        attach_transfers(&mut warm, &mk(true));
        assert_eq!(cold.transfers.len(), 4, "A+norms, B, W, V");
        assert_eq!(warm.transfers.len(), 3, "warm placement skips A");
        let a_bytes = (128 * 4 + 128) * 4;
        assert_eq!(
            cold.transfer_bytes() - warm.transfer_bytes(),
            a_bytes,
            "the cold surcharge is exactly the shard's A-pack + norms"
        );
        assert!(cold.transfer_time_s() > warm.transfer_time_s());
    }
}
