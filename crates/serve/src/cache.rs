//! The plan cache: LRU-evicted `A`-side precomputation per corpus.
//!
//! Keyed by `(source-set id, M, K, h)` — everything the cached
//! [`SourcePlan`] (packed `A` + row square norms) is valid for. The
//! cache is the cross-request analogue of the paper's intra-kernel
//! reuse: a hit skips the `O(M·K)` host pack/norms pass *and* lets the
//! GPU path skip the `norms(A)` kernel launch entirely.

use std::collections::HashMap;
use std::sync::Arc;

use ks_core::plan::{SourcePlan, SourceSet, SourceSetId};
use ks_gpu_kernels::TileGeometry;

use crate::admission::{AdmissionKey, AdmissionStats, AdmissionVerdict};

/// Cache key: the corpus identity plus every parameter the plan
/// depends on (dimensions pin the id against corpus reuse across
/// rebuilds; `h` is carried bit-exactly so distinct bandwidths never
/// alias).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Corpus identity.
    pub source: SourceSetId,
    /// Source count `M`.
    pub m: usize,
    /// Point dimension `K`.
    pub k: usize,
    /// Gaussian bandwidth, bit-exact.
    pub h_bits: u32,
}

impl PlanKey {
    /// Builds the key for a corpus/bandwidth pair.
    #[must_use]
    pub fn new(source: &SourceSet, h: f32) -> Self {
        Self {
            source: source.id(),
            m: source.len(),
            k: source.dim(),
            h_bits: h.to_bits(),
        }
    }
}

/// Hit/miss/eviction counters. `hits + misses` equals the number of
/// [`PlanCache::get_or_build`] calls.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to build the plan.
    pub misses: u64,
    /// Entries displaced by the LRU policy.
    pub evictions: u64,
}

impl PlanCacheStats {
    /// Total lookups.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from the cache (0 when unused).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            return 0.0;
        }
        self.hits as f64 / self.accesses() as f64
    }
}

/// Sentinel index terminating the recency list.
const NIL: usize = usize::MAX;

/// One slab slot of the recency list.
struct Entry {
    key: PlanKey,
    plan: Arc<SourcePlan>,
    /// Towards LRU.
    prev: usize,
    /// Towards MRU.
    next: usize,
}

/// A bounded LRU map from [`PlanKey`] to shared [`SourcePlan`]s.
///
/// Recency is an intrusive doubly-linked list threaded through a slab
/// of entries, with the key map pointing at slab slots — every
/// operation (hit touch, miss insert, eviction) is O(1), so cache
/// maintenance stays negligible however many corpora a device pool
/// keeps warm.
pub struct PlanCache {
    capacity: usize,
    map: HashMap<PlanKey, usize>,
    slab: Vec<Entry>,
    /// Recycled slab slots.
    free: Vec<usize>,
    /// Least-recently-used slot.
    head: usize,
    /// Most-recently-used slot.
    tail: usize,
    stats: PlanCacheStats,
    /// Static-admission verdict memo. A verdict depends only on the
    /// padded launch geometry (and the device model, fixed per
    /// server), so unlike plans there is no LRU pressure: distinct
    /// padded shapes number in the handfuls. [`ADMISSION_MEMO_CAP`]
    /// bounds the degenerate many-shapes case.
    admission: HashMap<AdmissionKey, Arc<AdmissionVerdict>>,
    admission_stats: AdmissionStats,
    /// Winning-geometry memo: the tile geometry the server resolved
    /// for a raw batch shape `(M, N, K)` on this server's device. Like
    /// the admission memo, there is no LRU pressure — distinct shapes
    /// number in the handfuls — but the same cap bounds degeneracy.
    geometry: HashMap<(usize, usize, usize), (TileGeometry, Option<TileGeometry>)>,
    geometry_stats: GeometryStats,
}

/// Counters of the winning-geometry memo.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GeometryStats {
    /// Fresh resolutions (pick-table consultations).
    pub resolves: u64,
    /// Resolutions served from the memo.
    pub hits: u64,
}

/// Verdict-memo bound; reaching it clears the memo (verdicts are
/// cheap to recompute, so wholesale reset beats LRU bookkeeping).
const ADMISSION_MEMO_CAP: usize = 256;

impl PlanCache {
    /// Creates a cache holding at most `capacity` plans.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "plan cache capacity must be positive");
        Self {
            capacity,
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            stats: PlanCacheStats::default(),
            admission: HashMap::new(),
            admission_stats: AdmissionStats::default(),
            geometry: HashMap::new(),
            geometry_stats: GeometryStats::default(),
        }
    }

    /// Looks up the winning tile geometry (and its bit-compatible
    /// low-power alternative) for a raw batch shape, resolving and
    /// memoizing on a miss — warm shapes pay one hash lookup and never
    /// re-consult the pick table.
    pub fn geometry_for(
        &mut self,
        shape: (usize, usize, usize),
        resolve: impl FnOnce() -> (TileGeometry, Option<TileGeometry>),
    ) -> (TileGeometry, Option<TileGeometry>) {
        if let Some(&g) = self.geometry.get(&shape) {
            self.geometry_stats.hits += 1;
            return g;
        }
        if self.geometry.len() >= ADMISSION_MEMO_CAP {
            self.geometry.clear();
        }
        self.geometry_stats.resolves += 1;
        let g = resolve();
        self.geometry.insert(shape, g);
        g
    }

    /// Geometry-memo counter snapshot.
    #[must_use]
    pub fn geometry_stats(&self) -> GeometryStats {
        self.geometry_stats
    }

    /// Looks up the static-admission verdict for `key`, computing and
    /// memoizing it on a miss. Returns the verdict and whether it was
    /// served from the memo — a warm shape pays one hash lookup and
    /// runs no analysis.
    pub fn admission(
        &mut self,
        key: AdmissionKey,
        check: impl FnOnce() -> AdmissionVerdict,
    ) -> (Arc<AdmissionVerdict>, bool) {
        if let Some(v) = self.admission.get(&key) {
            self.admission_stats.hits += 1;
            return (Arc::clone(v), true);
        }
        if self.admission.len() >= ADMISSION_MEMO_CAP {
            self.admission.clear();
        }
        self.admission_stats.checks += 1;
        let v = Arc::new(check());
        self.admission.insert(key, Arc::clone(&v));
        (v, false)
    }

    /// Records one batch denied the GPU by a static-admission reject.
    pub fn note_admission_reject(&mut self) {
        self.admission_stats.rejects += 1;
    }

    /// Admission-memo counter snapshot.
    #[must_use]
    pub fn admission_stats(&self) -> AdmissionStats {
        self.admission_stats
    }

    /// Detaches slot `idx` from the recency list.
    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slab[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slab[next].prev = prev;
        }
    }

    /// Appends slot `idx` at the MRU end.
    fn push_mru(&mut self, idx: usize) {
        self.slab[idx].prev = self.tail;
        self.slab[idx].next = NIL;
        if self.tail == NIL {
            self.head = idx;
        } else {
            self.slab[self.tail].next = idx;
        }
        self.tail = idx;
    }

    /// Looks up `key`, building (and inserting) the plan on a miss.
    /// Returns the plan and whether it was a hit. Eviction is strict
    /// LRU over `get_or_build` accesses.
    pub fn get_or_build(
        &mut self,
        key: PlanKey,
        build: impl FnOnce() -> SourcePlan,
    ) -> (Arc<SourcePlan>, bool) {
        if let Some(&idx) = self.map.get(&key) {
            self.unlink(idx);
            self.push_mru(idx);
            self.stats.hits += 1;
            return (Arc::clone(&self.slab[idx].plan), true);
        }
        self.stats.misses += 1;
        if self.map.len() >= self.capacity {
            let victim = self.head;
            self.unlink(victim);
            self.map.remove(&self.slab[victim].key);
            self.free.push(victim);
            self.stats.evictions += 1;
        }
        let plan = Arc::new(build());
        let entry = Entry {
            key,
            plan: Arc::clone(&plan),
            prev: NIL,
            next: NIL,
        };
        let idx = match self.free.pop() {
            Some(slot) => {
                self.slab[slot] = entry;
                slot
            }
            None => {
                self.slab.push(entry);
                self.slab.len() - 1
            }
        };
        self.push_mru(idx);
        self.map.insert(key, idx);
        (plan, false)
    }

    /// True if `key` is currently cached (no recency effect).
    #[must_use]
    pub fn contains(&self, key: &PlanKey) -> bool {
        self.map.contains_key(key)
    }

    /// Cached plan count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> PlanCacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ks_core::problem::PointSet;

    fn corpus(n: usize, seed: u64) -> SourceSet {
        SourceSet::new(PointSet::uniform_cube(n, 4, seed))
    }

    #[test]
    fn hit_miss_and_lru_eviction() {
        let (a, b, c) = (corpus(8, 1), corpus(8, 2), corpus(8, 3));
        let (ka, kb, kc) = (
            PlanKey::new(&a, 1.0),
            PlanKey::new(&b, 1.0),
            PlanKey::new(&c, 1.0),
        );
        let mut cache = PlanCache::new(2);
        let (_, hit) = cache.get_or_build(ka, || SourcePlan::build(a.points()));
        assert!(!hit);
        let (_, hit) = cache.get_or_build(kb, || SourcePlan::build(b.points()));
        assert!(!hit);
        let (_, hit) = cache.get_or_build(ka, || SourcePlan::build(a.points()));
        assert!(hit, "a is warm");
        // Inserting c evicts b (LRU after a's touch), not a.
        let (_, hit) = cache.get_or_build(kc, || SourcePlan::build(c.points()));
        assert!(!hit);
        assert!(cache.contains(&ka));
        assert!(!cache.contains(&kb));
        assert_eq!(cache.len(), 2);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 3, 1));
        assert!((s.hit_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn distinct_bandwidths_do_not_alias() {
        let a = corpus(8, 9);
        let mut cache = PlanCache::new(4);
        let _ = cache.get_or_build(PlanKey::new(&a, 0.5), || SourcePlan::build(a.points()));
        let (_, hit) = cache.get_or_build(PlanKey::new(&a, 0.7), || SourcePlan::build(a.points()));
        assert!(!hit, "different h is a different plan key");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _ = PlanCache::new(0);
    }
}
