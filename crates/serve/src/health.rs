//! Pool health monitoring: the drain → evict → readmit control loop.
//!
//! The [`HealthMonitor`] scores each pool device from the evidence its
//! shard attempts produce — launch failures, ABFT-detected corruption,
//! lifecycle faults (hang/loss) and interconnect timeouts. A device
//! that fails [`HealthConfig::evict_threshold`] consecutive attempts
//! is **evicted**: the router stops placing on it and the remaining
//! devices re-plan shard ranges, so merged results stay bit-identical
//! to single-device serving (shards merge by concatenation in slot
//! order regardless of the active-device count). In-flight shards are
//! **drained**, never dropped — the coordinator blocks on the batch
//! merge and a sick shard recovers on the bit-exact CPU path before
//! the eviction takes effect. After [`HealthConfig::probe_cooldown`]
//! batches the device re-enters on **probation**: it receives real
//! traffic again, a clean GPU completion **readmits** it, and a
//! probation failure re-evicts it with a fresh cooldown window — so a
//! flapping device converges to serving only while it is actually
//! healthy.
//!
//! Passive CPU fallbacks (an open breaker, or a CPU-only policy)
//! carry **no health evidence**: the device was never tried, so they
//! neither accumulate failures nor readmit a probation device.
//!
//! If every device is sick the monitor re-opens the whole pool rather
//! than deadlocking: a pool must keep serving, and the CPU safe
//! harbor keeps results correct while it does.

use ks_gpu_sim::fault::DevicePhase;

/// Eviction/readmission policy knobs, configured on
/// [`crate::pool::PoolConfig::health`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthConfig {
    /// Consecutive failed shard attempts before a device is evicted.
    pub evict_threshold: u32,
    /// Batches an evicted device sits out before a readmission probe.
    pub probe_cooldown: u64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            evict_threshold: 3,
            probe_cooldown: 4,
        }
    }
}

/// What one completed shard (or packed sub-launch) attempt revealed
/// about its owner device's health.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ShardHealth {
    /// A GPU attempt completed cleanly: the device is demonstrably
    /// serving.
    CleanGpu,
    /// The GPU attempt failed — launch error, detected corruption,
    /// lifecycle fault, or link timeout — and the shard recovered on
    /// the CPU path.
    Failure,
    /// The device was never tried (CPU-only policy or an open
    /// breaker): no evidence either way.
    Passive,
}

/// Membership state of one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DeviceHealth {
    /// Serving normally.
    Active,
    /// Out of the placement set since `since_batch`.
    Evicted {
        /// Batch index of the (latest) eviction.
        since_batch: u64,
    },
    /// Cooldown expired: receiving probe traffic; one clean GPU
    /// completion readmits, one failure re-evicts.
    Probation,
}

/// Per-pool health scorer and membership authority. Owned by the
/// coordinator; all transitions happen synchronously in batch/slot
/// order, so membership is a pure function of the outcome history and
/// replays deterministically.
#[derive(Debug)]
pub(crate) struct HealthMonitor {
    cfg: HealthConfig,
    states: Vec<DeviceHealth>,
    /// Consecutive failed attempts while active.
    consecutive: Vec<u32>,
    /// Evictions per device (flaps count each time).
    pub(crate) evictions: Vec<u64>,
    /// Readmissions per device.
    pub(crate) readmissions: Vec<u64>,
}

impl HealthMonitor {
    /// All devices active.
    pub(crate) fn new(devices: usize, cfg: HealthConfig) -> Self {
        Self {
            cfg,
            states: vec![DeviceHealth::Active; devices],
            consecutive: vec![0; devices],
            evictions: vec![0; devices],
            readmissions: vec![0; devices],
        }
    }

    /// The placement mask for batch `batch`: active and probation
    /// devices are eligible, and an evicted device whose cooldown has
    /// expired transitions to probation (and into the mask) here. If
    /// no device would be eligible the whole pool re-opens — serving
    /// must continue, and the CPU safe harbor keeps it correct.
    pub(crate) fn eligible(&mut self, batch: u64) -> Vec<bool> {
        let mut mask: Vec<bool> = self
            .states
            .iter_mut()
            .map(|s| match *s {
                DeviceHealth::Active | DeviceHealth::Probation => true,
                DeviceHealth::Evicted { since_batch } => {
                    if batch >= since_batch.saturating_add(self.cfg.probe_cooldown) {
                        *s = DeviceHealth::Probation;
                        true
                    } else {
                        false
                    }
                }
            })
            .collect();
        if !mask.iter().any(|&e| e) {
            mask = vec![true; self.states.len()];
        }
        mask
    }

    /// Scores one completed attempt on `device`. Called by the
    /// coordinator in slot order after the batch merge, so every
    /// in-flight shard has already drained by the time its evidence
    /// can evict anyone.
    pub(crate) fn note_outcome(&mut self, device: usize, outcome: ShardHealth, batch: u64) {
        match outcome {
            ShardHealth::Passive => {}
            ShardHealth::CleanGpu => {
                self.consecutive[device] = 0;
                if self.states[device] != DeviceHealth::Active {
                    self.states[device] = DeviceHealth::Active;
                    self.readmissions[device] += 1;
                }
            }
            ShardHealth::Failure => match self.states[device] {
                DeviceHealth::Active => {
                    self.consecutive[device] = self.consecutive[device].saturating_add(1);
                    if self.consecutive[device] >= self.cfg.evict_threshold {
                        self.evict(device, batch);
                    }
                }
                DeviceHealth::Probation => self.evict(device, batch),
                // Only reachable through the all-sick fallback: push
                // the probe window out without counting a new flap.
                DeviceHealth::Evicted { .. } => {
                    self.states[device] = DeviceHealth::Evicted { since_batch: batch };
                    self.consecutive[device] = 0;
                }
            },
        }
    }

    fn evict(&mut self, device: usize, batch: u64) {
        self.states[device] = DeviceHealth::Evicted { since_batch: batch };
        self.evictions[device] += 1;
        self.consecutive[device] = 0;
    }

    /// True while `device` is excluded from placement.
    #[cfg(test)]
    fn is_evicted(&self, device: usize) -> bool {
        matches!(self.states[device], DeviceHealth::Evicted { .. })
    }
}

/// Maps a lifecycle phase observed at attempt time to the per-device
/// report counters (`None` for a healthy phase).
#[must_use]
pub(crate) fn lifecycle_counter(phase: DevicePhase) -> Option<DevicePhase> {
    match phase {
        DevicePhase::Healthy => None,
        p => Some(p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor(threshold: u32, cooldown: u64) -> HealthMonitor {
        HealthMonitor::new(
            3,
            HealthConfig {
                evict_threshold: threshold,
                probe_cooldown: cooldown,
            },
        )
    }

    #[test]
    fn default_config_is_sane() {
        let c = HealthConfig::default();
        assert!(c.evict_threshold > 0 && c.probe_cooldown > 0);
    }

    #[test]
    fn consecutive_failures_evict_and_success_resets_the_count() {
        let mut h = monitor(3, 4);
        h.note_outcome(1, ShardHealth::Failure, 0);
        h.note_outcome(1, ShardHealth::Failure, 1);
        h.note_outcome(1, ShardHealth::CleanGpu, 2);
        assert!(!h.is_evicted(1), "a success resets the streak");
        h.note_outcome(1, ShardHealth::Failure, 3);
        h.note_outcome(1, ShardHealth::Failure, 4);
        assert!(!h.is_evicted(1));
        h.note_outcome(1, ShardHealth::Failure, 5);
        assert!(h.is_evicted(1), "third consecutive failure evicts");
        assert_eq!(h.evictions[1], 1);
        assert_eq!(h.eligible(6), vec![true, false, true]);
    }

    #[test]
    fn passive_fallbacks_carry_no_evidence() {
        let mut h = monitor(2, 4);
        for b in 0..16 {
            h.note_outcome(0, ShardHealth::Passive, b);
        }
        assert!(!h.is_evicted(0));
        // ...and cannot readmit a probation device either.
        h.note_outcome(2, ShardHealth::Failure, 0);
        h.note_outcome(2, ShardHealth::Failure, 1);
        assert!(h.is_evicted(2));
        let _ = h.eligible(5); // cooldown expired → probation
        h.note_outcome(2, ShardHealth::Passive, 5);
        assert_eq!(h.readmissions[2], 0, "passive outcome must not readmit");
    }

    #[test]
    fn cooldown_gates_probation_and_probe_success_readmits() {
        let mut h = monitor(1, 4);
        h.note_outcome(0, ShardHealth::Failure, 2);
        assert!(h.is_evicted(0));
        assert_eq!(h.eligible(3), vec![false, true, true], "cooling down");
        assert_eq!(h.eligible(5), vec![false, true, true], "still cooling");
        assert_eq!(
            h.eligible(6),
            vec![true, true, true],
            "cooldown expired: probe traffic flows"
        );
        h.note_outcome(0, ShardHealth::CleanGpu, 6);
        assert!(!h.is_evicted(0));
        assert_eq!(h.readmissions[0], 1);
        assert_eq!(h.eligible(7), vec![true, true, true]);
    }

    #[test]
    fn probe_failure_re_evicts_with_a_fresh_window() {
        let mut h = monitor(1, 4);
        h.note_outcome(2, ShardHealth::Failure, 0);
        let _ = h.eligible(4); // → probation
        h.note_outcome(2, ShardHealth::Failure, 4);
        assert!(h.is_evicted(2));
        assert_eq!(h.evictions[2], 2, "the flap counts again");
        assert_eq!(
            h.eligible(7),
            vec![true, true, false],
            "the cooldown restarts from the probe failure"
        );
        assert_eq!(h.eligible(8), vec![true, true, true]);
    }

    #[test]
    fn an_all_sick_pool_reopens_instead_of_deadlocking() {
        let mut h = monitor(1, 100);
        for d in 0..3 {
            h.note_outcome(d, ShardHealth::Failure, 0);
        }
        assert_eq!(
            h.eligible(1),
            vec![true, true, true],
            "no eligible device → the whole pool serves (CPU-safe)"
        );
        // Evidence from the reopened pool still updates membership.
        h.note_outcome(0, ShardHealth::CleanGpu, 1);
        assert!(!h.is_evicted(0));
        assert_eq!(h.readmissions[0], 1);
        assert_eq!(h.eligible(2), vec![true, false, false]);
    }

    #[test]
    fn lifecycle_counter_maps_phases() {
        assert_eq!(lifecycle_counter(DevicePhase::Healthy), None);
        assert_eq!(
            lifecycle_counter(DevicePhase::Hung),
            Some(DevicePhase::Hung)
        );
        assert_eq!(
            lifecycle_counter(DevicePhase::Lost),
            Some(DevicePhase::Lost)
        );
    }
}
