//! The batch server: bounded submission, coalescing worker, tickets.
//!
//! Producers [`Server::submit`] queries into a [`BoundedQueue`]; a
//! single worker thread drains them in *waves*, groups queries that
//! share `(source-set id, h, target set)` into one multi-weight fused
//! solve, resolves the `A`-side plan through the LRU [`PlanCache`],
//! and fulfils per-query [`Ticket`]s. Backpressure is explicit: a full
//! queue returns [`Submit::Rejected`] with the query handed back.
//!
//! Failure policy: queries whose deadline has passed at dequeue time
//! complete with [`ServeError::DeadlineExpired`], and completed
//! batches re-check deadlines at fulfilment (`expired_in_batch`); a
//! simulated-GPU launch failure either falls back to the
//! bit-deterministic CPU fused path (`cpu_fallback`, the default) or
//! surfaces as [`ServeError::Launch`] per query.
//!
//! Resilience: the [`ServeBackend::GpuResilient`] backend drives a
//! degradation ladder — ABFT-verified GPU → unverified GPU → CPU
//! fused — with bounded retries (exponential backoff, deterministic
//! jitter) and a per-backend circuit breaker; see
//! [`ResilienceConfig`] and DESIGN.md §11. Lock poisoning never
//! cascades: a panicked worker is drained into explicit
//! [`ServeError::Internal`] completions at shutdown.

use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ks_core::plan::{SourcePlan, SourceSet};
use ks_core::problem::PointSet;
use ks_core::FusedCpuConfig;
use ks_energy::{pipeline_energy, EnergyParams};
use ks_gpu_kernels::{TileGeometry, VerifyReport, FUSED_MULTI_PIPELINE};
use ks_gpu_sim::config::DeviceConfig;
use ks_gpu_sim::device::GpuDevice;
use ks_gpu_sim::kernel::LaunchError;
use ks_gpu_sim::profiler::PipelineProfile;

use crate::admission::{self, AdmissionKey, AdmissionStats};
use crate::cache::{GeometryStats, PlanCache, PlanCacheStats, PlanKey};
use crate::executor::{self, MAX_GPU_BATCH};
use crate::packed;
use crate::pool::{DevicePool, PoolConfig, PoolReport};
use crate::queue::BoundedQueue;

/// One kernel-summation request: evaluate the Gaussian sum over
/// `sources` at bandwidth `h`, weighted by one weight per target.
#[derive(Debug, Clone)]
pub struct Query {
    /// The corpus (`A`); queries sharing a corpus handle coalesce.
    pub sources: SourceSet,
    /// The targets (`B`); shared via `Arc` so coalescing can test
    /// identity instead of comparing coordinates.
    pub targets: Arc<PointSet>,
    /// One weight per target (the query's column of `W`).
    pub weights: Vec<f32>,
    /// Gaussian bandwidth.
    pub h: f32,
    /// Drop the query (with [`ServeError::DeadlineExpired`]) if it is
    /// still queued past this instant.
    pub deadline: Option<Instant>,
}

/// Why a query completed without a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The query was still queued when its deadline passed.
    DeadlineExpired,
    /// Deadline-aware brownout: the wave was running behind and the
    /// query's deadline fell before its chunk's projected start, so it
    /// was shed instead of being executed only to expire.
    Shed,
    /// The GPU launch failed and CPU fallback was disabled.
    Launch(LaunchError),
    /// The server shut down before the query was executed.
    ShutDown,
    /// The server hit an internal failure (e.g. a panicked worker
    /// thread) and drained the query instead of cascading the panic.
    Internal(&'static str),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::DeadlineExpired => write!(f, "deadline expired before execution"),
            ServeError::Shed => write!(f, "shed by deadline-aware brownout"),
            ServeError::Launch(e) => write!(f, "GPU launch failed: {e}"),
            ServeError::ShutDown => write!(f, "server shut down before execution"),
            ServeError::Internal(why) => write!(f, "internal server error: {why}"),
        }
    }
}

impl std::error::Error for ServeError {}

struct TicketInner {
    result: Mutex<Option<Result<Vec<f32>, ServeError>>>,
    done: Condvar,
}

/// A handle to one submitted query's eventual result.
#[derive(Clone)]
pub struct Ticket {
    inner: Arc<TicketInner>,
}

impl Ticket {
    fn new() -> Self {
        Self {
            inner: Arc::new(TicketInner {
                result: Mutex::new(None),
                done: Condvar::new(),
            }),
        }
    }

    // All ticket locks recover from poisoning instead of propagating
    // the panic: the critical sections only move an `Option` in or
    // out, so a poisoned slot is still structurally sound — the Err
    // completions a dying worker leaves behind must reach waiters,
    // not abort them.
    fn fulfil(&self, r: Result<Vec<f32>, ServeError>) {
        let mut g = self
            .inner
            .result
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if g.is_none() {
            *g = Some(r);
        }
        drop(g);
        self.inner.done.notify_all();
    }

    /// Blocks until the query completes; returns the potential vector
    /// `V ∈ R^M` or the failure.
    ///
    /// # Errors
    /// The query's [`ServeError`] when it did not produce a result.
    pub fn wait(&self) -> Result<Vec<f32>, ServeError> {
        let mut g = self
            .inner
            .result
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(r) = g.take() {
                return r;
            }
            g = self
                .inner
                .done
                .wait(g)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking check; consumes the result if present.
    pub fn try_take(&self) -> Option<Result<Vec<f32>, ServeError>> {
        self.inner
            .result
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
    }
}

/// Outcome of [`Server::submit`].
pub enum Submit {
    /// Queued; await the ticket.
    Accepted(Ticket),
    /// Backpressure: the queue was full (or closing) and the query is
    /// handed back untouched.
    Rejected(Box<Query>),
}

/// Which execution path serves batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeBackend {
    /// Cache-blocked fused CPU solver (bit-deterministic).
    CpuFused,
    /// Simulated-GPU fused multi-weight pipeline.
    GpuFused {
        /// Retry a failed launch on the CPU fused path instead of
        /// failing the batch's queries.
        cpu_fallback: bool,
    },
    /// The resilient ladder: ABFT-verified GPU with bounded retries
    /// and a circuit breaker, degrading through unverified GPU to the
    /// bit-deterministic CPU fused safe harbor. Policy lives in
    /// [`ServeConfig::resilience`].
    GpuResilient,
}

/// Deterministic fault injection for testing the fallback path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultInjection {
    /// No injected faults.
    None,
    /// The first `n` GPU batch launch attempts fail with
    /// [`LaunchError::EmptyLaunch`] before touching the device.
    FirstN(u64),
    /// The first GPU batch panics the worker thread (a driver-bug
    /// stand-in for exercising poison recovery end to end).
    PanicFirst,
}

/// Retry, backoff and circuit-breaker policy of
/// [`ServeBackend::GpuResilient`].
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// Launch attempts on the top GPU rung before degrading (≥ 1).
    pub gpu_attempts: u32,
    /// Base backoff delay; retry `a` sleeps `base·2^a` plus a
    /// deterministic jitter of up to one `base` (see
    /// [`backoff_delay`]).
    pub backoff_base: Duration,
    /// Seed of the deterministic jitter hash.
    pub backoff_seed: u64,
    /// Consecutive GPU-attempt failures that trip the breaker open.
    pub breaker_threshold: u32,
    /// Batches the breaker stays open before probing half-open.
    pub breaker_cooldown: u64,
    /// Run the top rung through the checksum-augmented (ABFT)
    /// pipeline. Off, the ladder starts at unverified GPU.
    pub verify: bool,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self {
            gpu_attempts: 3,
            backoff_base: Duration::from_micros(100),
            backoff_seed: 0x5EED,
            breaker_threshold: 3,
            breaker_cooldown: 4,
            verify: true,
        }
    }
}

/// SplitMix64: the jitter/decorrelation hash. Full-avalanche, so
/// nearby (batch, attempt) pairs give unrelated draws.
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deterministic backoff schedule: before retry `attempt`
/// (1-based) of `batch`, the worker sleeps
/// `base·2^min(attempt,10) + base·jitter/256` where `jitter ∈ 0..256`
/// is a [`splitmix64`] hash of `(seed, batch, attempt)`. Pure in its
/// inputs — a fixed seed replays the exact schedule — and strictly
/// increasing in `attempt` up to the `2^10` clamp (the jitter never
/// exceeds one doubling).
#[must_use]
pub fn backoff_delay(rc: &ResilienceConfig, batch: u64, attempt: u32) -> Duration {
    let exp = 1u32 << attempt.min(10);
    let h = splitmix64(
        rc.backoff_seed
            ^ batch.rotate_left(17)
            ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    let jitter = (h % 256) as u32;
    rc.backoff_base * exp + rc.backoff_base * jitter / 256
}

/// One tuned geometry decision the server may apply: batches whose
/// raw `(M, N, K)` shape matches use `geometry` instead of the
/// config-wide default, and — under an energy budget — may downshift
/// to `low_power`, which must be bit-compatible with `geometry` so
/// routing never changes a result bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeometryPick {
    /// Raw (unpadded) source count this pick applies to.
    pub m: usize,
    /// Raw target count.
    pub n: usize,
    /// Raw point dimension.
    pub k: usize,
    /// The winning geometry for this shape.
    pub geometry: TileGeometry,
    /// Optional lower-energy variant from the same bit-compatibility
    /// class (validated at [`Server::start`]).
    pub low_power: Option<TileGeometry>,
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Submission queue bound (backpressure threshold).
    pub queue_capacity: usize,
    /// Maximum queries drained per scheduling wave.
    pub wave: usize,
    /// Maximum queries coalesced into one solve (clamped to
    /// [`MAX_GPU_BATCH`] on the GPU backend).
    pub max_batch: usize,
    /// LRU plan-cache capacity (plans, not bytes).
    pub plan_cache_capacity: usize,
    /// Disable to rebuild the plan for every batch (ablation).
    pub enable_plan_cache: bool,
    /// Execution path.
    pub backend: ServeBackend,
    /// Device model for GPU batches (a fresh device per batch, so
    /// per-batch DRAM accounting is independent).
    pub device: DeviceConfig,
    /// CPU fused-solver blocking.
    pub cpu: FusedCpuConfig,
    /// Statically lint the exact kernel a GPU batch would launch
    /// before its first attempt (see [`crate::admission`]); a proof
    /// failure serves the batch on the bit-exact CPU path instead.
    /// Verdicts are memoized by launch geometry alongside the plan
    /// cache, so warm shapes pay one hash lookup.
    pub static_lint: bool,
    /// Injected launch faults (tests only).
    pub fault_injection: FaultInjection,
    /// Retry/backoff/breaker policy of the resilient backend.
    pub resilience: ResilienceConfig,
    /// Artificial per-batch latency — a slow consumer for soak tests.
    pub batch_delay: Option<Duration>,
    /// Start with the worker gated; queries queue up until
    /// [`Server::resume`]. Gives tests deterministic batch
    /// composition.
    pub start_paused: bool,
    /// Shard every batch across a pool of simulated devices instead
    /// of the single [`ServeConfig::device`]. Results stay
    /// bit-identical to single-device serving (row-wise sharding is an
    /// exact partition); `None` serves unpooled.
    pub pool: Option<PoolConfig>,
    /// Tile geometry GPU batches launch with when no tuned pick
    /// matches their shape.
    pub geometry: TileGeometry,
    /// Bit-compatible lower-energy fallback for shapes without a
    /// tuned pick: the variant energy-budgeted serving downshifts to
    /// when no [`GeometryPick`] matches the batch. Validated at
    /// [`Server::start`] like a pick's `low_power`.
    pub low_power: Option<TileGeometry>,
    /// Tuned per-shape geometry decisions (typically the `ks-tune`
    /// picks). The resolved winner is memoized per raw batch shape
    /// next to the plan cache.
    pub geometry_picks: Vec<GeometryPick>,
    /// Energy budget in joules per query. When the modelled GPU
    /// energy spent per served query exceeds this, subsequent batches
    /// route to their pick's bit-compatible `low_power` variant —
    /// results stay bit-identical to unbudgeted serving by the
    /// bit-compatibility contract. `None` never downshifts.
    pub energy_budget_j: Option<f64>,
    /// Horizontal fusion: pack mutually-unrelated small GPU batches
    /// from one scheduling wave into a single routed launch (see
    /// [`crate::packed`]). Results stay bit-identical to unpacked
    /// serving; only launch count, occupancy and DRAM traffic change.
    /// Ignored on the CPU backend. Off by default.
    pub pack: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            wave: 16,
            max_batch: MAX_GPU_BATCH,
            plan_cache_capacity: 8,
            enable_plan_cache: true,
            backend: ServeBackend::GpuFused { cpu_fallback: true },
            device: DeviceConfig::gtx970(),
            cpu: FusedCpuConfig::default(),
            static_lint: true,
            fault_injection: FaultInjection::None,
            resilience: ResilienceConfig::default(),
            batch_delay: None,
            start_paused: false,
            pool: None,
            geometry: TileGeometry::paper_default(),
            low_power: None,
            geometry_picks: Vec::new(),
            energy_budget_j: None,
            pack: false,
        }
    }
}

/// End-of-run accounting. `submitted == accepted + rejected` and
/// `accepted == completed + expired + shed + failed` always hold
/// after [`Server::shutdown`] when `internal_errors == 0` (a panicked
/// worker loses its counters; its queries drain as
/// [`ServeError::Internal`]). Batch execution obeys
/// `attempts == batches + retries`: every batch makes exactly one
/// first attempt and each extra attempt — GPU retry, rung
/// degradation, or CPU fallback — counts one retry.
#[derive(Debug, Clone, Default)]
pub struct ServeReport {
    /// Queries offered to [`Server::submit`].
    pub submitted: u64,
    /// Queries that entered the queue.
    pub accepted: u64,
    /// Queries bounced by backpressure.
    pub rejected: u64,
    /// Queries that produced a result.
    pub completed: u64,
    /// Queries dropped for a passed deadline.
    pub expired: u64,
    /// Of `expired`: queries still live at batch assembly that
    /// expired while their own batch executed (re-checked at
    /// fulfilment, never completed as on-time).
    pub expired_in_batch: u64,
    /// Queries shed by the deadline-aware brownout: their deadline
    /// fell before their chunk's projected start in a running-behind
    /// wave, so they were dropped (with [`ServeError::Shed`]) instead
    /// of executed only to expire.
    pub shed: u64,
    /// Resilient-ladder backoff sleeps skipped because the delay
    /// would have overrun every live deadline in the batch — the
    /// ladder short-circuits to the CPU safe harbor instead of
    /// sleeping the batch past its deadlines.
    pub backoff_shortcircuits: u64,
    /// Queries failed with a launch error (no fallback).
    pub failed: u64,
    /// Batches recovered on the CPU after GPU failure (the
    /// `cpu_fallback` path and the resilient ladder's safe harbor).
    pub fallbacks: u64,
    /// Coalesced solves executed.
    pub batches: u64,
    /// Queries served through those solves.
    pub batched_queries: u64,
    /// Batch execution attempts across all rungs and backends.
    pub attempts: u64,
    /// Attempts beyond each batch's first (`attempts - batches`).
    pub retries: u64,
    /// Simulated kernel launches across all completed GPU profiles —
    /// the launch-granularity view `batches` lacks (a cold batch is 3
    /// launches, a warm one 2, a packed wave amortises further).
    pub launches: u64,
    /// Horizontally-fused launches executed (one per packed wave per
    /// device; see [`ServeConfig::pack`]).
    pub packed_launches: u64,
    /// Batches served as segments of those packed launches.
    pub packed_segments: u64,
    /// Queries completed below the configured top rung (unverified
    /// GPU or CPU on the resilient backend).
    pub degraded_completions: u64,
    /// Verified-GPU attempts whose ABFT checks tripped (the result
    /// was discarded and the attempt retried or degraded).
    pub corruption_detected: u64,
    /// Injected data-fault events (SMEM/register/DRAM flips) observed
    /// in completed GPU batch profiles.
    pub injected_faults: u64,
    /// Completed GPU attempts whose profile recorded injected data
    /// faults but whose checks (if any) stayed clean — masked flips
    /// or faults outside ABFT coverage (see DESIGN.md §11).
    pub undetected_injected: u64,
    /// Circuit-breaker transitions to open.
    pub breaker_trips: u64,
    /// Circuit-breaker recoveries (half-open probe succeeded).
    pub breaker_resets: u64,
    /// Worker-side internal failures (panicked worker drained at
    /// shutdown). Non-zero voids the per-query invariants above.
    pub internal_errors: u64,
    /// Plan-cache counters.
    pub plan_cache: PlanCacheStats,
    /// Static-admission counters (checks computed, memo hits, batches
    /// denied the GPU); all zero when `static_lint` is off or the
    /// backend is CPU-only.
    pub static_admission: AdmissionStats,
    /// Winning-geometry memo counters.
    pub geometry: GeometryStats,
    /// Modelled GPU energy across all completed batch profiles,
    /// joules (the energy model over the exact simulated counters).
    pub energy_j: f64,
    /// Batches routed to the low-power bit-compatible variant by the
    /// energy budget.
    pub energy_downshifts: u64,
    /// Deepest queue occupancy observed (≤ configured capacity).
    pub queue_high_water: usize,
    /// One pipeline profile per GPU batch, in execution order (per
    /// GPU shard when pooled).
    pub profiles: Vec<PipelineProfile>,
    /// Per-device pool accounting; `Some` iff serving was pooled.
    pub pool: Option<PoolReport>,
}

impl ServeReport {
    /// Total simulated DRAM transactions across all GPU batches.
    #[must_use]
    pub fn total_dram_transactions(&self) -> u64 {
        self.profiles
            .iter()
            .map(|p| p.total_mem().dram_transactions())
            .sum()
    }

    /// Plan-cache hit rate over batch lookups.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        self.plan_cache.hit_rate()
    }

    /// Modelled GPU joules per completed query (0 when nothing
    /// completed or no GPU batch ran).
    #[must_use]
    pub fn j_per_query(&self) -> f64 {
        if self.completed == 0 {
            return 0.0;
        }
        self.energy_j / self.completed as f64
    }

    /// All per-batch profiles merged into one pipeline (for metrics
    /// export and energy modelling).
    #[must_use]
    pub fn merged_profile(&self) -> PipelineProfile {
        let mut merged = PipelineProfile::new(FUSED_MULTI_PIPELINE);
        for p in &self.profiles {
            merged.kernels.extend(p.kernels.iter().cloned());
            merged.transfers.extend(p.transfers.iter().cloned());
        }
        merged
    }
}

/// Grouping key for coalescing: corpus identity, bit-exact bandwidth,
/// and a **content fingerprint** of the target set. Keying targets on
/// the `Arc` pointer looks attractive but is wrong two ways: equal
/// target sets in separate allocations never coalesce (a missed
/// batching opportunity every multi-client workload hits), and a
/// freed-then-reused allocation address could collide queries with
/// *different* targets into one batch. The fingerprint hashes the
/// coordinate bits; grouping additionally verifies equality against
/// the group's prototype, so a hash collision can only split a batch,
/// never corrupt one.
#[derive(PartialEq, Eq, Hash, Clone, Copy)]
struct BatchKey {
    source: u64,
    h_bits: u32,
    targets: u64,
}

impl BatchKey {
    fn of(q: &Query) -> Self {
        Self {
            source: q.sources.id().raw(),
            h_bits: q.h.to_bits(),
            targets: fingerprint_targets(&q.targets),
        }
    }
}

/// Order-sensitive [`splitmix64`] chain over a target set's shape and
/// coordinate bits.
fn fingerprint_targets(t: &PointSet) -> u64 {
    let mut acc = splitmix64(t.len() as u64 ^ ((t.dim() as u64) << 32));
    for &c in t.coords() {
        acc = splitmix64(acc ^ u64::from(c.to_bits()));
    }
    acc
}

/// Bit-exact target-set equality (pointer fast path). The slow path
/// only runs on a fingerprint match, i.e. almost always on genuinely
/// equal sets.
fn same_targets(a: &Arc<PointSet>, b: &Arc<PointSet>) -> bool {
    Arc::ptr_eq(a, b)
        || (a.len() == b.len()
            && a.dim() == b.dim()
            && a.coords()
                .iter()
                .zip(b.coords())
                .all(|(x, y)| x.to_bits() == y.to_bits()))
}

struct Gate {
    paused: Mutex<bool>,
    resumed: Condvar,
}

/// Counters the worker owns; merged into the report at shutdown.
#[derive(Default)]
struct WorkerStats {
    completed: u64,
    expired: u64,
    expired_in_batch: u64,
    shed: u64,
    backoff_shortcircuits: u64,
    failed: u64,
    fallbacks: u64,
    batches: u64,
    batched_queries: u64,
    attempts: u64,
    retries: u64,
    launches: u64,
    packed_launches: u64,
    packed_segments: u64,
    degraded_completions: u64,
    corruption_detected: u64,
    injected_faults: u64,
    undetected_injected: u64,
    breaker_trips: u64,
    breaker_resets: u64,
    internal_errors: u64,
    plan_cache: PlanCacheStats,
    static_admission: AdmissionStats,
    geometry: GeometryStats,
    energy_j: f64,
    energy_downshifts: u64,
    profiles: Vec<PipelineProfile>,
    pool: Option<PoolReport>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    Closed,
    Open { since_batch: u64 },
    HalfOpen,
}

/// Per-backend circuit breaker over GPU attempts: `threshold`
/// consecutive failures (launch faults or detected corruption) trip
/// it open; open batches skip the GPU rungs entirely (straight to the
/// CPU safe harbor); after `cooldown` batches one half-open probe is
/// admitted — success closes the breaker, failure re-opens it.
pub(crate) struct Breaker {
    threshold: u32,
    cooldown: u64,
    state: BreakerState,
    consecutive_failures: u32,
    pub(crate) trips: u64,
    pub(crate) resets: u64,
}

impl Breaker {
    pub(crate) fn new(rc: &ResilienceConfig) -> Self {
        Self {
            threshold: rc.breaker_threshold.max(1),
            cooldown: rc.breaker_cooldown,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            trips: 0,
            resets: 0,
        }
    }

    /// May batch `batch_idx` attempt the GPU rungs?
    pub(crate) fn allow(&mut self, batch_idx: u64) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open { since_batch } => {
                if batch_idx >= since_batch.saturating_add(self.cooldown) {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    pub(crate) fn record_success(&mut self) {
        if self.state == BreakerState::HalfOpen {
            self.resets += 1;
        }
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
    }

    pub(crate) fn record_failure(&mut self, batch_idx: u64) {
        // Saturate: a permanently sick device on a long run would
        // otherwise overflow the counter (a panic in debug, a silent
        // breaker close at the wrap in release).
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        let reopen = self.state == BreakerState::HalfOpen;
        if reopen || self.consecutive_failures >= self.threshold {
            if !matches!(self.state, BreakerState::Open { .. }) {
                self.trips += 1;
            }
            self.state = BreakerState::Open {
                since_batch: batch_idx,
            };
        }
    }
}

/// The batch server. See the module docs.
pub struct Server {
    queue: Arc<BoundedQueue<(Query, Ticket)>>,
    gate: Arc<Gate>,
    worker: Option<JoinHandle<WorkerStats>>,
    /// One clone per accepted query, so a panicked worker's in-flight
    /// queries can still be drained with an explicit error at
    /// shutdown (fulfilment is first-write-wins, so completed tickets
    /// are untouched).
    outstanding: Vec<Ticket>,
    submitted: u64,
    accepted: u64,
    rejected: u64,
}

impl Server {
    /// Starts the worker thread.
    ///
    /// # Panics
    /// Panics on a zero queue capacity, wave or batch size, or a zero
    /// plan-cache capacity while the cache is enabled.
    #[must_use]
    pub fn start(cfg: ServeConfig) -> Self {
        assert!(cfg.wave > 0, "wave size must be positive");
        assert!(cfg.max_batch > 0, "batch size must be positive");
        assert!(
            cfg.geometry.feasibility(&cfg.device).is_ok(),
            "configured tile geometry is infeasible on the configured device"
        );
        if let Some(low) = &cfg.low_power {
            assert!(
                low.bit_compatible(&cfg.geometry),
                "configured low-power variant is not bit-compatible with the                  configured geometry — energy routing would change result bits"
            );
            assert!(
                low.feasibility(&cfg.device).is_ok(),
                "configured low-power variant is infeasible on the configured device"
            );
        }
        for p in &cfg.geometry_picks {
            assert!(
                p.geometry.feasibility(&cfg.device).is_ok(),
                "pick for {}x{}x{} is infeasible on the configured device",
                p.m,
                p.n,
                p.k
            );
            if let Some(low) = &p.low_power {
                assert!(
                    low.bit_compatible(&p.geometry),
                    "low-power variant for {}x{}x{} is not bit-compatible with its pick                      — energy routing would change result bits",
                    p.m,
                    p.n,
                    p.k
                );
                assert!(
                    low.feasibility(&cfg.device).is_ok(),
                    "low-power variant for {}x{}x{} is infeasible on the configured device",
                    p.m,
                    p.n,
                    p.k
                );
            }
        }
        let queue = Arc::new(BoundedQueue::new(cfg.queue_capacity));
        let gate = Arc::new(Gate {
            paused: Mutex::new(cfg.start_paused),
            resumed: Condvar::new(),
        });
        let worker = {
            let queue = Arc::clone(&queue);
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || worker_loop(&cfg, &queue, &gate))
        };
        Self {
            queue,
            gate,
            worker: Some(worker),
            outstanding: Vec::new(),
            submitted: 0,
            accepted: 0,
            rejected: 0,
        }
    }

    /// Offers a query. Full queue ⇒ [`Submit::Rejected`] with the
    /// query returned; the caller decides whether to retry.
    ///
    /// # Panics
    /// Panics on a malformed query: empty corpus or target set,
    /// mismatched dimensions or weight count, or a non-finite/
    /// non-positive bandwidth.
    pub fn submit(&mut self, q: Query) -> Submit {
        assert!(!q.sources.is_empty(), "query has an empty corpus");
        assert!(!q.targets.is_empty(), "query has an empty target set");
        assert_eq!(
            q.sources.dim(),
            q.targets.dim(),
            "source/target dimensions differ"
        );
        assert_eq!(
            q.weights.len(),
            q.targets.len(),
            "weights length must equal target count"
        );
        assert!(
            q.h.is_finite() && q.h > 0.0,
            "bandwidth must be finite and positive"
        );
        self.submitted += 1;
        let ticket = Ticket::new();
        match self.queue.try_push((q, ticket.clone())) {
            Ok(()) => {
                self.accepted += 1;
                self.outstanding.push(ticket.clone());
                Submit::Accepted(ticket)
            }
            Err((q, _)) => {
                self.rejected += 1;
                Submit::Rejected(Box::new(q))
            }
        }
    }

    /// Opens the gate of a paused server; the worker starts draining.
    pub fn resume(&self) {
        *self
            .gate
            .paused
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = false;
        self.gate.resumed.notify_all();
    }

    /// Closes the queue, drains the backlog, joins the worker and
    /// returns the final accounting.
    ///
    /// A panicked worker does **not** propagate: its queued and
    /// in-flight queries are drained with [`ServeError::Internal`],
    /// the report carries `internal_errors = 1`, and the worker-side
    /// counters are lost (the per-query invariants hold only when
    /// `internal_errors == 0`).
    #[must_use]
    pub fn shutdown(mut self) -> ServeReport {
        self.queue.close();
        self.resume();
        let worker = self.worker.take().expect("worker present until shutdown");
        let w = match worker.join() {
            Ok(w) => w,
            Err(_) => {
                while let Some((_, t)) = self.queue.try_pop() {
                    t.fulfil(Err(ServeError::Internal("worker thread panicked")));
                }
                for t in &self.outstanding {
                    t.fulfil(Err(ServeError::Internal("worker thread panicked")));
                }
                WorkerStats {
                    internal_errors: 1,
                    ..WorkerStats::default()
                }
            }
        };
        ServeReport {
            submitted: self.submitted,
            accepted: self.accepted,
            rejected: self.rejected,
            completed: w.completed,
            expired: w.expired,
            expired_in_batch: w.expired_in_batch,
            shed: w.shed,
            backoff_shortcircuits: w.backoff_shortcircuits,
            failed: w.failed,
            fallbacks: w.fallbacks,
            batches: w.batches,
            batched_queries: w.batched_queries,
            attempts: w.attempts,
            retries: w.retries,
            launches: w.launches,
            packed_launches: w.packed_launches,
            packed_segments: w.packed_segments,
            degraded_completions: w.degraded_completions,
            corruption_detected: w.corruption_detected,
            injected_faults: w.injected_faults,
            undetected_injected: w.undetected_injected,
            breaker_trips: w.breaker_trips,
            breaker_resets: w.breaker_resets,
            internal_errors: w.internal_errors,
            plan_cache: w.plan_cache,
            static_admission: w.static_admission,
            geometry: w.geometry,
            energy_j: w.energy_j,
            energy_downshifts: w.energy_downshifts,
            queue_high_water: self.queue.high_water(),
            profiles: w.profiles,
            pool: w.pool,
        }
    }

    /// Current queue depth (racy; for monitoring).
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if let Some(w) = self.worker.take() {
            self.queue.close();
            self.resume();
            let _ = w.join();
        }
    }
}

fn worker_loop(
    cfg: &ServeConfig,
    queue: &BoundedQueue<(Query, Ticket)>,
    gate: &Gate,
) -> WorkerStats {
    let mut stats = WorkerStats::default();
    let mut cache = PlanCache::new(cfg.plan_cache_capacity.max(1));
    let mut breaker = Breaker::new(&cfg.resilience);
    let mut injected = 0u64;
    // EWMA of per-chunk wall time, the brownout's service-rate
    // estimate. Zero until the first wave completes, so nothing is
    // ever shed before a real measurement exists.
    let mut chunk_ewma_s = 0.0f64;
    let mut pool = cfg
        .pool
        .as_ref()
        .map(|p| DevicePool::start(p, cfg.backend, &cfg.resilience, cfg.cpu, cfg.geometry));
    loop {
        {
            let mut paused = gate.paused.lock().unwrap_or_else(PoisonError::into_inner);
            while *paused {
                paused = gate
                    .resumed
                    .wait(paused)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
        // One wave: block for the first query, then opportunistically
        // drain up to `wave` total so concurrent arrivals coalesce.
        let Some(first) = queue.pop_blocking() else {
            break;
        };
        let mut wave = vec![first];
        while wave.len() < cfg.wave {
            match queue.try_pop() {
                Some(item) => wave.push(item),
                None => break,
            }
        }
        // Group by (corpus, h, targets), preserving arrival order
        // across and within groups. Groups are a Vec, not a map: the
        // wave is small, and membership needs the prototype-equality
        // check (fingerprints alone could collide).
        let mut groups: Vec<(BatchKey, Vec<(Query, Ticket)>)> = Vec::new();
        for (q, t) in wave {
            let key = BatchKey::of(&q);
            match groups
                .iter_mut()
                .find(|(k, g)| *k == key && same_targets(&g[0].0.targets, &q.targets))
            {
                Some((_, g)) => g.push((q, t)),
                None => groups.push((key, vec![(q, t)])),
            }
        }
        let max_batch = match cfg.backend {
            ServeBackend::CpuFused => cfg.max_batch,
            ServeBackend::GpuFused { .. } | ServeBackend::GpuResilient => {
                cfg.max_batch.min(MAX_GPU_BATCH)
            }
        };
        // Split each group into owned max_batch-sized chunks — the
        // wave's unit of execution (and of packing, when enabled).
        let mut chunks: Vec<Vec<(Query, Ticket)>> = Vec::new();
        for (_, group) in groups {
            let mut rest = group;
            while rest.len() > max_batch {
                let tail = rest.split_off(max_batch);
                chunks.push(std::mem::replace(&mut rest, tail));
            }
            chunks.push(rest);
        }
        brownout_shed(&mut chunks, chunk_ewma_s, &mut stats);
        let n_chunks = chunks.len();
        let wave_started = Instant::now();
        serve_wave(
            cfg,
            chunks,
            &mut cache,
            &mut pool,
            &mut breaker,
            &mut injected,
            &mut stats,
        );
        if n_chunks > 0 {
            let sample = wave_started.elapsed().as_secs_f64() / n_chunks as f64;
            chunk_ewma_s = if chunk_ewma_s == 0.0 {
                sample
            } else {
                0.7 * chunk_ewma_s + 0.3 * sample
            };
        }
    }
    stats.plan_cache = cache.stats();
    stats.static_admission = cache.admission_stats();
    stats.geometry = cache.geometry_stats();
    stats.breaker_trips = breaker.trips;
    stats.breaker_resets = breaker.resets;
    stats.pool = pool.map(DevicePool::shutdown);
    stats
}

/// True when this batch could reach a simulated device (pooled
/// serving or any GPU backend) — the static-admission gate only
/// applies then.
fn uses_gpu(cfg: &ServeConfig, pool: &Option<DevicePool>) -> bool {
    pool.is_some() || !matches!(cfg.backend, ServeBackend::CpuFused)
}

/// Deadline-aware brownout: with `avg_chunk_s` estimating one chunk's
/// service time, chunk `i` of this wave starts roughly `i·avg` from
/// now. A query whose deadline falls before that projected start is
/// doomed — executing it spends a batch column only to expire at the
/// fulfilment re-check — so it is shed now with [`ServeError::Shed`].
/// Chunk 0 starts immediately and is never shed; queries already past
/// their deadline are left for the dequeue check so they count as
/// `expired`, not `shed`; and with no measurement yet (`avg == 0`)
/// nothing sheds.
fn brownout_shed(chunks: &mut [Vec<(Query, Ticket)>], avg_chunk_s: f64, stats: &mut WorkerStats) {
    if avg_chunk_s <= 0.0 {
        return;
    }
    let now = Instant::now();
    for (i, chunk) in chunks.iter_mut().enumerate().skip(1) {
        let projected = now + Duration::from_secs_f64(avg_chunk_s * i as f64);
        chunk.retain(|(q, t)| match q.deadline {
            Some(d) if d > now && d < projected => {
                t.fulfil(Err(ServeError::Shed));
                stats.shed += 1;
                false
            }
            _ => true,
        });
    }
}

/// Executes one scheduling wave. Without packing (or on the pure CPU
/// path) every chunk runs exactly as before: prepare then execute, in
/// wave order. With [`ServeConfig::pack`] on a GPU-capable path, all
/// chunks are prepared first (identical plan-cache/admission/geometry
/// side effects, in the identical order), the [`packed::PackedBatch`]
/// planner groups the pack-eligible ones by resolved geometry, packed
/// groups launch horizontally fused, and the leftovers serve unpacked
/// in wave order.
#[allow(clippy::too_many_arguments)]
fn serve_wave(
    cfg: &ServeConfig,
    chunks: Vec<Vec<(Query, Ticket)>>,
    cache: &mut PlanCache,
    pool: &mut Option<DevicePool>,
    breaker: &mut Breaker,
    injected: &mut u64,
    stats: &mut WorkerStats,
) {
    if !cfg.pack || !uses_gpu(cfg, pool) {
        for chunk in chunks {
            if let Some(prep) = prepare_chunk(cfg, chunk, cache, pool, stats) {
                run_prepared(cfg, prep, pool, breaker, injected, stats, false);
            }
        }
        return;
    }
    let mut prepared: Vec<Option<PreparedChunk>> = chunks
        .into_iter()
        .map(|chunk| prepare_chunk(cfg, chunk, cache, pool, stats))
        .collect();
    let classes: Vec<Option<TileGeometry>> = prepared
        .iter()
        .map(|p| {
            p.as_ref().and_then(|p| {
                let (m, _) = p.plan.dims();
                let n = p.live[0].0.targets.len();
                (p.admitted && packed::packable(m, n, &p.geo)).then_some(p.geo)
            })
        })
        .collect();
    for group in packed::PackedBatch::plan(&classes).groups {
        let preps: Vec<PreparedChunk> = group
            .into_iter()
            .map(|i| prepared[i].take().expect("planner indices are distinct"))
            .collect();
        run_packed_group(cfg, preps, pool, breaker, injected, stats);
    }
    for prep in prepared.into_iter().flatten() {
        run_prepared(cfg, prep, pool, breaker, injected, stats, false);
    }
}

/// One chunk after plan resolution and admission, ready to execute
/// (unpacked or as a packed segment). Expired queries were already
/// fulfilled during preparation.
struct PreparedChunk {
    live: Vec<(Query, Ticket)>,
    plan: Arc<SourcePlan>,
    hit: bool,
    weights: Vec<Vec<f32>>,
    geo: TileGeometry,
    admitted: bool,
}

/// The front half of chunk execution: deadline filtering, plan-cache
/// lookup, weight collection, geometry resolution and static
/// admission. `None` when every query had already expired.
fn prepare_chunk(
    cfg: &ServeConfig,
    chunk: Vec<(Query, Ticket)>,
    cache: &mut PlanCache,
    pool: &Option<DevicePool>,
    stats: &mut WorkerStats,
) -> Option<PreparedChunk> {
    // Deadline check at dequeue time: expired queries never reach the
    // solver (and never count as a batch column).
    let now = Instant::now();
    let mut live: Vec<(Query, Ticket)> = Vec::with_capacity(chunk.len());
    for (q, t) in chunk {
        match q.deadline {
            Some(d) if d < now => {
                t.fulfil(Err(ServeError::DeadlineExpired));
                stats.expired += 1;
            }
            _ => live.push((q, t)),
        }
    }
    if live.is_empty() {
        return None;
    }
    let proto = &live[0].0;
    let key = PlanKey::new(&proto.sources, proto.h);
    let (plan, hit) = if cfg.enable_plan_cache {
        cache.get_or_build(key, || SourcePlan::build(proto.sources.points()))
    } else {
        (Arc::new(SourcePlan::build(proto.sources.points())), false)
    };
    let weights: Vec<Vec<f32>> = live.iter().map(|(q, _)| q.weights.clone()).collect();
    let geo = resolve_geometry(cfg, cache, &plan, proto, weights.len(), stats);
    // Plan-time static admission: prove the exact kernel this batch
    // would launch clean before spending any GPU attempt. Verdicts
    // are memoized by padded launch geometry next to the plan cache,
    // so repeat shapes run no analysis.
    let admitted = if cfg.static_lint && uses_gpu(cfg, pool) {
        let (m, k) = plan.dims();
        let key = AdmissionKey::for_batch(m, proto.targets.len(), k, weights.len(), &geo);
        let (verdict, _) = cache.admission(key, || admission::check_shape(&cfg.device, key));
        if !verdict.admitted {
            cache.note_admission_reject();
        }
        verdict.admitted
    } else {
        true
    };
    Some(PreparedChunk {
        live,
        plan,
        hit,
        weights,
        geo,
        admitted,
    })
}

/// The back half of chunk execution: the solve, energy accounting and
/// fulfilment. `tainted` marks a resilient re-run of a segment whose
/// packed launch detected corruption — the ladder then never drops to
/// its unverified rung.
fn run_prepared(
    cfg: &ServeConfig,
    prep: PreparedChunk,
    pool: &mut Option<DevicePool>,
    breaker: &mut Breaker,
    injected: &mut u64,
    stats: &mut WorkerStats,
    tainted: bool,
) {
    let PreparedChunk {
        live,
        plan,
        hit,
        weights,
        geo,
        admitted,
    } = prep;
    let profiles_before = stats.profiles.len();
    // The latest instant any backoff sleep may run to: the max member
    // deadline — but only when *every* member has one (a deadline-free
    // member can wait out any backoff, so the ladder keeps its full
    // retry budget).
    let deadline_max = live
        .iter()
        .map(|(q, _)| q.deadline)
        .collect::<Option<Vec<_>>>()
        .and_then(|ds| ds.into_iter().max());
    let outcome = if admitted {
        let proto = &live[0].0;
        run_batch(
            cfg,
            &plan,
            proto,
            &weights,
            hit,
            &geo,
            pool,
            breaker,
            injected,
            stats,
            tainted,
            deadline_max,
        )
    } else {
        // Denied the GPU: the bit-exact CPU path serves the batch.
        // One attempt, no retry, not a degradation (the rung was
        // chosen at plan time, not reached by failing down to it).
        stats.attempts += 1;
        let proto = &live[0].0;
        Ok((
            executor::execute_cpu(&plan, &proto.targets, proto.h, &weights, &cfg.cpu),
            false,
        ))
    };
    charge_energy(stats, profiles_before);
    finish_chunk(cfg, &live, outcome, stats);
}

/// Energy accounting: every profile added since `profiles_before`
/// (all rungs, all shards) through the energy model over exact
/// counters.
fn charge_energy(stats: &mut WorkerStats, profiles_before: usize) {
    let params = EnergyParams::default();
    for p in &stats.profiles[profiles_before..] {
        stats.energy_j += pipeline_energy(&params, p).total_j();
    }
}

/// Appends a completed GPU profile, counting its kernel launches.
fn note_profile(stats: &mut WorkerStats, prof: PipelineProfile) {
    stats.launches += prof.kernels.len() as u64;
    stats.profiles.push(prof);
}

/// Batch bookkeeping and fulfilment: the artificial consumer delay,
/// the batch counters, the per-query deadline re-check.
fn finish_chunk(
    cfg: &ServeConfig,
    live: &[(Query, Ticket)],
    outcome: Result<(Vec<Vec<f32>>, bool), ServeError>,
    stats: &mut WorkerStats,
) {
    if let Some(delay) = cfg.batch_delay {
        std::thread::sleep(delay);
    }
    stats.batches += 1;
    stats.batched_queries += live.len() as u64;
    match outcome {
        Ok((results, degraded)) => {
            // Deadline re-check at fulfilment: plan resolution, the
            // solve and any retries take time — a query that expired
            // while its own batch executed must not complete as
            // on-time.
            let now = Instant::now();
            for ((q, t), v) in live.iter().zip(results) {
                match q.deadline {
                    Some(d) if d < now => {
                        t.fulfil(Err(ServeError::DeadlineExpired));
                        stats.expired += 1;
                        stats.expired_in_batch += 1;
                    }
                    _ => {
                        t.fulfil(Ok(v));
                        stats.completed += 1;
                        if degraded {
                            stats.degraded_completions += 1;
                        }
                    }
                }
            }
        }
        Err(e) => {
            for (_, t) in live {
                t.fulfil(Err(e.clone()));
                stats.failed += 1;
            }
        }
    }
}

/// Seed salt decorrelating an unpooled packed launch's fault schedule
/// from the per-batch schedules of the unpacked attempts.
const PACKED_SEED_SALT: u64 = 0x70ac_4ed0 << 24;

/// Executes one packed group (≥ 2 prepared chunks sharing a resolved
/// geometry) as a single horizontally-fused launch — or, pooled, as
/// one fused launch per owning device. Each segment counts one
/// attempt; a failed or corrupted packed launch re-runs only the
/// affected segments through the normal unpacked path (each such
/// re-run is that segment's retry, so `attempts == batches + retries`
/// holds unchanged).
fn run_packed_group(
    cfg: &ServeConfig,
    preps: Vec<PreparedChunk>,
    pool: &mut Option<DevicePool>,
    breaker: &mut Breaker,
    injected: &mut u64,
    stats: &mut WorkerStats,
) {
    debug_assert!(preps.len() >= 2, "planner never packs singletons");
    let geo = preps[0].geo;
    let segs: Vec<packed::PackedSegment> = preps
        .iter()
        .map(|p| packed::PackedSegment {
            plan: Arc::clone(&p.plan),
            targets: Arc::clone(&p.live[0].0.targets),
            h: p.live[0].0.h,
            weights: p.weights.clone(),
            warm: p.hit,
        })
        .collect();

    // Pooled: the pool shards the wave by segment across its devices
    // (one fused sub-launch per owning device) and never fails — sick
    // sub-launches degrade their own segments to the CPU inside the
    // pool, so each segment is exactly one attempt.
    if let Some(pool) = pool.as_mut() {
        stats.attempts += preps.len() as u64;
        let profiles_before = stats.profiles.len();
        let out = pool.run_packed(&segs, stats.batches);
        stats.packed_launches += out.packed_launches;
        stats.packed_segments += out.packed_segments;
        stats.corruption_detected += out.corruption_detected;
        stats.injected_faults += out.injected_faults;
        stats.undetected_injected += out.undetected;
        for prof in out.profiles {
            note_profile(stats, prof);
        }
        charge_energy(stats, profiles_before);
        for (prep, (results, degraded)) in preps
            .into_iter()
            .zip(out.results.into_iter().zip(out.fallback_segments))
        {
            if degraded {
                stats.fallbacks += 1;
            }
            finish_chunk(cfg, &prep.live, Ok((results, degraded)), stats);
        }
        return;
    }

    let batch_idx = stats.batches;
    let resilient = matches!(cfg.backend, ServeBackend::GpuResilient);
    let verify = resilient && cfg.resilience.verify;
    if resilient && !breaker.allow(batch_idx) {
        // Breaker open: no packed attempt is spent; every segment
        // takes the normal ladder (straight to the safe harbor).
        for prep in preps {
            run_prepared(cfg, prep, pool, breaker, injected, stats, false);
        }
        return;
    }
    stats.attempts += preps.len() as u64;
    let launch = if consume_injection(cfg, injected) {
        Err(LaunchError::EmptyLaunch)
    } else {
        let mut dev_cfg = cfg.device.clone();
        if let Some(f) = &mut dev_cfg.fault {
            f.seed ^= splitmix64(batch_idx ^ PACKED_SEED_SALT);
        }
        let mut dev = GpuDevice::new(dev_cfg);
        packed::execute_gpu_packed(&mut dev, &segs, &geo, verify)
    };
    match launch {
        Ok(out) => {
            let inj = injected_data_faults(&out.profile);
            stats.injected_faults += inj;
            stats.packed_launches += 1;
            stats.packed_segments += segs.len() as u64;
            let profiles_before = stats.profiles.len();
            note_profile(stats, out.profile);
            charge_energy(stats, profiles_before);
            let corrupt: Vec<bool> = match &out.verify {
                Some(reports) => reports
                    .iter()
                    .map(VerifyReport::corruption_detected)
                    .collect(),
                None => vec![false; preps.len()],
            };
            let any_corrupt = corrupt.iter().any(|&c| c);
            if resilient {
                if any_corrupt {
                    breaker.record_failure(batch_idx);
                } else {
                    breaker.record_success();
                }
            }
            if inj > 0 && !any_corrupt {
                stats.undetected_injected += 1;
            }
            for (prep, (results, corrupt)) in
                preps.into_iter().zip(out.results.into_iter().zip(corrupt))
            {
                if corrupt {
                    // Only this segment's result is discarded; its
                    // re-run is its retry, and the ladder it re-enters
                    // is tainted (never drops verification).
                    stats.corruption_detected += 1;
                    stats.retries += 1;
                    run_prepared(cfg, prep, pool, breaker, injected, stats, true);
                } else {
                    finish_chunk(cfg, &prep.live, Ok((results, false)), stats);
                }
            }
        }
        Err(_) => {
            // The whole packed attempt failed to launch: every segment
            // re-runs unpacked, each charged one retry.
            if resilient {
                breaker.record_failure(batch_idx);
            }
            for prep in preps {
                stats.retries += 1;
                run_prepared(cfg, prep, pool, breaker, injected, stats, false);
            }
        }
    }
}

/// True when the configured injection consumes this GPU attempt
/// (which then fails with [`LaunchError::EmptyLaunch`]).
///
/// # Panics
/// [`FaultInjection::PanicFirst`] panics the worker on its first call
/// — deliberately, to exercise the poison-recovery path.
fn consume_injection(cfg: &ServeConfig, injected: &mut u64) -> bool {
    match cfg.fault_injection {
        FaultInjection::None => false,
        FaultInjection::FirstN(n) => {
            if *injected < n {
                *injected += 1;
                true
            } else {
                false
            }
        }
        FaultInjection::PanicFirst => {
            if *injected == 0 {
                *injected = 1;
                panic!("injected worker panic (FaultInjection::PanicFirst)");
            }
            false
        }
    }
}

/// Resolves the tile geometry for one batch: the memoized winning
/// pick for its raw shape (or the config default), downshifted to the
/// pick's bit-compatible low-power variant once the energy budget is
/// exhausted. A geometry whose `tile_k` is narrower than the batch
/// width cannot launch the batch and falls back to the config
/// default, then to the paper default (whose `tile_k` equals the
/// maximum batch width).
fn resolve_geometry(
    cfg: &ServeConfig,
    cache: &mut PlanCache,
    plan: &SourcePlan,
    proto: &Query,
    r: usize,
    stats: &mut WorkerStats,
) -> TileGeometry {
    let (m, k) = plan.dims();
    let n = proto.targets.len();
    let (base, low_power) = cache.geometry_for((m, n, k), || {
        cfg.geometry_picks
            .iter()
            .find(|p| (p.m, p.n, p.k) == (m, n, k))
            .map_or((cfg.geometry, cfg.low_power), |p| (p.geometry, p.low_power))
    });
    let fits = |g: &TileGeometry| r <= g.tile_k;
    let mut geo = if fits(&base) {
        base
    } else if fits(&cfg.geometry) {
        cfg.geometry
    } else {
        TileGeometry::paper_default()
    };
    if let (Some(budget), Some(low)) = (cfg.energy_budget_j, low_power) {
        let over_budget = stats.completed > 0 && stats.energy_j / stats.completed as f64 > budget;
        if over_budget && fits(&low) && low != geo {
            debug_assert!(low.bit_compatible(&geo));
            stats.energy_downshifts += 1;
            geo = low;
        }
    }
    geo
}

/// Runs one batch; `Ok((results, degraded))` flags completions below
/// the configured top rung.
#[allow(clippy::too_many_arguments)]
fn run_batch(
    cfg: &ServeConfig,
    plan: &SourcePlan,
    proto: &Query,
    weights: &[Vec<f32>],
    hit: bool,
    geo: &TileGeometry,
    pool: &mut Option<DevicePool>,
    breaker: &mut Breaker,
    injected: &mut u64,
    stats: &mut WorkerStats,
    tainted: bool,
    deadline_max: Option<Instant>,
) -> Result<(Vec<Vec<f32>>, bool), ServeError> {
    // Pooled serving: shard the batch across the devices. The pool
    // ladder never fails a batch (sick shards recover on the CPU), so
    // a pooled batch is always exactly one attempt; per-device
    // warmth/fallback/breaker accounting lives in the pool report.
    if let Some(pool) = pool {
        let _ = (hit, breaker, injected);
        stats.attempts += 1;
        let out = pool.run_batch(plan, proto, weights, stats.batches);
        stats.corruption_detected += out.corruption_detected;
        stats.injected_faults += out.injected_faults;
        stats.undetected_injected += out.undetected_shards;
        for prof in out.profiles {
            note_profile(stats, prof);
        }
        let degraded = out.fallback_shards > 0;
        if degraded {
            stats.fallbacks += 1;
        }
        return Ok((out.results, degraded));
    }
    match cfg.backend {
        ServeBackend::CpuFused => {
            stats.attempts += 1;
            Ok((
                executor::execute_cpu(plan, &proto.targets, proto.h, weights, &cfg.cpu),
                false,
            ))
        }
        ServeBackend::GpuFused { cpu_fallback } => {
            stats.attempts += 1;
            let launch = if consume_injection(cfg, injected) {
                Err(LaunchError::EmptyLaunch)
            } else {
                let mut dev = GpuDevice::new(cfg.device.clone());
                executor::execute_gpu(&mut dev, plan, &proto.targets, proto.h, weights, hit, geo)
            };
            match launch {
                Ok((results, prof)) => {
                    stats.injected_faults += injected_data_faults(&prof);
                    note_profile(stats, prof);
                    Ok((results, false))
                }
                Err(e) if cpu_fallback => {
                    stats.attempts += 1;
                    stats.retries += 1;
                    stats.fallbacks += 1;
                    let _ = e;
                    Ok((
                        executor::execute_cpu(plan, &proto.targets, proto.h, weights, &cfg.cpu),
                        false,
                    ))
                }
                Err(e) => Err(ServeError::Launch(e)),
            }
        }
        ServeBackend::GpuResilient => run_batch_resilient(
            cfg,
            plan,
            proto,
            weights,
            hit,
            geo,
            breaker,
            injected,
            stats,
            tainted,
            deadline_max,
        ),
    }
}

/// Would sleeping `delay` run past the batch's latest live deadline?
/// `None` (some member is deadline-free) never overruns.
fn backoff_overruns(deadline_max: Option<Instant>, delay: Duration) -> bool {
    deadline_max.is_some_and(|d| Instant::now() + delay > d)
}

/// Injected data-fault events recorded in a completed GPU profile
/// (launch faults never produce a profile).
pub(crate) fn injected_data_faults(prof: &PipelineProfile) -> u64 {
    prof.kernels
        .iter()
        .map(|k| k.faults.smem_flips + k.faults.reg_flips + k.faults.dram_flips)
        .sum()
}

/// One GPU attempt of the resilient ladder, on a fresh device whose
/// fault seed (if any) is decorrelated per `(batch, attempt)` — a
/// fresh device restarts the launch-epoch counter, so without the
/// reseed every attempt would redraw the identical fault schedule and
/// a retry could never clear a deterministic fault.
#[allow(clippy::too_many_arguments, clippy::type_complexity)]
fn resilient_attempt(
    cfg: &ServeConfig,
    plan: &SourcePlan,
    proto: &Query,
    weights: &[Vec<f32>],
    hit: bool,
    geo: &TileGeometry,
    verify: bool,
    batch: u64,
    attempt: u32,
    injected: &mut u64,
) -> Result<(Vec<Vec<f32>>, PipelineProfile, Option<VerifyReport>), LaunchError> {
    if consume_injection(cfg, injected) {
        return Err(LaunchError::EmptyLaunch);
    }
    let mut dev_cfg = cfg.device.clone();
    if let Some(f) = &mut dev_cfg.fault {
        f.seed ^= splitmix64(batch ^ (u64::from(attempt) << 48));
    }
    let mut dev = GpuDevice::new(dev_cfg);
    if verify {
        let (r, p, v) = executor::execute_gpu_verified(
            &mut dev,
            plan,
            &proto.targets,
            proto.h,
            weights,
            hit,
            geo,
        )?;
        Ok((r, p, Some(v)))
    } else {
        let (r, p) =
            executor::execute_gpu(&mut dev, plan, &proto.targets, proto.h, weights, hit, geo)?;
        Ok((r, p, None))
    }
}

/// The degradation ladder: verified GPU (bounded retries with
/// deterministic backoff) → unverified GPU (one attempt, and only
/// when no corruption was detected — ABFT-flagged data upsets must
/// not be retried without verification) → the bit-deterministic CPU
/// fused safe harbor, which cannot fail. Every rung transition and
/// retry is counted; the breaker gates each GPU attempt. Backoff is
/// charged against the batch's deadlines: a sleep that would overrun
/// every member deadline is skipped and the ladder short-circuits to
/// the safe harbor instead of sleeping the batch past its deadlines.
#[allow(clippy::too_many_arguments)]
fn run_batch_resilient(
    cfg: &ServeConfig,
    plan: &SourcePlan,
    proto: &Query,
    weights: &[Vec<f32>],
    hit: bool,
    geo: &TileGeometry,
    breaker: &mut Breaker,
    injected: &mut u64,
    stats: &mut WorkerStats,
    tainted: bool,
    deadline_max: Option<Instant>,
) -> Result<(Vec<Vec<f32>>, bool), ServeError> {
    let rc = &cfg.resilience;
    let batch_idx = stats.batches;
    let mut attempt_no: u32 = 0;
    // A tainted batch (its packed launch flagged corruption) enters
    // the ladder as if corruption was already seen: the unverified
    // middle rung stays off the table.
    let mut corruption_seen = tainted;
    let note_attempt = |stats: &mut WorkerStats, attempt_no: &mut u32| {
        stats.attempts += 1;
        if *attempt_no > 0 {
            stats.retries += 1;
        }
        *attempt_no += 1;
    };

    // Top rung: up to `gpu_attempts` tries, verified when configured.
    let mut shortcircuit = false;
    for _ in 0..rc.gpu_attempts.max(1) {
        if !breaker.allow(batch_idx) {
            break;
        }
        if attempt_no > 0 {
            let delay = backoff_delay(rc, batch_idx, attempt_no);
            if backoff_overruns(deadline_max, delay) {
                stats.backoff_shortcircuits += 1;
                shortcircuit = true;
                break;
            }
            std::thread::sleep(delay);
        }
        note_attempt(stats, &mut attempt_no);
        match resilient_attempt(
            cfg, plan, proto, weights, hit, geo, rc.verify, batch_idx, attempt_no, injected,
        ) {
            Ok((results, prof, verify)) => {
                let inj = injected_data_faults(&prof);
                stats.injected_faults += inj;
                let corrupt = verify
                    .as_ref()
                    .is_some_and(VerifyReport::corruption_detected);
                note_profile(stats, prof);
                if corrupt {
                    stats.corruption_detected += 1;
                    corruption_seen = true;
                    breaker.record_failure(batch_idx);
                    continue;
                }
                if inj > 0 {
                    stats.undetected_injected += 1;
                }
                breaker.record_success();
                return Ok((results, false));
            }
            Err(_) => breaker.record_failure(batch_idx),
        }
    }

    // Middle rung: one unverified attempt — only when verification
    // was the top rung and no corruption was detected there (after a
    // flagged data upset, dropping the checksums would invite exactly
    // the silent wrong answer the ladder exists to prevent). Its
    // backoff is deadline-charged too: an overrunning delay skips the
    // rung entirely.
    if !shortcircuit && rc.verify && !corruption_seen && breaker.allow(batch_idx) {
        let delay = backoff_delay(rc, batch_idx, attempt_no);
        if backoff_overruns(deadline_max, delay) {
            stats.backoff_shortcircuits += 1;
        } else {
            std::thread::sleep(delay);
            note_attempt(stats, &mut attempt_no);
            match resilient_attempt(
                cfg, plan, proto, weights, hit, geo, false, batch_idx, attempt_no, injected,
            ) {
                Ok((results, prof, _)) => {
                    let inj = injected_data_faults(&prof);
                    stats.injected_faults += inj;
                    if inj > 0 {
                        stats.undetected_injected += 1;
                    }
                    note_profile(stats, prof);
                    breaker.record_success();
                    return Ok((results, true));
                }
                Err(_) => breaker.record_failure(batch_idx),
            }
        }
    }

    // Safe harbor: the CPU fused path is bit-deterministic and cannot
    // fault — the ladder always terminates with a correct result.
    note_attempt(stats, &mut attempt_no);
    stats.fallbacks += 1;
    Ok((
        executor::execute_cpu(plan, &proto.targets, proto.h, weights, &cfg.cpu),
        true,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ks_core::problem::PointSet;

    fn query(sources: &SourceSet, targets: &Arc<PointSet>, seed: u64) -> Query {
        let w = PointSet::uniform_cube(targets.len(), 1, seed)
            .coords()
            .iter()
            .map(|v| v - 0.5)
            .collect();
        Query {
            sources: sources.clone(),
            targets: Arc::clone(targets),
            weights: w,
            h: 0.9,
            deadline: None,
        }
    }

    fn cpu_config() -> ServeConfig {
        ServeConfig {
            backend: ServeBackend::CpuFused,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn serves_a_simple_query() {
        let sources = SourceSet::new(PointSet::uniform_cube(24, 4, 1));
        let targets = Arc::new(PointSet::uniform_cube(16, 4, 2));
        let mut srv = Server::start(cpu_config());
        let Submit::Accepted(t) = srv.submit(query(&sources, &targets, 3)) else {
            panic!("empty queue must accept");
        };
        let v = t.wait().expect("completes");
        assert_eq!(v.len(), 24);
        let report = srv.shutdown();
        assert_eq!(report.submitted, 1);
        assert_eq!(report.completed, 1);
        assert_eq!(report.batches, 1);
    }

    #[test]
    fn paused_server_coalesces_shared_corpus_queries() {
        let sources = SourceSet::new(PointSet::uniform_cube(32, 4, 5));
        let targets = Arc::new(PointSet::uniform_cube(16, 4, 6));
        let mut cfg = cpu_config();
        cfg.start_paused = true;
        cfg.wave = 8;
        let mut srv = Server::start(cfg);
        let tickets: Vec<Ticket> = (0..4)
            .map(|i| match srv.submit(query(&sources, &targets, 10 + i)) {
                Submit::Accepted(t) => t,
                Submit::Rejected(_) => panic!("capacity 64 cannot reject 4"),
            })
            .collect();
        srv.resume();
        for t in &tickets {
            assert!(t.wait().is_ok());
        }
        let report = srv.shutdown();
        assert_eq!(report.completed, 4);
        assert_eq!(report.batches, 1, "one coalesced solve");
        assert_eq!(report.batched_queries, 4);
        assert_eq!(report.plan_cache.misses, 1);
    }

    #[test]
    fn expired_deadline_is_reported() {
        let sources = SourceSet::new(PointSet::uniform_cube(16, 3, 7));
        let targets = Arc::new(PointSet::uniform_cube(8, 3, 8));
        let mut cfg = cpu_config();
        cfg.start_paused = true;
        let mut srv = Server::start(cfg);
        let mut q = query(&sources, &targets, 9);
        q.deadline = Some(Instant::now() - Duration::from_millis(1));
        let Submit::Accepted(t) = srv.submit(q) else {
            panic!("must accept");
        };
        srv.resume();
        assert_eq!(t.wait(), Err(ServeError::DeadlineExpired));
        let report = srv.shutdown();
        assert_eq!(report.expired, 1);
        assert_eq!(report.completed, 0);
    }

    #[test]
    fn backpressure_rejects_and_returns_the_query() {
        let sources = SourceSet::new(PointSet::uniform_cube(16, 3, 11));
        let targets = Arc::new(PointSet::uniform_cube(8, 3, 12));
        let mut cfg = cpu_config();
        cfg.queue_capacity = 2;
        cfg.start_paused = true;
        let mut srv = Server::start(cfg);
        let _t1 = srv.submit(query(&sources, &targets, 13));
        let _t2 = srv.submit(query(&sources, &targets, 14));
        match srv.submit(query(&sources, &targets, 15)) {
            Submit::Rejected(q) => assert_eq!(q.weights.len(), 8),
            Submit::Accepted(_) => panic!("full queue must reject"),
        }
        srv.resume();
        let report = srv.shutdown();
        assert_eq!(report.submitted, 3);
        assert_eq!(report.accepted, 2);
        assert_eq!(report.rejected, 1);
        assert!(report.queue_high_water <= 2);
    }

    #[test]
    fn fault_injection_falls_back_to_cpu() {
        let sources = SourceSet::new(PointSet::uniform_cube(128, 8, 21));
        let targets = Arc::new(PointSet::uniform_cube(128, 8, 22));
        let mut cfg = ServeConfig {
            backend: ServeBackend::GpuFused { cpu_fallback: true },
            fault_injection: FaultInjection::FirstN(1),
            ..ServeConfig::default()
        };
        cfg.start_paused = true;
        let mut srv = Server::start(cfg);
        let Submit::Accepted(t) = srv.submit(query(&sources, &targets, 23)) else {
            panic!("must accept");
        };
        srv.resume();
        assert!(t.wait().is_ok(), "fallback recovers the query");
        let report = srv.shutdown();
        assert_eq!(report.fallbacks, 1);
        assert_eq!(report.completed, 1);
        assert!(report.profiles.is_empty(), "failed launch has no profile");
    }

    #[test]
    fn fault_without_fallback_fails_the_query() {
        let sources = SourceSet::new(PointSet::uniform_cube(128, 8, 31));
        let targets = Arc::new(PointSet::uniform_cube(128, 8, 32));
        let cfg = ServeConfig {
            backend: ServeBackend::GpuFused {
                cpu_fallback: false,
            },
            fault_injection: FaultInjection::FirstN(1),
            start_paused: true,
            ..ServeConfig::default()
        };
        let mut srv = Server::start(cfg);
        let Submit::Accepted(t) = srv.submit(query(&sources, &targets, 33)) else {
            panic!("must accept");
        };
        srv.resume();
        assert_eq!(t.wait(), Err(ServeError::Launch(LaunchError::EmptyLaunch)));
        let report = srv.shutdown();
        assert_eq!(report.failed, 1);
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_monotonic() {
        let rc = ResilienceConfig::default();
        for batch in [0u64, 1, 17, u64::MAX] {
            for attempt in 0..12u32 {
                assert_eq!(
                    backoff_delay(&rc, batch, attempt),
                    backoff_delay(&rc, batch, attempt),
                    "pure in (seed, batch, attempt)"
                );
            }
            for attempt in 0..10u32 {
                assert!(
                    backoff_delay(&rc, batch, attempt + 1) > backoff_delay(&rc, batch, attempt),
                    "strictly increasing below the clamp (batch {batch}, attempt {attempt})"
                );
            }
        }
        let other = ResilienceConfig {
            backoff_seed: 0xDEAD,
            ..ResilienceConfig::default()
        };
        assert_ne!(
            backoff_delay(&rc, 3, 2),
            backoff_delay(&other, 3, 2),
            "seed moves the jitter"
        );
    }

    #[test]
    fn equal_but_separately_allocated_targets_coalesce() {
        // Regression: keying targets on the Arc pointer split these
        // into two launches (and could alias a recycled allocation).
        let sources = SourceSet::new(PointSet::uniform_cube(32, 4, 41));
        let t1 = Arc::new(PointSet::uniform_cube(16, 4, 42));
        let t2 = Arc::new(PointSet::uniform_cube(16, 4, 42));
        assert!(!Arc::ptr_eq(&t1, &t2), "distinct allocations");
        let mut cfg = cpu_config();
        cfg.start_paused = true;
        let mut srv = Server::start(cfg);
        let Submit::Accepted(a) = srv.submit(query(&sources, &t1, 43)) else {
            panic!("must accept");
        };
        let Submit::Accepted(b) = srv.submit(query(&sources, &t2, 44)) else {
            panic!("must accept");
        };
        srv.resume();
        assert!(a.wait().is_ok());
        assert!(b.wait().is_ok());
        let report = srv.shutdown();
        assert_eq!(report.batches, 1, "equal targets coalesce into one launch");
        assert_eq!(report.batched_queries, 2);
    }

    #[test]
    fn different_targets_with_colliding_shape_do_not_coalesce() {
        let sources = SourceSet::new(PointSet::uniform_cube(32, 4, 51));
        let t1 = Arc::new(PointSet::uniform_cube(16, 4, 52));
        let t2 = Arc::new(PointSet::uniform_cube(16, 4, 53));
        let mut cfg = cpu_config();
        cfg.start_paused = true;
        let mut srv = Server::start(cfg);
        let (Submit::Accepted(a), Submit::Accepted(b)) = (
            srv.submit(query(&sources, &t1, 54)),
            srv.submit(query(&sources, &t2, 55)),
        ) else {
            panic!("must accept");
        };
        srv.resume();
        assert!(a.wait().is_ok() && b.wait().is_ok());
        let report = srv.shutdown();
        assert_eq!(report.batches, 2, "different coordinates stay separate");
    }

    #[test]
    fn breaker_failure_count_saturates_instead_of_overflowing() {
        let rc = ResilienceConfig {
            breaker_threshold: u32::MAX,
            breaker_cooldown: 1,
            ..ResilienceConfig::default()
        };
        let mut b = Breaker::new(&rc);
        b.consecutive_failures = u32::MAX - 1;
        b.record_failure(0);
        assert_eq!(b.consecutive_failures, u32::MAX);
        assert_eq!(b.trips, 1, "at threshold: trips");
        // The next failure must not wrap to 0 (which would silently
        // restart the count and, in debug builds, panic first).
        b.record_failure(1);
        assert_eq!(b.consecutive_failures, u32::MAX, "saturates at the top");
    }

    #[test]
    fn breaker_trips_cools_down_probes_and_resets() {
        let rc = ResilienceConfig {
            breaker_threshold: 2,
            breaker_cooldown: 3,
            ..ResilienceConfig::default()
        };
        let mut b = Breaker::new(&rc);
        assert!(b.allow(0));
        b.record_failure(0);
        assert!(b.allow(0), "below threshold stays closed");
        b.record_failure(0);
        assert_eq!(b.trips, 1, "threshold consecutive failures trip it");
        assert!(!b.allow(1), "open rejects during cooldown");
        assert!(!b.allow(2));
        assert!(b.allow(3), "cooldown elapsed: half-open probe admitted");
        b.record_failure(3);
        assert_eq!(b.trips, 2, "failed probe re-opens (a fresh trip)");
        assert!(!b.allow(4));
        assert!(b.allow(6), "second probe after renewed cooldown");
        b.record_success();
        assert_eq!(b.resets, 1, "successful probe closes the breaker");
        assert!(b.allow(7));
    }

    #[test]
    fn half_open_probe_failure_reopens_with_a_fresh_window() {
        let rc = ResilienceConfig {
            breaker_threshold: 2,
            breaker_cooldown: 3,
            ..ResilienceConfig::default()
        };
        let mut b = Breaker::new(&rc);
        b.record_failure(0);
        b.record_failure(0); // trips open, since_batch = 0
        assert!(!b.allow(2));
        assert!(b.allow(3), "cooldown over: half-open");
        // The probe fails much later than the trip: the cooldown
        // window restarts from the probe's batch, not the trip's.
        b.record_failure(10);
        assert!(!b.allow(11));
        assert!(!b.allow(12));
        assert!(b.allow(13), "cooldown counts from the failed probe");
        b.record_success();
        assert_eq!(b.resets, 1, "half-open probe success closes");
        assert_eq!(b.consecutive_failures, 0, "…and clears the streak");
        assert!(b.allow(14));
        b.record_failure(14);
        assert!(b.allow(14), "closed again: below threshold stays closed");
        assert_eq!(b.trips, 2, "one trip, one probe-failure re-open");
    }

    #[test]
    fn brownout_sheds_only_doomed_queries_in_later_chunks() {
        let sources = SourceSet::new(PointSet::uniform_cube(16, 3, 61));
        let targets = Arc::new(PointSet::uniform_cube(8, 3, 62));
        let mut stats = WorkerStats::default();
        let now = Instant::now();
        let with_deadline = |seed: u64, d: Option<Instant>| {
            let mut q = query(&sources, &targets, seed);
            q.deadline = d;
            (q, Ticket::new())
        };
        let mut chunks = vec![
            // Chunk 0 starts immediately: never shed, however tight.
            vec![with_deadline(1, Some(now + Duration::from_millis(1)))],
            vec![
                // Doomed: alive now, dead before chunk 1's projected
                // start one avg (1 s) away.
                with_deadline(2, Some(now + Duration::from_millis(200))),
                // Comfortable deadline: kept.
                with_deadline(3, Some(now + Duration::from_secs(30))),
                // Deadline-free: kept.
                with_deadline(4, None),
            ],
        ];
        brownout_shed(&mut chunks, 1.0, &mut stats);
        assert_eq!(stats.shed, 1, "exactly the doomed query sheds");
        assert_eq!(chunks[0].len(), 1, "chunk 0 untouched");
        assert_eq!(chunks[1].len(), 2);
        assert_eq!(
            chunks[1][0].0.deadline,
            Some(now + Duration::from_secs(30)),
            "survivors keep their order"
        );

        // Shed tickets are fulfilled with the explicit error.
        let mut shed_chunks = vec![
            vec![with_deadline(5, None)],
            vec![with_deadline(6, Some(now + Duration::from_millis(100)))],
        ];
        let shed_ticket = shed_chunks[1][0].1.clone();
        brownout_shed(&mut shed_chunks, 1.0, &mut stats);
        assert_eq!(shed_ticket.try_take(), Some(Err(ServeError::Shed)));

        // No measurement yet (avg == 0): nothing sheds.
        let mut cold = vec![
            vec![with_deadline(7, None)],
            vec![with_deadline(8, Some(now + Duration::from_nanos(1)))],
        ];
        let before = stats.shed;
        brownout_shed(&mut cold, 0.0, &mut stats);
        assert_eq!(stats.shed, before, "cold EWMA never sheds");
        assert_eq!(cold[1].len(), 1);
    }

    #[test]
    fn overrunning_backoff_short_circuits_to_the_safe_harbor() {
        let sources = SourceSet::new(PointSet::uniform_cube(128, 8, 71));
        let targets = Arc::new(PointSet::uniform_cube(128, 8, 72));
        let cfg = ServeConfig {
            backend: ServeBackend::GpuResilient,
            // Every GPU attempt fails, so the ladder wants to retry
            // with backoff…
            fault_injection: FaultInjection::FirstN(64),
            resilience: ResilienceConfig {
                // …but the very first backoff (base·2¹ ≥ 1 min) would
                // sleep far past the query's deadline.
                backoff_base: Duration::from_secs(30),
                ..ResilienceConfig::default()
            },
            start_paused: true,
            ..ServeConfig::default()
        };
        let mut srv = Server::start(cfg);
        let mut q = query(&sources, &targets, 73);
        q.deadline = Some(Instant::now() + Duration::from_secs(5));
        let Submit::Accepted(t) = srv.submit(q) else {
            panic!("must accept");
        };
        srv.resume();
        // The deadline-charged ladder skips the sleeps entirely, so
        // the CPU safe harbor answers well within the deadline.
        assert_eq!(t.wait().expect("safe harbor completes").len(), 128);
        let report = srv.shutdown();
        assert_eq!(report.completed, 1);
        assert_eq!(report.expired, 0, "no sleep ran the deadline out");
        assert!(
            report.backoff_shortcircuits >= 1,
            "the overrunning backoff was charged, not slept"
        );
        assert_eq!(report.fallbacks, 1, "landed on the CPU safe harbor");
        assert_eq!(report.degraded_completions, 1);
        assert_eq!(
            report.accepted,
            report.completed + report.expired + report.shed + report.failed
        );
    }

    #[test]
    fn resilient_clean_path_completes_verified_without_degradation() {
        let sources = SourceSet::new(PointSet::uniform_cube(128, 8, 51));
        let targets = Arc::new(PointSet::uniform_cube(128, 8, 52));
        let cfg = ServeConfig {
            backend: ServeBackend::GpuResilient,
            start_paused: true,
            ..ServeConfig::default()
        };
        let mut srv = Server::start(cfg);
        let Submit::Accepted(t) = srv.submit(query(&sources, &targets, 53)) else {
            panic!("must accept");
        };
        srv.resume();
        assert_eq!(t.wait().expect("completes").len(), 128);
        let report = srv.shutdown();
        assert_eq!(report.completed, 1);
        assert_eq!(report.attempts, report.batches, "first attempt succeeds");
        assert_eq!(report.retries, 0);
        assert_eq!(report.degraded_completions, 0, "top rung, not degraded");
        assert_eq!(report.corruption_detected, 0);
        assert_eq!(report.injected_faults, 0);
        assert_eq!(report.breaker_trips, 0);
        assert!(!report.profiles.is_empty(), "verified run is profiled");
    }

    #[test]
    fn resilient_exhaustion_lands_bit_exact_on_the_cpu_safe_harbor() {
        let sources = SourceSet::new(PointSet::uniform_cube(128, 8, 61));
        let targets = Arc::new(PointSet::uniform_cube(128, 8, 62));
        let cfg = ServeConfig {
            backend: ServeBackend::GpuResilient,
            fault_injection: FaultInjection::FirstN(u64::MAX),
            start_paused: true,
            ..ServeConfig::default()
        };
        let cpu = cfg.cpu;
        let rc = cfg.resilience.clone();
        let mut srv = Server::start(cfg);
        let q = query(&sources, &targets, 63);
        let weights = q.weights.clone();
        let Submit::Accepted(t) = srv.submit(q) else {
            panic!("must accept");
        };
        srv.resume();
        let got = t.wait().expect("safe harbor always completes");
        let plan = SourcePlan::build(sources.points());
        let want = executor::execute_cpu(&plan, &targets, 0.9, &[weights], &cpu);
        for (i, (g, w)) in got.iter().zip(want[0].iter()).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "row {i}: CPU rung is bit-exact");
        }
        let report = srv.shutdown();
        assert_eq!(report.completed, 1);
        assert_eq!(report.degraded_completions, 1);
        assert_eq!(report.fallbacks, 1);
        assert_eq!(report.attempts, report.batches + report.retries);
        // Every GPU attempt failed: the breaker tripped at its
        // threshold and the ladder stopped burning attempts.
        assert_eq!(report.breaker_trips, 1);
        assert!(report.retries <= u64::from(rc.gpu_attempts) + 1);
        assert!(report.profiles.is_empty(), "no GPU attempt completed");
    }

    #[test]
    fn resilient_ladder_detects_injected_corruption_and_stays_correct() {
        let sources = SourceSet::new(PointSet::uniform_cube(128, 8, 71));
        let targets = Arc::new(PointSet::uniform_cube(128, 8, 72));
        let mut cfg = ServeConfig {
            backend: ServeBackend::GpuResilient,
            start_paused: true,
            ..ServeConfig::default()
        };
        cfg.device.fault = Some(ks_gpu_sim::FaultSpec {
            seed: 9,
            smem_rate: 4.0,
            ..Default::default()
        });
        let cpu = cfg.cpu;
        let mut srv = Server::start(cfg);
        let q = query(&sources, &targets, 73);
        let weights = q.weights.clone();
        let Submit::Accepted(t) = srv.submit(q) else {
            panic!("must accept");
        };
        srv.resume();
        let got = t.wait().expect("ladder always completes");
        let plan = SourcePlan::build(sources.points());
        let want = executor::execute_cpu(&plan, &targets, 0.9, &[weights], &cpu);
        for (i, (g, w)) in got.iter().zip(want[0].iter()).enumerate() {
            assert!(
                (g - w).abs() <= 5e-3 * w.abs().max(1.0),
                "row {i}: served {g} vs reference {w} — never silently wrong"
            );
        }
        let report = srv.shutdown();
        assert_eq!(report.completed, 1);
        assert!(
            report.corruption_detected >= 1,
            "heavy SMEM flips must trip the ABFT checks: {report:?}"
        );
        assert!(report.injected_faults > 0);
        assert_eq!(report.attempts, report.batches + report.retries);
    }

    #[test]
    fn panicked_worker_drains_tickets_with_internal_error() {
        let sources = SourceSet::new(PointSet::uniform_cube(128, 8, 81));
        let targets = Arc::new(PointSet::uniform_cube(128, 8, 82));
        let cfg = ServeConfig {
            backend: ServeBackend::GpuFused { cpu_fallback: true },
            fault_injection: FaultInjection::PanicFirst,
            start_paused: true,
            ..ServeConfig::default()
        };
        let mut srv = Server::start(cfg);
        let Submit::Accepted(t) = srv.submit(query(&sources, &targets, 83)) else {
            panic!("must accept");
        };
        srv.resume();
        let report = srv.shutdown();
        assert_eq!(report.internal_errors, 1);
        assert_eq!(report.completed, 0, "worker counters are lost");
        assert_eq!(
            t.wait(),
            Err(ServeError::Internal("worker thread panicked")),
            "in-flight queries surface an explicit error, not a hang"
        );
    }

    #[test]
    fn query_expiring_mid_batch_is_counted_separately() {
        let sources = SourceSet::new(PointSet::uniform_cube(16, 3, 91));
        let targets = Arc::new(PointSet::uniform_cube(8, 3, 92));
        let mut cfg = cpu_config();
        cfg.start_paused = true;
        cfg.batch_delay = Some(Duration::from_millis(300));
        let mut srv = Server::start(cfg);
        let mut q = query(&sources, &targets, 93);
        // Alive at batch assembly, expired by the time the (slow)
        // batch fulfils.
        q.deadline = Some(Instant::now() + Duration::from_millis(100));
        let Submit::Accepted(t) = srv.submit(q) else {
            panic!("must accept");
        };
        srv.resume();
        assert_eq!(t.wait(), Err(ServeError::DeadlineExpired));
        let report = srv.shutdown();
        assert_eq!(report.expired, 1);
        assert_eq!(report.expired_in_batch, 1, "expired *inside* its batch");
        assert_eq!(report.completed, 0, "must not complete as on-time");
        assert_eq!(report.batches, 1, "the batch itself ran");
    }

    #[test]
    #[should_panic(expected = "weights length")]
    fn submit_rejects_malformed_query() {
        let sources = SourceSet::new(PointSet::uniform_cube(16, 3, 41));
        let targets = Arc::new(PointSet::uniform_cube(8, 3, 42));
        let mut q = query(&sources, &targets, 43);
        q.weights.pop();
        let mut srv = Server::start(cpu_config());
        let _ = srv.submit(q);
    }

    /// Warm shapes never re-run the static analysis: one check for
    /// the first batch, memo hits for every repeat of the geometry.
    #[test]
    fn static_admission_is_checked_once_per_shape() {
        let sources = SourceSet::new(PointSet::uniform_cube(100, 5, 101));
        let targets = Arc::new(PointSet::uniform_cube(70, 5, 102));
        let cfg = ServeConfig {
            backend: ServeBackend::GpuFused {
                cpu_fallback: false,
            },
            max_batch: 1, // one query per batch → repeat geometry
            start_paused: true,
            ..ServeConfig::default()
        };
        let mut srv = Server::start(cfg);
        let tickets: Vec<Ticket> = (0..3)
            .map(|i| match srv.submit(query(&sources, &targets, 110 + i)) {
                Submit::Accepted(t) => t,
                Submit::Rejected(_) => panic!("must accept"),
            })
            .collect();
        srv.resume();
        for t in &tickets {
            assert!(t.wait().is_ok());
        }
        let report = srv.shutdown();
        assert_eq!(report.batches, 3);
        let adm = report.static_admission;
        assert_eq!(adm.checks, 1, "one fresh verdict for the shape");
        assert_eq!(adm.hits, 2, "repeat batches hit the memo");
        assert_eq!(adm.rejects, 0);
        assert_eq!(report.profiles.len(), 3, "all batches ran on the GPU");
    }

    /// A device the static analyzer can prove the kernel unfit for
    /// never sees a launch: every batch serves on the bit-exact CPU
    /// path, without consuming the fallback/retry machinery.
    #[test]
    fn static_admission_reject_serves_on_cpu() {
        let sources = SourceSet::new(PointSet::uniform_cube(100, 5, 121));
        let targets = Arc::new(PointSet::uniform_cube(70, 5, 122));
        let mut starved = DeviceConfig::gtx970();
        starved.regs_per_sm /= 2;
        let cfg = ServeConfig {
            backend: ServeBackend::GpuFused {
                cpu_fallback: false,
            },
            device: starved,
            start_paused: true,
            ..ServeConfig::default()
        };
        let mut srv = Server::start(cfg);
        let q = query(&sources, &targets, 123);
        let Submit::Accepted(t) = srv.submit(q.clone()) else {
            panic!("must accept");
        };
        srv.resume();
        let got = t.wait().expect("served on the CPU path");
        let report = srv.shutdown();
        assert_eq!(report.static_admission.rejects, 1);
        assert!(report.profiles.is_empty(), "no GPU launch happened");
        assert_eq!(report.fallbacks, 0, "a reject is not a failure fallback");
        assert_eq!(report.completed, 1);
        // The answer is the bit-exact CPU result.
        let plan = SourcePlan::build(q.sources.points());
        let want = executor::execute_cpu(
            &plan,
            &q.targets,
            q.h,
            std::slice::from_ref(&q.weights),
            &FusedCpuConfig::default(),
        );
        for (a, b) in got.iter().zip(want[0].iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Turning the gate off restores unconditional GPU dispatch.
    #[test]
    fn static_lint_off_skips_admission() {
        let sources = SourceSet::new(PointSet::uniform_cube(100, 5, 131));
        let targets = Arc::new(PointSet::uniform_cube(70, 5, 132));
        let cfg = ServeConfig {
            backend: ServeBackend::GpuFused { cpu_fallback: true },
            static_lint: false,
            ..ServeConfig::default()
        };
        let mut srv = Server::start(cfg);
        let Submit::Accepted(t) = srv.submit(query(&sources, &targets, 133)) else {
            panic!("must accept");
        };
        assert!(t.wait().is_ok());
        let report = srv.shutdown();
        assert_eq!(report.static_admission, AdmissionStats::default());
        assert_eq!(report.profiles.len(), 1);
    }
}
