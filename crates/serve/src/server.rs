//! The batch server: bounded submission, coalescing worker, tickets.
//!
//! Producers [`Server::submit`] queries into a [`BoundedQueue`]; a
//! single worker thread drains them in *waves*, groups queries that
//! share `(source-set id, h, target set)` into one multi-weight fused
//! solve, resolves the `A`-side plan through the LRU [`PlanCache`],
//! and fulfils per-query [`Ticket`]s. Backpressure is explicit: a full
//! queue returns [`Submit::Rejected`] with the query handed back.
//!
//! Failure policy: queries whose deadline has passed at dequeue time
//! complete with [`ServeError::DeadlineExpired`]; a simulated-GPU
//! launch failure either falls back to the bit-deterministic CPU fused
//! path (`cpu_fallback`, the default) or surfaces as
//! [`ServeError::Launch`] per query.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ks_core::plan::{SourcePlan, SourceSet};
use ks_core::problem::PointSet;
use ks_core::FusedCpuConfig;
use ks_gpu_kernels::FUSED_MULTI_PIPELINE;
use ks_gpu_sim::config::DeviceConfig;
use ks_gpu_sim::device::GpuDevice;
use ks_gpu_sim::kernel::LaunchError;
use ks_gpu_sim::profiler::PipelineProfile;

use crate::cache::{PlanCache, PlanCacheStats, PlanKey};
use crate::executor::{self, MAX_GPU_BATCH};
use crate::queue::BoundedQueue;

/// One kernel-summation request: evaluate the Gaussian sum over
/// `sources` at bandwidth `h`, weighted by one weight per target.
#[derive(Debug, Clone)]
pub struct Query {
    /// The corpus (`A`); queries sharing a corpus handle coalesce.
    pub sources: SourceSet,
    /// The targets (`B`); shared via `Arc` so coalescing can test
    /// identity instead of comparing coordinates.
    pub targets: Arc<PointSet>,
    /// One weight per target (the query's column of `W`).
    pub weights: Vec<f32>,
    /// Gaussian bandwidth.
    pub h: f32,
    /// Drop the query (with [`ServeError::DeadlineExpired`]) if it is
    /// still queued past this instant.
    pub deadline: Option<Instant>,
}

/// Why a query completed without a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The query was still queued when its deadline passed.
    DeadlineExpired,
    /// The GPU launch failed and CPU fallback was disabled.
    Launch(LaunchError),
    /// The server shut down before the query was executed.
    ShutDown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::DeadlineExpired => write!(f, "deadline expired before execution"),
            ServeError::Launch(e) => write!(f, "GPU launch failed: {e}"),
            ServeError::ShutDown => write!(f, "server shut down before execution"),
        }
    }
}

impl std::error::Error for ServeError {}

struct TicketInner {
    result: Mutex<Option<Result<Vec<f32>, ServeError>>>,
    done: Condvar,
}

/// A handle to one submitted query's eventual result.
#[derive(Clone)]
pub struct Ticket {
    inner: Arc<TicketInner>,
}

impl Ticket {
    fn new() -> Self {
        Self {
            inner: Arc::new(TicketInner {
                result: Mutex::new(None),
                done: Condvar::new(),
            }),
        }
    }

    fn fulfil(&self, r: Result<Vec<f32>, ServeError>) {
        let mut g = self.inner.result.lock().expect("ticket poisoned");
        if g.is_none() {
            *g = Some(r);
        }
        drop(g);
        self.inner.done.notify_all();
    }

    /// Blocks until the query completes; returns the potential vector
    /// `V ∈ R^M` or the failure.
    ///
    /// # Errors
    /// The query's [`ServeError`] when it did not produce a result.
    pub fn wait(&self) -> Result<Vec<f32>, ServeError> {
        let mut g = self.inner.result.lock().expect("ticket poisoned");
        loop {
            if let Some(r) = g.take() {
                return r;
            }
            g = self.inner.done.wait(g).expect("ticket poisoned");
        }
    }

    /// Non-blocking check; consumes the result if present.
    pub fn try_take(&self) -> Option<Result<Vec<f32>, ServeError>> {
        self.inner.result.lock().expect("ticket poisoned").take()
    }
}

/// Outcome of [`Server::submit`].
pub enum Submit {
    /// Queued; await the ticket.
    Accepted(Ticket),
    /// Backpressure: the queue was full (or closing) and the query is
    /// handed back untouched.
    Rejected(Box<Query>),
}

/// Which execution path serves batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeBackend {
    /// Cache-blocked fused CPU solver (bit-deterministic).
    CpuFused,
    /// Simulated-GPU fused multi-weight pipeline.
    GpuFused {
        /// Retry a failed launch on the CPU fused path instead of
        /// failing the batch's queries.
        cpu_fallback: bool,
    },
}

/// Deterministic fault injection for testing the fallback path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultInjection {
    /// No injected faults.
    None,
    /// The first `n` GPU batch launches fail with
    /// [`LaunchError::EmptyLaunch`] before touching the device.
    FirstN(u64),
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Submission queue bound (backpressure threshold).
    pub queue_capacity: usize,
    /// Maximum queries drained per scheduling wave.
    pub wave: usize,
    /// Maximum queries coalesced into one solve (clamped to
    /// [`MAX_GPU_BATCH`] on the GPU backend).
    pub max_batch: usize,
    /// LRU plan-cache capacity (plans, not bytes).
    pub plan_cache_capacity: usize,
    /// Disable to rebuild the plan for every batch (ablation).
    pub enable_plan_cache: bool,
    /// Execution path.
    pub backend: ServeBackend,
    /// Device model for GPU batches (a fresh device per batch, so
    /// per-batch DRAM accounting is independent).
    pub device: DeviceConfig,
    /// CPU fused-solver blocking.
    pub cpu: FusedCpuConfig,
    /// Injected launch faults (tests only).
    pub fault_injection: FaultInjection,
    /// Artificial per-batch latency — a slow consumer for soak tests.
    pub batch_delay: Option<Duration>,
    /// Start with the worker gated; queries queue up until
    /// [`Server::resume`]. Gives tests deterministic batch
    /// composition.
    pub start_paused: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            wave: 16,
            max_batch: MAX_GPU_BATCH,
            plan_cache_capacity: 8,
            enable_plan_cache: true,
            backend: ServeBackend::GpuFused { cpu_fallback: true },
            device: DeviceConfig::gtx970(),
            cpu: FusedCpuConfig::default(),
            fault_injection: FaultInjection::None,
            batch_delay: None,
            start_paused: false,
        }
    }
}

/// End-of-run accounting. `submitted == accepted + rejected` and
/// `accepted == completed + expired + failed` always hold after
/// [`Server::shutdown`].
#[derive(Debug, Clone, Default)]
pub struct ServeReport {
    /// Queries offered to [`Server::submit`].
    pub submitted: u64,
    /// Queries that entered the queue.
    pub accepted: u64,
    /// Queries bounced by backpressure.
    pub rejected: u64,
    /// Queries that produced a result.
    pub completed: u64,
    /// Queries dropped for a passed deadline.
    pub expired: u64,
    /// Queries failed with a launch error (no fallback).
    pub failed: u64,
    /// Batches recovered on the CPU after a GPU launch failure.
    pub fallbacks: u64,
    /// Coalesced solves executed.
    pub batches: u64,
    /// Queries served through those solves.
    pub batched_queries: u64,
    /// Plan-cache counters.
    pub plan_cache: PlanCacheStats,
    /// Deepest queue occupancy observed (≤ configured capacity).
    pub queue_high_water: usize,
    /// One pipeline profile per GPU batch, in execution order.
    pub profiles: Vec<PipelineProfile>,
}

impl ServeReport {
    /// Total simulated DRAM transactions across all GPU batches.
    #[must_use]
    pub fn total_dram_transactions(&self) -> u64 {
        self.profiles
            .iter()
            .map(|p| p.total_mem().dram_transactions())
            .sum()
    }

    /// Plan-cache hit rate over batch lookups.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        self.plan_cache.hit_rate()
    }

    /// All per-batch profiles merged into one pipeline (for metrics
    /// export and energy modelling).
    #[must_use]
    pub fn merged_profile(&self) -> PipelineProfile {
        let mut merged = PipelineProfile::new(FUSED_MULTI_PIPELINE);
        for p in &self.profiles {
            merged.kernels.extend(p.kernels.iter().cloned());
        }
        merged
    }
}

/// Grouping key for coalescing: corpus identity, bit-exact bandwidth,
/// and target-set identity (the `Arc` pointer — shared targets are
/// shared allocations by construction).
#[derive(PartialEq, Eq, Hash, Clone, Copy)]
struct BatchKey {
    source: u64,
    h_bits: u32,
    targets: usize,
}

impl BatchKey {
    fn of(q: &Query) -> Self {
        Self {
            source: q.sources.id().raw(),
            h_bits: q.h.to_bits(),
            targets: Arc::as_ptr(&q.targets) as usize,
        }
    }
}

struct Gate {
    paused: Mutex<bool>,
    resumed: Condvar,
}

/// Counters the worker owns; merged into the report at shutdown.
#[derive(Default)]
struct WorkerStats {
    completed: u64,
    expired: u64,
    failed: u64,
    fallbacks: u64,
    batches: u64,
    batched_queries: u64,
    plan_cache: PlanCacheStats,
    profiles: Vec<PipelineProfile>,
}

/// The batch server. See the module docs.
pub struct Server {
    queue: Arc<BoundedQueue<(Query, Ticket)>>,
    gate: Arc<Gate>,
    worker: Option<JoinHandle<WorkerStats>>,
    submitted: u64,
    accepted: u64,
    rejected: u64,
}

impl Server {
    /// Starts the worker thread.
    ///
    /// # Panics
    /// Panics on a zero queue capacity, wave or batch size, or a zero
    /// plan-cache capacity while the cache is enabled.
    #[must_use]
    pub fn start(cfg: ServeConfig) -> Self {
        assert!(cfg.wave > 0, "wave size must be positive");
        assert!(cfg.max_batch > 0, "batch size must be positive");
        let queue = Arc::new(BoundedQueue::new(cfg.queue_capacity));
        let gate = Arc::new(Gate {
            paused: Mutex::new(cfg.start_paused),
            resumed: Condvar::new(),
        });
        let worker = {
            let queue = Arc::clone(&queue);
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || worker_loop(&cfg, &queue, &gate))
        };
        Self {
            queue,
            gate,
            worker: Some(worker),
            submitted: 0,
            accepted: 0,
            rejected: 0,
        }
    }

    /// Offers a query. Full queue ⇒ [`Submit::Rejected`] with the
    /// query returned; the caller decides whether to retry.
    ///
    /// # Panics
    /// Panics on a malformed query: empty corpus or target set,
    /// mismatched dimensions or weight count, or a non-finite/
    /// non-positive bandwidth.
    pub fn submit(&mut self, q: Query) -> Submit {
        assert!(!q.sources.is_empty(), "query has an empty corpus");
        assert!(!q.targets.is_empty(), "query has an empty target set");
        assert_eq!(
            q.sources.dim(),
            q.targets.dim(),
            "source/target dimensions differ"
        );
        assert_eq!(
            q.weights.len(),
            q.targets.len(),
            "weights length must equal target count"
        );
        assert!(
            q.h.is_finite() && q.h > 0.0,
            "bandwidth must be finite and positive"
        );
        self.submitted += 1;
        let ticket = Ticket::new();
        match self.queue.try_push((q, ticket.clone())) {
            Ok(()) => {
                self.accepted += 1;
                Submit::Accepted(ticket)
            }
            Err((q, _)) => {
                self.rejected += 1;
                Submit::Rejected(Box::new(q))
            }
        }
    }

    /// Opens the gate of a paused server; the worker starts draining.
    pub fn resume(&self) {
        *self.gate.paused.lock().expect("gate poisoned") = false;
        self.gate.resumed.notify_all();
    }

    /// Closes the queue, drains the backlog, joins the worker and
    /// returns the final accounting.
    #[must_use]
    pub fn shutdown(mut self) -> ServeReport {
        self.queue.close();
        self.resume();
        let w = self
            .worker
            .take()
            .expect("worker present until shutdown")
            .join()
            .expect("worker panicked");
        ServeReport {
            submitted: self.submitted,
            accepted: self.accepted,
            rejected: self.rejected,
            completed: w.completed,
            expired: w.expired,
            failed: w.failed,
            fallbacks: w.fallbacks,
            batches: w.batches,
            batched_queries: w.batched_queries,
            plan_cache: w.plan_cache,
            queue_high_water: self.queue.high_water(),
            profiles: w.profiles,
        }
    }

    /// Current queue depth (racy; for monitoring).
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if let Some(w) = self.worker.take() {
            self.queue.close();
            self.resume();
            let _ = w.join();
        }
    }
}

fn worker_loop(
    cfg: &ServeConfig,
    queue: &BoundedQueue<(Query, Ticket)>,
    gate: &Gate,
) -> WorkerStats {
    let mut stats = WorkerStats::default();
    let mut cache = PlanCache::new(cfg.plan_cache_capacity.max(1));
    let mut injected = 0u64;
    loop {
        {
            let mut paused = gate.paused.lock().expect("gate poisoned");
            while *paused {
                paused = gate.resumed.wait(paused).expect("gate poisoned");
            }
        }
        // One wave: block for the first query, then opportunistically
        // drain up to `wave` total so concurrent arrivals coalesce.
        let Some(first) = queue.pop_blocking() else {
            break;
        };
        let mut wave = vec![first];
        while wave.len() < cfg.wave {
            match queue.try_pop() {
                Some(item) => wave.push(item),
                None => break,
            }
        }
        // Group by (corpus, h, targets), preserving arrival order
        // within each group.
        let mut order: Vec<BatchKey> = Vec::new();
        let mut groups: HashMap<BatchKey, Vec<(Query, Ticket)>> = HashMap::new();
        for (q, t) in wave {
            let key = BatchKey::of(&q);
            groups.entry(key).or_insert_with(|| {
                order.push(key);
                Vec::new()
            });
            groups.get_mut(&key).expect("just inserted").push((q, t));
        }
        let max_batch = match cfg.backend {
            ServeBackend::CpuFused => cfg.max_batch,
            ServeBackend::GpuFused { .. } => cfg.max_batch.min(MAX_GPU_BATCH),
        };
        for key in order {
            let group = groups.remove(&key).expect("grouped above");
            for chunk in group.chunks(max_batch) {
                execute_chunk(cfg, chunk, &mut cache, &mut injected, &mut stats);
            }
        }
    }
    stats.plan_cache = cache.stats();
    stats
}

fn execute_chunk(
    cfg: &ServeConfig,
    chunk: &[(Query, Ticket)],
    cache: &mut PlanCache,
    injected: &mut u64,
    stats: &mut WorkerStats,
) {
    // Deadline check at dequeue time: expired queries never reach the
    // solver (and never count as a batch column).
    let now = Instant::now();
    let mut live: Vec<&(Query, Ticket)> = Vec::with_capacity(chunk.len());
    for qt in chunk {
        match qt.0.deadline {
            Some(d) if d < now => {
                qt.1.fulfil(Err(ServeError::DeadlineExpired));
                stats.expired += 1;
            }
            _ => live.push(qt),
        }
    }
    if live.is_empty() {
        return;
    }
    let proto = &live[0].0;
    let key = PlanKey::new(&proto.sources, proto.h);
    let (plan, hit) = if cfg.enable_plan_cache {
        cache.get_or_build(key, || SourcePlan::build(proto.sources.points()))
    } else {
        (Arc::new(SourcePlan::build(proto.sources.points())), false)
    };
    let weights: Vec<Vec<f32>> = live.iter().map(|(q, _)| q.weights.clone()).collect();
    let outcome = run_batch(cfg, &plan, proto, &weights, hit, injected, stats);
    if let Some(delay) = cfg.batch_delay {
        std::thread::sleep(delay);
    }
    stats.batches += 1;
    stats.batched_queries += live.len() as u64;
    match outcome {
        Ok(results) => {
            for ((_, t), v) in live.iter().zip(results) {
                t.fulfil(Ok(v));
                stats.completed += 1;
            }
        }
        Err(e) => {
            for (_, t) in &live {
                t.fulfil(Err(ServeError::Launch(e.clone())));
                stats.failed += 1;
            }
        }
    }
}

fn run_batch(
    cfg: &ServeConfig,
    plan: &SourcePlan,
    proto: &Query,
    weights: &[Vec<f32>],
    hit: bool,
    injected: &mut u64,
    stats: &mut WorkerStats,
) -> Result<Vec<Vec<f32>>, LaunchError> {
    match cfg.backend {
        ServeBackend::CpuFused => Ok(executor::execute_cpu(
            plan,
            &proto.targets,
            proto.h,
            weights,
            &cfg.cpu,
        )),
        ServeBackend::GpuFused { cpu_fallback } => {
            let launch = if let FaultInjection::FirstN(n) = cfg.fault_injection {
                if *injected < n {
                    *injected += 1;
                    Err(LaunchError::EmptyLaunch)
                } else {
                    gpu_launch(cfg, plan, proto, weights, hit)
                }
            } else {
                gpu_launch(cfg, plan, proto, weights, hit)
            };
            match launch {
                Ok((results, prof)) => {
                    stats.profiles.push(prof);
                    Ok(results)
                }
                Err(e) if cpu_fallback => {
                    stats.fallbacks += 1;
                    let _ = e;
                    Ok(executor::execute_cpu(
                        plan,
                        &proto.targets,
                        proto.h,
                        weights,
                        &cfg.cpu,
                    ))
                }
                Err(e) => Err(e),
            }
        }
    }
}

fn gpu_launch(
    cfg: &ServeConfig,
    plan: &SourcePlan,
    proto: &Query,
    weights: &[Vec<f32>],
    hit: bool,
) -> Result<(Vec<Vec<f32>>, PipelineProfile), LaunchError> {
    let mut dev = GpuDevice::new(cfg.device.clone());
    executor::execute_gpu(&mut dev, plan, &proto.targets, proto.h, weights, hit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ks_core::problem::PointSet;

    fn query(sources: &SourceSet, targets: &Arc<PointSet>, seed: u64) -> Query {
        let w = PointSet::uniform_cube(targets.len(), 1, seed)
            .coords()
            .iter()
            .map(|v| v - 0.5)
            .collect();
        Query {
            sources: sources.clone(),
            targets: Arc::clone(targets),
            weights: w,
            h: 0.9,
            deadline: None,
        }
    }

    fn cpu_config() -> ServeConfig {
        ServeConfig {
            backend: ServeBackend::CpuFused,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn serves_a_simple_query() {
        let sources = SourceSet::new(PointSet::uniform_cube(24, 4, 1));
        let targets = Arc::new(PointSet::uniform_cube(16, 4, 2));
        let mut srv = Server::start(cpu_config());
        let Submit::Accepted(t) = srv.submit(query(&sources, &targets, 3)) else {
            panic!("empty queue must accept");
        };
        let v = t.wait().expect("completes");
        assert_eq!(v.len(), 24);
        let report = srv.shutdown();
        assert_eq!(report.submitted, 1);
        assert_eq!(report.completed, 1);
        assert_eq!(report.batches, 1);
    }

    #[test]
    fn paused_server_coalesces_shared_corpus_queries() {
        let sources = SourceSet::new(PointSet::uniform_cube(32, 4, 5));
        let targets = Arc::new(PointSet::uniform_cube(16, 4, 6));
        let mut cfg = cpu_config();
        cfg.start_paused = true;
        cfg.wave = 8;
        let mut srv = Server::start(cfg);
        let tickets: Vec<Ticket> = (0..4)
            .map(|i| match srv.submit(query(&sources, &targets, 10 + i)) {
                Submit::Accepted(t) => t,
                Submit::Rejected(_) => panic!("capacity 64 cannot reject 4"),
            })
            .collect();
        srv.resume();
        for t in &tickets {
            assert!(t.wait().is_ok());
        }
        let report = srv.shutdown();
        assert_eq!(report.completed, 4);
        assert_eq!(report.batches, 1, "one coalesced solve");
        assert_eq!(report.batched_queries, 4);
        assert_eq!(report.plan_cache.misses, 1);
    }

    #[test]
    fn expired_deadline_is_reported() {
        let sources = SourceSet::new(PointSet::uniform_cube(16, 3, 7));
        let targets = Arc::new(PointSet::uniform_cube(8, 3, 8));
        let mut cfg = cpu_config();
        cfg.start_paused = true;
        let mut srv = Server::start(cfg);
        let mut q = query(&sources, &targets, 9);
        q.deadline = Some(Instant::now() - Duration::from_millis(1));
        let Submit::Accepted(t) = srv.submit(q) else {
            panic!("must accept");
        };
        srv.resume();
        assert_eq!(t.wait(), Err(ServeError::DeadlineExpired));
        let report = srv.shutdown();
        assert_eq!(report.expired, 1);
        assert_eq!(report.completed, 0);
    }

    #[test]
    fn backpressure_rejects_and_returns_the_query() {
        let sources = SourceSet::new(PointSet::uniform_cube(16, 3, 11));
        let targets = Arc::new(PointSet::uniform_cube(8, 3, 12));
        let mut cfg = cpu_config();
        cfg.queue_capacity = 2;
        cfg.start_paused = true;
        let mut srv = Server::start(cfg);
        let _t1 = srv.submit(query(&sources, &targets, 13));
        let _t2 = srv.submit(query(&sources, &targets, 14));
        match srv.submit(query(&sources, &targets, 15)) {
            Submit::Rejected(q) => assert_eq!(q.weights.len(), 8),
            Submit::Accepted(_) => panic!("full queue must reject"),
        }
        srv.resume();
        let report = srv.shutdown();
        assert_eq!(report.submitted, 3);
        assert_eq!(report.accepted, 2);
        assert_eq!(report.rejected, 1);
        assert!(report.queue_high_water <= 2);
    }

    #[test]
    fn fault_injection_falls_back_to_cpu() {
        let sources = SourceSet::new(PointSet::uniform_cube(128, 8, 21));
        let targets = Arc::new(PointSet::uniform_cube(128, 8, 22));
        let mut cfg = ServeConfig {
            backend: ServeBackend::GpuFused { cpu_fallback: true },
            fault_injection: FaultInjection::FirstN(1),
            ..ServeConfig::default()
        };
        cfg.start_paused = true;
        let mut srv = Server::start(cfg);
        let Submit::Accepted(t) = srv.submit(query(&sources, &targets, 23)) else {
            panic!("must accept");
        };
        srv.resume();
        assert!(t.wait().is_ok(), "fallback recovers the query");
        let report = srv.shutdown();
        assert_eq!(report.fallbacks, 1);
        assert_eq!(report.completed, 1);
        assert!(report.profiles.is_empty(), "failed launch has no profile");
    }

    #[test]
    fn fault_without_fallback_fails_the_query() {
        let sources = SourceSet::new(PointSet::uniform_cube(128, 8, 31));
        let targets = Arc::new(PointSet::uniform_cube(128, 8, 32));
        let cfg = ServeConfig {
            backend: ServeBackend::GpuFused {
                cpu_fallback: false,
            },
            fault_injection: FaultInjection::FirstN(1),
            start_paused: true,
            ..ServeConfig::default()
        };
        let mut srv = Server::start(cfg);
        let Submit::Accepted(t) = srv.submit(query(&sources, &targets, 33)) else {
            panic!("must accept");
        };
        srv.resume();
        assert_eq!(t.wait(), Err(ServeError::Launch(LaunchError::EmptyLaunch)));
        let report = srv.shutdown();
        assert_eq!(report.failed, 1);
    }

    #[test]
    #[should_panic(expected = "weights length")]
    fn submit_rejects_malformed_query() {
        let sources = SourceSet::new(PointSet::uniform_cube(16, 3, 41));
        let targets = Arc::new(PointSet::uniform_cube(8, 3, 42));
        let mut q = query(&sources, &targets, 43);
        q.weights.pop();
        let mut srv = Server::start(cpu_config());
        let _ = srv.submit(q);
    }
}
