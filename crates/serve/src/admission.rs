//! Plan-time static admission for GPU batches.
//!
//! Before a batch's first GPU attempt, the server proves the *exact*
//! kernel it is about to launch clean — bank conflicts, coalescing,
//! bounds, barriers, occupancy — from the kernel's declared access
//! spec alone (`ks_analyze::static_`; zero trace replay, zero
//! execution). A kernel that fails the proof never reaches a device:
//! the batch is served on the bit-exact CPU path instead.
//!
//! A verdict depends only on the padded launch geometry
//! ([`AdmissionKey`]) and the device model, both fixed per server, so
//! verdicts are memoized next to the plan cache
//! ([`crate::cache::PlanCache::admission`]): warm shapes pay one hash
//! lookup, satisfying the serve-bench throughput budget.

use ks_analyze::static_::analyze_spec;
use ks_gpu_kernels::aux_kernels::Bandwidth;
use ks_gpu_kernels::gemm_engine::{GemmOperands, GemmShape};
use ks_gpu_kernels::{FusedMultiWeight, TileGeometry};
use ks_gpu_sim::buffer::GlobalMem;
use ks_gpu_sim::config::DeviceConfig;
use ks_gpu_sim::kernel::Kernel;

/// Everything a static admission verdict depends on besides the
/// device model: the GEMM shape *after* padding to the tiling
/// constraints, the weight-column count (which sets the register
/// footprint and the epilogue's access pattern), and the tile
/// geometry the kernel would launch with (which sets everything
/// else — occupancy, staging layout, coalescing width).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AdmissionKey {
    /// Padded source count (`M`, multiple of the geometry's block_m).
    pub m: usize,
    /// Padded target count (`N`, multiple of the geometry's block_n).
    pub n: usize,
    /// Padded point dimension (`K`, multiple of the geometry's
    /// tile_k).
    pub k: usize,
    /// Weight columns in the batch.
    pub r: usize,
    /// The tile geometry of the launch being proved.
    pub geometry: TileGeometry,
}

impl AdmissionKey {
    /// Key for a batch of `r` queries over an `m × k` corpus and `n`
    /// targets at `geometry`, applying the same padding
    /// `executor::pad_batch` does.
    #[must_use]
    pub fn for_batch(m: usize, n: usize, k: usize, r: usize, geometry: &TileGeometry) -> Self {
        Self {
            m: m.next_multiple_of(geometry.block_m),
            n: n.next_multiple_of(geometry.block_n),
            k: k.next_multiple_of(geometry.tile_k),
            r,
            geometry: *geometry,
        }
    }
}

/// Outcome of one static admission check.
#[derive(Debug, Clone)]
pub struct AdmissionVerdict {
    /// True when the kernel proved clean (or was unprovable — see
    /// [`check_shape`]); false when the analyzer found a violation.
    pub admitted: bool,
    /// Rendered findings behind a rejection (empty when admitted).
    pub findings: Vec<String>,
}

/// Memo counters for the admission path.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Fresh verdicts computed (one static analysis each).
    pub checks: u64,
    /// Verdicts served from the memo (warm shapes; no analysis ran).
    pub hits: u64,
    /// Batches denied the GPU and served on the CPU path.
    pub rejects: u64,
}

/// Statically lints the fused multi-weight kernel at the given launch
/// geometry. The shadow kernel is built over virtual buffers sized
/// exactly as `executor::pad_batch` would allocate them, so the proof
/// covers the launch the server would actually make.
///
/// Admission only rejects on a *positive* proof of a violation. An
/// unprovable spec (missing or non-affine) admits: the fused-multi
/// kernel declares an affine spec so that arm is dead in practice,
/// but the policy stays honest if the spec is ever dropped — dynamic
/// replay at serve time is exactly what this check exists to avoid.
#[must_use]
pub fn check_shape(dev: &DeviceConfig, key: AdmissionKey) -> AdmissionVerdict {
    let shape = GemmShape {
        m: key.m,
        n: key.n,
        k: key.k,
    };
    let mut mem = GlobalMem::new();
    let ops = GemmOperands {
        a: mem.alloc_virtual(shape.m * shape.k),
        b: mem.alloc_virtual(shape.k * shape.n),
    };
    let a2 = mem.alloc_virtual(shape.m);
    let b2 = mem.alloc_virtual(shape.n);
    let w = mem.alloc_virtual(shape.n * key.r);
    let v = mem.alloc_virtual(shape.m * key.r);
    let kernel = FusedMultiWeight::new(ops, a2, b2, w, v, shape, Bandwidth { h: 1.0 }, key.r)
        .with_geometry(key.geometry);
    match kernel.access_spec() {
        Some(spec) if spec.is_affine() => {
            let (report, _) = analyze_spec(dev, &kernel, &spec);
            AdmissionVerdict {
                admitted: report.is_clean(),
                findings: report.findings.iter().map(ToString::to_string).collect(),
            }
        }
        _ => AdmissionVerdict {
            admitted: true,
            findings: Vec::new(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padded_shapes_admit_on_the_reference_device() {
        let dev = DeviceConfig::gtx970();
        let geo = TileGeometry::paper_default();
        for r in [1, 2, 8] {
            let key = AdmissionKey::for_batch(100, 70, 5, r, &geo);
            assert_eq!((key.m, key.n, key.k), (128, 128, 8));
            let verdict = check_shape(&dev, key);
            assert!(verdict.admitted, "r={r}: {:?}", verdict.findings);
        }
    }

    #[test]
    fn starved_device_is_rejected_with_findings() {
        let mut dev = DeviceConfig::gtx970();
        // Halving the register file breaks the kernel's declared
        // occupancy expectation — a provable mismatch.
        dev.regs_per_sm /= 2;
        let verdict = check_shape(
            &dev,
            AdmissionKey::for_batch(256, 256, 16, 2, &TileGeometry::paper_default()),
        );
        assert!(!verdict.admitted);
        assert!(!verdict.findings.is_empty());
    }
}
