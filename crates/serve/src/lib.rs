//! # ks-serve — batched kernel-summation serving
//!
//! Production kernel-summation workloads are *query streams*: many
//! clients evaluate Gaussian sums against a handful of long-lived
//! source corpora. This crate lifts the paper's reuse argument from
//! the kernel to the service: just as the fused kernel amortises the
//! `M×N` intermediate across one query (§III), the server amortises
//! the `A`-side precomputation across the stream.
//!
//! * [`queue`] — bounded submission queue; a full queue *rejects*
//!   (explicit backpressure) instead of blocking or growing.
//! * [`server`] — the scheduler: queries sharing
//!   `(corpus, bandwidth, targets)` coalesce into one multi-weight
//!   fused solve, each contributing a weight column; per-query
//!   deadlines; CPU-fused fallback when a simulated-GPU launch fails.
//!   The `gpu-resilient` backend adds ABFT-verified launches with
//!   seeded-backoff retries, a per-backend circuit breaker and a
//!   degradation ladder ending at the bit-exact CPU reference.
//! * [`cache`] — the LRU plan cache keyed by `(corpus id, M, K, h)`;
//!   a hit skips the host-side pack/norms pass and the `norms(A)`
//!   kernel launch.
//! * [`admission`] — plan-time static admission: the exact kernel a
//!   GPU batch would launch is proved clean (conflicts, bounds,
//!   occupancy) from its declared access spec before the first
//!   attempt; verdicts are memoized beside the plan cache and a
//!   reject serves the batch on the bit-exact CPU path.
//! * [`executor`] — one coalesced batch on either backend. The CPU
//!   path is bit-deterministic and column-wise identical to the
//!   single-shot solver; the GPU path pads to the tiling constraints.
//! * [`workload`] — deterministic synthetic arrival streams and the
//!   multi-client driver behind `ksum serve-bench`.
//! * [`packed`] — horizontal fusion: the `PackedBatch` planner groups
//!   mutually-unrelated small GPU batches from one scheduling wave
//!   into a single routed launch ([`ks_gpu_kernels::FusedMultiPacked`])
//!   with results bit-identical to unpacked serving.
//! * [`pool`] — multi-device sharded serving: each batch is
//!   partitioned row-wise over `N` simulated devices (own plan cache,
//!   fault spec, breaker, interconnect) and the partial results merge
//!   in fixed shard order, bit-identical to a single-device solve.
//! * [`router`] — the shard placement policy: cache-first, then
//!   load-aware, deterministic.
//! * [`health`] — the pool's drain → evict → readmit control loop:
//!   consecutive-failure eviction, cooldown-gated probation and
//!   probe-success readmission, driven by per-shard health evidence.

#![warn(missing_docs)]

pub mod admission;
pub mod cache;
pub mod executor;
pub mod health;
pub mod packed;
pub mod pool;
pub mod queue;
pub mod router;
pub mod server;
pub mod workload;

pub use admission::{AdmissionKey, AdmissionStats, AdmissionVerdict};
pub use cache::{GeometryStats, PlanCache, PlanCacheStats, PlanKey};
pub use executor::MAX_GPU_BATCH;
pub use health::HealthConfig;
pub use packed::{packable, PACK_MAX_COL_BLOCKS, PACK_MAX_SEGMENT_BLOCKS};
pub use pool::{DeviceReport, PoolConfig, PoolDevice, PoolReport, SHARD_ALIGN};
pub use queue::BoundedQueue;
pub use server::{
    backoff_delay, FaultInjection, GeometryPick, Query, ResilienceConfig, ServeBackend,
    ServeConfig, ServeError, ServeReport, Server, Submit, Ticket,
};
pub use workload::{
    generate_queries, generate_small_queries, packed_smoke_workload, run_workload, smoke_workload,
    SmallQueryWorkloadConfig, WorkloadConfig,
};
