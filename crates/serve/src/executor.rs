//! Batch execution: one coalesced multi-weight solve per backend.
//!
//! A batch is `R` queries sharing a corpus, target set and bandwidth;
//! each query contributes one weight column. The CPU path goes through
//! [`solve_multi_planned`], so each served column is **bit-identical**
//! to the single-shot `solve_multi_fused` answer for that query alone
//! (per-column accumulation is independent of `R`). The GPU path runs
//! the simulated fused-multi pipeline at the server's resolved
//! [`TileGeometry`], padding to that geometry's tiling constraints; on
//! a plan-cache hit it ships the precomputed row norms and skips the
//! `norms(A)` kernel.

use ks_blas::{Layout, Matrix};
use ks_core::plan::SourcePlan;
use ks_core::problem::PointSet;
use ks_core::{FusedCpuConfig, GaussianKernel};
use ks_gpu_kernels::gemm_engine::GemmShape;
use ks_gpu_kernels::{
    execute_fused_multi_verified_with, execute_fused_multi_with, TileGeometry, VerifyReport,
    MAX_WEIGHT_COLUMNS,
};
use ks_gpu_sim::device::GpuDevice;
use ks_gpu_sim::kernel::LaunchError;
use ks_gpu_sim::profiler::PipelineProfile;

/// Largest coalesced batch the GPU kernel accepts (weight columns).
pub const MAX_GPU_BATCH: usize = MAX_WEIGHT_COLUMNS;

/// Runs a batch on the deterministic CPU fused path. Returns one
/// result vector (length `M`) per query, in input order.
pub(crate) fn execute_cpu(
    plan: &SourcePlan,
    targets: &PointSet,
    h: f32,
    weights: &[Vec<f32>],
    cfg: &FusedCpuConfig,
) -> Vec<Vec<f32>> {
    let n = targets.len();
    let r = weights.len();
    let w = Matrix::from_fn(n, r, Layout::RowMajor, |j, c| weights[c][j]);
    let v = ks_core::solve_multi_planned(plan, targets, &GaussianKernel { h }, &w, cfg);
    let (m, _) = plan.dims();
    (0..r)
        .map(|c| (0..m).map(|i| v.get(i, c)).collect())
        .collect()
}

/// Zero-pads point coordinates to `(count_pad, dim_pad)`. Zero
/// coordinates preserve pairwise distances; padded rows are dropped
/// from the output below.
fn pad_coords(
    coords: &[f32],
    count: usize,
    dim: usize,
    count_pad: usize,
    dim_pad: usize,
) -> Vec<f32> {
    let mut out = vec![0.0f32; count_pad * dim_pad];
    for p in 0..count {
        out[p * dim_pad..p * dim_pad + dim].copy_from_slice(&coords[p * dim..(p + 1) * dim]);
    }
    out
}

/// A batch padded to the GPU tiling constraints, ready to launch.
/// `pub(crate)` so the horizontal-fusion planner ([`crate::packed`])
/// can pad each segment exactly as the unpacked path would.
pub(crate) struct PaddedBatch {
    pub(crate) a: Vec<f32>,
    pub(crate) b: Vec<f32>,
    pub(crate) w_cols: Vec<f32>,
    pub(crate) a2: Option<Vec<f32>>,
    pub(crate) shape: GemmShape,
    pub(crate) m: usize,
    pub(crate) r: usize,
}

pub(crate) fn pad_batch(
    plan: &SourcePlan,
    targets: &PointSet,
    weights: &[Vec<f32>],
    plan_hit: bool,
    geo: &TileGeometry,
) -> PaddedBatch {
    let (m, k) = plan.dims();
    let n = targets.len();
    let r = weights.len();
    assert!(
        (1..=MAX_GPU_BATCH).contains(&r),
        "GPU batch width {r} out of range 1..={MAX_GPU_BATCH}"
    );
    let m_pad = m.next_multiple_of(geo.block_m);
    let n_pad = n.next_multiple_of(geo.block_n);
    assert!(
        r <= geo.tile_k,
        "batch width {r} exceeds the geometry's tile_k {}; the server \
         must resolve a geometry wide enough for the batch",
        geo.tile_k
    );
    let k_pad = k.next_multiple_of(geo.tile_k);
    let a = pad_coords(plan.pack_words(), m, k, m_pad, k_pad);
    let b = pad_coords(targets.coords(), n, k, n_pad, k_pad);
    // N×R column-major; padded targets carry zero weight.
    let mut w_cols = vec![0.0f32; n_pad * r];
    for (c, w) in weights.iter().enumerate() {
        w_cols[c * n_pad..c * n_pad + n].copy_from_slice(w);
    }
    // Padded source rows are all-zero points: their norm is 0, so the
    // precomputed norms extend with zeros.
    let a2 = plan_hit.then(|| {
        let mut norms = plan.row_sq_norms().to_vec();
        norms.resize(m_pad, 0.0);
        norms
    });
    PaddedBatch {
        a,
        b,
        w_cols,
        a2,
        shape: GemmShape {
            m: m_pad,
            n: n_pad,
            k: k_pad,
        },
        m,
        r,
    }
}

impl PaddedBatch {
    /// Slices the padded `M_pad×R` result back to `R` vectors of `M`.
    pub(crate) fn unpad(&self, v: &[f32]) -> Vec<Vec<f32>> {
        (0..self.r)
            .map(|c| v[c * self.shape.m..c * self.shape.m + self.m].to_vec())
            .collect()
    }
}

/// Runs a batch on the simulated GPU. `plan_hit` selects the warm
/// path: the plan's precomputed row norms are uploaded and the
/// `norms(A)` kernel launch is skipped.
///
/// # Errors
/// Propagates launch-validation failures; the server turns these into
/// the CPU fallback or a per-query error.
pub(crate) fn execute_gpu(
    dev: &mut GpuDevice,
    plan: &SourcePlan,
    targets: &PointSet,
    h: f32,
    weights: &[Vec<f32>],
    plan_hit: bool,
    geo: &TileGeometry,
) -> Result<(Vec<Vec<f32>>, PipelineProfile), LaunchError> {
    let batch = pad_batch(plan, targets, weights, plan_hit, geo);
    let (v, prof) = execute_fused_multi_with(
        dev,
        geo,
        batch.shape,
        h,
        &batch.a,
        &batch.b,
        &batch.w_cols,
        batch.a2.as_deref(),
    )?;
    Ok((batch.unpad(&v), prof))
}

/// [`execute_gpu`] through the checksum-augmented (ABFT) fused-multi
/// pipeline. The returned [`VerifyReport`] says whether any in-kernel
/// check or host-side checksum comparison tripped; the results must
/// not be fulfilled when it did.
///
/// # Errors
/// Propagates launch-validation failures and injected launch-level
/// faults.
pub(crate) fn execute_gpu_verified(
    dev: &mut GpuDevice,
    plan: &SourcePlan,
    targets: &PointSet,
    h: f32,
    weights: &[Vec<f32>],
    plan_hit: bool,
    geo: &TileGeometry,
) -> Result<(Vec<Vec<f32>>, PipelineProfile, VerifyReport), LaunchError> {
    let batch = pad_batch(plan, targets, weights, plan_hit, geo);
    let (v, prof, report) = execute_fused_multi_verified_with(
        dev,
        geo,
        batch.shape,
        h,
        &batch.a,
        &batch.b,
        &batch.w_cols,
        batch.a2.as_deref(),
    )?;
    Ok((batch.unpad(&v), prof, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ks_core::plan::SourceSet;
    use ks_core::solve_multi_reference;
    use ks_core::KernelSumProblem;

    fn weights(n: usize, r: usize, seed: u64) -> Vec<Vec<f32>> {
        (0..r)
            .map(|c| {
                PointSet::uniform_cube(n, 1, seed + c as u64)
                    .coords()
                    .iter()
                    .map(|v| v - 0.5)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn cpu_batch_columns_are_bit_identical_to_single_shot() {
        let sources = SourceSet::new(PointSet::uniform_cube(48, 5, 1));
        let targets = PointSet::uniform_cube(36, 5, 2);
        let ws = weights(36, 3, 3);
        let plan = SourcePlan::build(sources.points());
        let cfg = FusedCpuConfig::default();
        let batch = execute_cpu(&plan, &targets, 0.8, &ws, &cfg);
        for (c, w) in ws.iter().enumerate() {
            let single = execute_cpu(&plan, &targets, 0.8, std::slice::from_ref(w), &cfg);
            for (i, (a, b)) in batch[c].iter().zip(single[0].iter()).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "col {c} row {i}");
            }
        }
    }

    #[test]
    fn gpu_batch_matches_oracle_and_pads_awkward_dims() {
        let sources = SourceSet::new(PointSet::uniform_cube(100, 5, 11));
        let targets = PointSet::uniform_cube(70, 5, 12);
        let ws = weights(70, 2, 13);
        let plan = SourcePlan::build(sources.points());
        let mut dev = GpuDevice::gtx970();
        let geo = TileGeometry::paper_default();
        let (got, prof) = execute_gpu(&mut dev, &plan, &targets, 0.9, &ws, false, &geo).unwrap();
        assert_eq!(prof.kernels.len(), 3);
        for (c, w) in ws.iter().enumerate() {
            let p = KernelSumProblem::builder()
                .sources(sources.points().clone())
                .targets(targets.clone())
                .weights(w.clone())
                .kernel(GaussianKernel { h: 0.9 })
                .build();
            let want =
                solve_multi_reference(&p, &Matrix::from_fn(70, 1, Layout::RowMajor, |j, _| w[j]));
            assert_eq!(got[c].len(), 100);
            for (i, g) in got[c].iter().enumerate() {
                let x = want.get(i, 0);
                assert!((g - x).abs() < 5e-3 * x.abs().max(1.0), "col {c} row {i}");
            }
        }
    }

    #[test]
    fn verified_gpu_batch_is_clean_and_matches_unverified() {
        let sources = SourceSet::new(PointSet::uniform_cube(96, 5, 31));
        let targets = PointSet::uniform_cube(64, 5, 32);
        let ws = weights(64, 3, 33);
        let plan = SourcePlan::build(sources.points());
        let geo = TileGeometry::paper_default();
        let (plain, _) = execute_gpu(
            &mut GpuDevice::gtx970(),
            &plan,
            &targets,
            0.9,
            &ws,
            false,
            &geo,
        )
        .unwrap();
        let (verified, prof, report) = execute_gpu_verified(
            &mut GpuDevice::gtx970(),
            &plan,
            &targets,
            0.9,
            &ws,
            false,
            &geo,
        )
        .unwrap();
        assert!(!report.corruption_detected(), "fault-free run is clean");
        assert!(report.checksum_groups > 0);
        assert_eq!(prof.kernels.len(), 3);
        for (c, (a, b)) in plain.iter().zip(verified.iter()).enumerate() {
            for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
                assert!((x - y).abs() <= 1e-4 * x.abs().max(1.0), "col {c} row {i}");
            }
        }
    }

    #[test]
    fn gpu_warm_path_skips_norms_kernel() {
        let sources = SourceSet::new(PointSet::uniform_cube(128, 8, 21));
        let targets = PointSet::uniform_cube(128, 8, 22);
        let ws = weights(128, 1, 23);
        let plan = SourcePlan::build(sources.points());
        let mut dev = GpuDevice::gtx970();
        let geo = TileGeometry::paper_default();
        let (_, prof) = execute_gpu(&mut dev, &plan, &targets, 1.0, &ws, true, &geo).unwrap();
        assert_eq!(prof.kernels.len(), 2, "norms(A) skipped on a plan hit");
    }
}
