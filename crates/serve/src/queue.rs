//! Bounded multi-producer submission queue with explicit rejection.
//!
//! Backpressure is the load-shedding contract of the service: when the
//! queue is full, [`BoundedQueue::try_push`] returns the item to the
//! caller instead of blocking or growing — the server surfaces that as
//! [`crate::server::Submit::Rejected`]. The queue also records its
//! high-water mark so tests can prove the bound was never exceeded.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
    high_water: usize,
}

/// A bounded MPSC queue: producers `try_push` (never block), the
/// single consumer blocks in `pop_blocking` until an item arrives or
/// the queue is closed and drained.
pub struct BoundedQueue<T> {
    capacity: usize,
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
}

impl<T> BoundedQueue<T> {
    /// Locks the queue state, recovering from poisoning. Every
    /// critical section below is a handful of panic-free `VecDeque`
    /// and flag operations, so a poisoned mutex (a producer or the
    /// consumer panicked *outside* the lock while unwinding through
    /// it) leaves the state structurally sound — recovering keeps the
    /// queue drainable during shutdown instead of cascading the panic
    /// into every other client thread.
    fn state(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Self {
            capacity,
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
                high_water: 0,
            }),
            not_empty: Condvar::new(),
        }
    }

    /// Enqueues without blocking. Returns the item back when the
    /// queue is full (backpressure) or already closed.
    ///
    /// # Errors
    /// `Err(item)` when the queue is at capacity or closed.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut g = self.state();
        if g.closed || g.items.len() >= self.capacity {
            return Err(item);
        }
        g.items.push_back(item);
        g.high_water = g.high_water.max(g.items.len());
        drop(g);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until an item is available; returns `None` once the
    /// queue is closed **and** drained.
    pub fn pop_blocking(&self) -> Option<T> {
        let mut g = self.state();
        loop {
            if let Some(item) = g.items.pop_front() {
                return Some(item);
            }
            if g.closed {
                return None;
            }
            g = self
                .not_empty
                .wait(g)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Dequeues without blocking.
    pub fn try_pop(&self) -> Option<T> {
        self.state().items.pop_front()
    }

    /// Closes the queue: further pushes are rejected, consumers drain
    /// the remainder and then see `None`.
    pub fn close(&self) {
        self.state().closed = true;
        self.not_empty.notify_all();
    }

    /// Items currently enqueued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.state().items.len()
    }

    /// True when nothing is enqueued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Largest depth ever observed — never exceeds `capacity`.
    #[must_use]
    pub fn high_water(&self) -> usize {
        self.state().high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_when_full_and_tracks_high_water() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.high_water(), 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.try_pop(), Some(1));
        assert!(q.try_push(3).is_ok());
        assert_eq!(q.high_water(), 2);
    }

    #[test]
    fn close_drains_then_signals_end() {
        let q = BoundedQueue::new(4);
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(q.try_push(8), Err(8), "closed queue rejects");
        assert_eq!(q.pop_blocking(), Some(7));
        assert_eq!(q.pop_blocking(), None);
    }

    #[test]
    fn blocking_pop_wakes_on_push() {
        let q = Arc::new(BoundedQueue::new(1));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop_blocking());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(42).unwrap();
        assert_eq!(h.join().unwrap(), Some(42));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_is_rejected() {
        let _ = BoundedQueue::<i32>::new(0);
    }
}
