//! Multi-weight fused kernel summation (extension experiment).
//!
//! Kernel regression evaluates `V = K·W` for several weight columns at
//! once. The fused structure extends naturally: each Gaussian value is
//! computed **once** in registers and folded into `R` per-column
//! accumulators — the incremental cost is `micro_m·micro_n·(R−1)`
//! FFMAs per thread against the GEMM's own FFMA stream.
//!
//! The catch is the paper's §III-A register economy: each extra column
//! costs ~`2·micro_n` registers per thread (`micro_n` accumulator
//! partials + `micro_n` staged weights), so at the paper geometry
//! `R = 2` pushes the kernel past the 128-register line where
//! occupancy halves to **one block per SM**. Whether reuse beats
//! occupancy is exactly the kind of question the simulator answers —
//! the alternative (running the single-weight kernel `R` times) redoes
//! the entire GEMM per column. See the `multi_weight` rows of the
//! ablation bench and this module's tests.
//!
//! Layouts: `W` is `N×R` **column-major** (each weight column
//! contiguous), `V` is `M×R` column-major (each output column receives
//! coalesced atomics).

use ks_gpu_sim::access::{
    affine_lanes, masked_lanes, AccessSpec, BarrierSpec, GlobalPattern, SharedPattern,
};
use ks_gpu_sim::buffer::BufId;
use ks_gpu_sim::config::DeviceConfig;
use ks_gpu_sim::device::GpuDevice;
use ks_gpu_sim::dim::{Dim3, LaunchConfig};
use ks_gpu_sim::exec::BlockCtx;
use ks_gpu_sim::kernel::VecWidth;
use ks_gpu_sim::kernel::{
    AnalysisBudget, BlockClass, BufferUse, ExecModel, Kernel, KernelResources, LaunchError,
    TimingHints,
};
use ks_gpu_sim::profiler::PipelineProfile;
use ks_gpu_sim::trace::AccessDir;
use ks_gpu_sim::traffic::{TrafficSink, WarpIdx};

use ks_gpu_sim::smem::flip_bit;

use crate::aux_kernels::{gaussian, Bandwidth, NormsKernel};
use crate::fused::{VerifyBufs, VerifyReport, CHECKSUM_SLOT_WORDS};
use crate::gemm_engine::{
    gemm_access_spec, gemm_block, gemm_block_verified, syncs_per_block, AccGrid, GemmOperands,
    GemmShape, SmemMap, MAX_MICRO,
};
use crate::geometry::TileGeometry;
use crate::layout::SmemLayout;
use crate::machine::{FunctionalMachine, TrafficMachine, WarpMachine};

/// Maximum weight columns: the `T` scratch (which reuses an idle GEMM
/// A-tile buffer of `block_m·tile_k` words) holds `block_m·R`
/// partials, so `R ≤ tile_k`; the paper geometry's rank-8 tiles give
/// this serving-batch ceiling.
pub const MAX_WEIGHT_COLUMNS: usize = 8;

/// The multi-weight fused kernel (see module docs).
///
/// Fields are `pub(crate)` so the horizontally-fused packed kernel
/// ([`crate::fused_multi_packed`]) can reuse this kernel's block body
/// and per-block metadata as its segment descriptor.
pub struct FusedMultiWeight {
    pub(crate) ops: GemmOperands,
    pub(crate) a2: BufId,
    pub(crate) b2: BufId,
    /// `N×R` column-major weights.
    pub(crate) w: BufId,
    /// `M×R` column-major output (must be zeroed before launch).
    pub(crate) v: BufId,
    pub(crate) shape: GemmShape,
    pub(crate) bw: Bandwidth,
    pub(crate) geometry: TileGeometry,
    pub(crate) r: usize,
    pub(crate) verify: Option<VerifyBufs>,
}

impl FusedMultiWeight {
    /// Creates the kernel with `r` weight columns at the paper-default
    /// geometry.
    ///
    /// # Panics
    /// Panics if the shape violates the tiling constraints or
    /// `r ∉ 1..=MAX_WEIGHT_COLUMNS`.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        ops: GemmOperands,
        a2: BufId,
        b2: BufId,
        w: BufId,
        v: BufId,
        shape: GemmShape,
        bw: Bandwidth,
        r: usize,
    ) -> Self {
        shape.validate();
        assert!(
            (1..=MAX_WEIGHT_COLUMNS).contains(&r),
            "weight columns {r} out of range 1..={MAX_WEIGHT_COLUMNS}"
        );
        Self {
            ops,
            a2,
            b2,
            w,
            v,
            shape,
            bw,
            geometry: TileGeometry::paper_default(),
            r,
            verify: None,
        }
    }

    /// Selects the tile geometry. The shape must divide it, and the
    /// column count must fit its `T` scratch (`r ≤ tile_k`).
    ///
    /// # Panics
    /// Panics if the shape violates the geometry's tiling constraints
    /// or `r > geometry.tile_k`.
    #[must_use]
    pub fn with_geometry(mut self, geometry: TileGeometry) -> Self {
        self.shape.validate_for(&geometry);
        assert!(
            self.r <= geometry.tile_k,
            "{} weight columns exceed the T scratch of {geometry} (tile_k {})",
            self.r,
            geometry.tile_k
        );
        self.geometry = geometry;
        self
    }

    /// The kernel's tile geometry.
    #[must_use]
    pub fn geometry(&self) -> &TileGeometry {
        &self.geometry
    }

    /// Enables ABFT verification (see [`crate::fused`]). The checksum
    /// buffer must hold `R·(M/block_m)·CHECKSUM_SLOT_WORDS` zeroed
    /// words (slot `(c·(M/block_m) + by)·CHECKSUM_SLOT_WORDS` for
    /// column `c`, row group `by`) and the flag buffer
    /// `CHECKSUM_SLOT_WORDS` zeroed words.
    #[must_use]
    pub fn with_verify(mut self, bufs: VerifyBufs) -> Self {
        self.verify = Some(bufs);
        self
    }

    /// Registers per thread as a function of the column count at the
    /// paper geometry: the single-weight kernel's 128 plus ~16 per
    /// extra column.
    #[must_use]
    pub fn regs_per_thread(r: usize) -> u32 {
        TileGeometry::paper_default().regs_per_thread_multi(r)
    }

    pub(crate) fn body<M: WarpMachine>(&self, block: Dim3, mach: &mut M) {
        let (bx, by) = (block.x as usize, block.y as usize);
        let s = self.bw.inv_2h2();
        let geo = &self.geometry;
        let warps = geo.warps_per_block();
        let (mm, mn) = (geo.micro_m, geo.micro_n);
        let txn = geo.threads_x();
        let rpw = geo.rows_per_warp();
        let threads = geo.threads_per_block();
        let r = self.r;
        let (n, m) = (self.shape.n, self.shape.m);

        // --- GEMM phase -------------------------------------------------
        let mut acc = if M::FUNCTIONAL {
            AccGrid::for_geometry(geo)
        } else {
            AccGrid::empty(geo)
        };
        let mut corrupt = if self.verify.is_some() {
            gemm_block_verified(
                mach,
                geo,
                &self.ops,
                &self.shape,
                SmemLayout::Swizzled,
                bx,
                by,
                &mut acc,
            )
        } else {
            gemm_block(
                mach,
                geo,
                &self.ops,
                &self.shape,
                SmemLayout::Swizzled,
                bx,
                by,
                &mut acc,
            );
            false
        };

        // Register upsets land on the γ partials (data only; see the
        // single-weight kernel).
        let mut reg_flips: Vec<(usize, usize, usize, u8)> = Vec::new();
        if M::FUNCTIONAL {
            let span = (threads * mm * r) as u64;
            for (pick, bit) in mach.accumulator_faults() {
                let elem = (pick % span) as usize;
                let tid = elem / (mm * r);
                let rest = elem % (mm * r);
                reg_flips.push((tid, rest / mm, rest % mm, bit));
            }
        }

        // --- Evaluation + per-column intra-thread fold -------------------
        // T reuses the A tile buffer the final `compute_ktile` is NOT
        // still reading in this epoch (see `fused.rs`): that compute
        // reads `a[(tiles−1) % 2]`, so T parks in `a[tiles % 2]`.
        let tiles = geo.tiles(self.shape.k);
        let t_off = SmemMap::for_geometry(geo).a[tiles % 2];
        // gamma[(tid·r + col)·micro_m + row]
        let mut gamma = vec![0.0f32; if M::FUNCTIONAL { threads * mm * r } else { 0 }];
        let mut gamma_clean_xor = 0u32;
        let mut gamma_parked_xor = 0u32;
        let mut t_store_xor = 0u32;
        let (cm, cn) = (mm / 4, mn / 4);
        for wp in 0..warps {
            mach.begin_warp(wp as u32);
            mach.alu(2);
            let row0 = |lane: usize| (rpw * wp + lane / txn) * mm;
            let col0 = |lane: usize| (lane % txn) * mn;
            let mut a2_chunks = vec![[[0.0f32; 4]; 32]; cm];
            for (chunk, dst) in a2_chunks.iter_mut().enumerate() {
                let idx: WarpIdx =
                    std::array::from_fn(|lane| Some(by * geo.block_m + row0(lane) + 4 * chunk));
                let v = mach.ld_global(self.a2, &idx, VecWidth::V4);
                if M::FUNCTIONAL {
                    *dst = v;
                }
            }
            let mut b2_chunks = vec![[[0.0f32; 4]; 32]; cn];
            for (chunk, dst) in b2_chunks.iter_mut().enumerate() {
                let idx: WarpIdx =
                    std::array::from_fn(|lane| Some(bx * geo.block_n + col0(lane) + 4 * chunk));
                let v = mach.ld_global(self.b2, &idx, VecWidth::V4);
                if M::FUNCTIONAL {
                    *dst = v;
                }
            }
            // Stage all R weight slices (column-major: column c at
            // offset c·N).
            let mut w_chunks = vec![vec![[[0.0f32; 4]; 32]; cn]; r];
            for (c, col_chunks) in w_chunks.iter_mut().enumerate() {
                for (chunk, dst) in col_chunks.iter_mut().enumerate() {
                    let idx: WarpIdx = std::array::from_fn(|lane| {
                        Some(c * n + bx * geo.block_n + col0(lane) + 4 * chunk)
                    });
                    let v = mach.ld_global(self.w, &idx, VecWidth::V4);
                    if M::FUNCTIONAL {
                        *dst = v;
                    }
                }
            }

            // Evaluation once; fold R times.
            let elems = (mm * mn) as u64;
            mach.falu(elems);
            mach.ffma(2 * elems);
            mach.sfu(elems);
            mach.ffma(elems * r as u64);
            if M::FUNCTIONAL {
                for lane in 0..32 {
                    let tid = wp * 32 + lane;
                    let a2row: [f32; MAX_MICRO] = std::array::from_fn(|i| {
                        if i < mm {
                            a2_chunks[i / 4][lane][i % 4]
                        } else {
                            0.0
                        }
                    });
                    let b2col: [f32; MAX_MICRO] = std::array::from_fn(|c| {
                        if c < mn {
                            b2_chunks[c / 4][lane][c % 4]
                        } else {
                            0.0
                        }
                    });
                    for row in 0..mm {
                        for cc in 0..mn {
                            let d = a2row[row] + b2col[cc] - 2.0 * acc.at(tid, row, cc);
                            let kv = gaussian(d, s);
                            for c in 0..r {
                                let wv = w_chunks[c][cc / 4][lane][cc % 4];
                                gamma[(tid * r + c) * mm + row] += kv * wv;
                            }
                        }
                    }
                }
            }

            if self.verify.is_some() {
                // DMR on the R folds (see the single-weight kernel).
                mach.ffma(elems * r as u64);
                mach.falu(mm as u64);
                if M::FUNCTIONAL {
                    for lane in 0..32 {
                        let tid = wp * 32 + lane;
                        for g in &gamma[tid * r * mm..(tid + 1) * r * mm] {
                            gamma_clean_xor ^= g.to_bits();
                        }
                    }
                }
            }
            if M::FUNCTIONAL {
                for &(tid, col, row, bit) in reg_flips.iter().filter(|f| f.0 / 32 == wp) {
                    let idx = (tid * r + col) * mm + row;
                    gamma[idx] = flip_bit(gamma[idx], bit);
                }
                if self.verify.is_some() {
                    for lane in 0..32 {
                        let tid = wp * 32 + lane;
                        for g in &gamma[tid * r * mm..(tid + 1) * r * mm] {
                            gamma_parked_xor ^= g.to_bits();
                        }
                    }
                }
            }

            // Intra-block shuffle reduction per column.
            let shuffle_ops = (txn.trailing_zeros() as u64) * (mm * r) as u64;
            mach.alu(shuffle_ops);
            mach.falu(shuffle_ops);
            // T scratch: column c parks at word offset t_off + c·block_m.
            for c in 0..r {
                let t_base: [Option<u32>; 32] = std::array::from_fn(|lane| {
                    (lane % txn == 0).then_some(t_off + (c * geo.block_m + row0(lane)) as u32)
                });
                for row in 0..mm {
                    let words: [Option<u32>; 32] =
                        std::array::from_fn(|lane| t_base[lane].map(|b| b + row as u32));
                    let mut vals = [[0.0f32; 4]; 32];
                    if M::FUNCTIONAL {
                        for h in 0..rpw {
                            let mut sum = 0.0f32;
                            for tx in 0..txn {
                                let tid = wp * 32 + h * txn + tx;
                                sum += gamma[(tid * r + c) * mm + row];
                            }
                            vals[h * txn][0] = sum;
                            if self.verify.is_some() {
                                t_store_xor ^= sum.to_bits();
                            }
                        }
                    }
                    mach.st_shared(&words, VecWidth::V1, &vals);
                }
            }
        }
        mach.syncthreads(warps as u64);

        // --- Atomic drain, one coalesced pass per column -----------------
        let mut t_drain_xor = 0u32;
        let mut sigma = [0.0f32; MAX_WEIGHT_COLUMNS];
        for p in 0..geo.drain_phases() {
            mach.begin_warp((p % warps) as u32);
            for c in 0..r {
                let words: [Option<u32>; 32] = std::array::from_fn(|lane| {
                    Some(t_off + (c * geo.block_m + p * 32 + lane) as u32)
                });
                let t_vals = mach.ld_shared(&words, VecWidth::V1);
                let vidx: WarpIdx =
                    std::array::from_fn(|lane| Some(c * m + by * geo.block_m + p * 32 + lane));
                let lane_vals: [f32; 32] = std::array::from_fn(|lane| t_vals[lane][0]);
                if M::FUNCTIONAL && self.verify.is_some() {
                    for v in &lane_vals {
                        t_drain_xor ^= v.to_bits();
                        sigma[c] += v;
                    }
                }
                mach.atomic_add(self.v, &vidx, &lane_vals);
            }
        }

        // --- ABFT epilogue (see the single-weight kernel) ----------------
        if let Some(vb) = self.verify {
            corrupt |= gamma_clean_xor != gamma_parked_xor;
            corrupt |= t_store_xor != t_drain_xor;
            let gy = m / geo.block_m;
            mach.begin_warp(0);
            mach.falu(2);
            // One atomic with R active lanes: lane c updates the slot
            // of (column c, row group by) — distinct sectors.
            let cidx: WarpIdx = std::array::from_fn(|lane| {
                (lane < r).then_some((lane * gy + by) * CHECKSUM_SLOT_WORDS)
            });
            let mut cvals = [0.0f32; 32];
            cvals[..r].copy_from_slice(&sigma[..r]);
            mach.atomic_add(vb.checksum, &cidx, &cvals);
            let fidx: WarpIdx = std::array::from_fn(|lane| (lane == 0).then_some(0));
            let mut fvals = [0.0f32; 32];
            fvals[0] = if corrupt { 1.0 } else { 0.0 };
            mach.atomic_add(vb.flag, &fidx, &fvals);
        }
    }
}

impl Kernel for FusedMultiWeight {
    fn name(&self) -> String {
        let tag = if self.verify.is_some() { "_abft" } else { "" };
        let gtag = if self.geometry == TileGeometry::paper_default() {
            String::new()
        } else {
            let g = &self.geometry;
            format!(
                "_g{}x{}u{}x{}k{}d{}",
                g.block_m, g.block_n, g.micro_m, g.micro_n, g.tile_k, g.double_buffer_depth
            )
        };
        format!(
            "fused_multiw{}{tag}{gtag}_{}x{}x{}",
            self.r, self.shape.m, self.shape.n, self.shape.k
        )
    }

    fn launch_config(&self) -> LaunchConfig {
        let (gx, gy) = self.shape.grid_for(&self.geometry);
        LaunchConfig::new(
            Dim3::new_2d(gx, gy),
            Dim3::new_2d(
                self.geometry.threads_x() as u32,
                self.geometry.threads_y() as u32,
            ),
        )
    }

    fn resources(&self) -> KernelResources {
        KernelResources {
            threads_per_block: self.geometry.threads_per_block() as u32,
            regs_per_thread: self.geometry.regs_per_thread_multi(self.r).min(255),
            smem_bytes_per_block: SmemMap::for_geometry(&self.geometry).bytes(),
        }
    }

    fn timing_hints(&self) -> TimingHints {
        TimingHints {
            exec_model: ExecModel::CudaC,
            mlp: if self.geometry.double_buffer_depth == 2 {
                8.0
            } else {
                3.0
            },
        }
    }

    fn execute_block(&self, block: Dim3, ctx: &mut BlockCtx) {
        self.body(block, &mut FunctionalMachine::new(ctx));
    }

    fn block_traffic(&self, block: Dim3, sink: &mut TrafficSink) {
        self.body(block, &mut TrafficMachine::new(sink));
    }

    fn traffic_homogeneous(&self) -> bool {
        true
    }

    fn access_spec(&self) -> Option<AccessSpec> {
        let geo = &self.geometry;
        let (mm, mn) = (geo.micro_m, geo.micro_n);
        let txn = geo.threads_x();
        let rpw = geo.rows_per_warp();
        let warps = geo.warps_per_block();
        let mut spec = AccessSpec::default();
        gemm_access_spec(
            &mut spec,
            geo,
            &self.ops,
            &self.shape,
            SmemLayout::Swizzled,
            self.verify.is_some(),
        );
        let (n, m, r) = (self.shape.n, self.shape.m, self.r);
        let tiles = geo.tiles(self.shape.k);
        let t_off = SmemMap::for_geometry(geo).a[tiles % 2];
        let (cm, cn) = (mm / 4, mn / 4);
        for wp in 0..warps {
            let row = |lane: usize| ((rpw * wp + lane / txn) * mm) as i64;
            let col = |lane: usize| ((lane % txn) * mn) as i64;
            for chunk in 0..cm {
                spec.global.push(
                    GlobalPattern::new(
                        self.a2,
                        "a2",
                        AccessDir::Read,
                        VecWidth::V4,
                        affine_lanes(|lane| row(lane) + 4 * chunk as i64),
                    )
                    .with_by(geo.block_m as i64),
                );
            }
            for chunk in 0..cn {
                spec.global.push(
                    GlobalPattern::new(
                        self.b2,
                        "b2",
                        AccessDir::Read,
                        VecWidth::V4,
                        affine_lanes(|lane| col(lane) + 4 * chunk as i64),
                    )
                    .with_bx(geo.block_n as i64),
                );
            }
            // Column-major weight slices: column c at offset c·N.
            for c in 0..r {
                for chunk in 0..cn {
                    spec.global.push(
                        GlobalPattern::new(
                            self.w,
                            "w",
                            AccessDir::Read,
                            VecWidth::V4,
                            affine_lanes(|lane| (c * n) as i64 + col(lane) + 4 * chunk as i64),
                        )
                        .with_bx(geo.block_n as i64),
                    );
                }
            }
            for c in 0..r {
                for row_w in 0..mm {
                    let words: [Option<u32>; 32] = std::array::from_fn(|lane| {
                        (lane % txn == 0).then_some(
                            t_off + (c * geo.block_m) as u32 + row(lane) as u32 + row_w as u32,
                        )
                    });
                    spec.shared
                        .push(SharedPattern::new(words, VecWidth::V1, AccessDir::Write));
                }
            }
        }
        for p in 0..geo.drain_phases() {
            for c in 0..r {
                let words: [Option<u32>; 32] = std::array::from_fn(|lane| {
                    Some(t_off + (c * geo.block_m + p * 32 + lane) as u32)
                });
                spec.shared
                    .push(SharedPattern::new(words, VecWidth::V1, AccessDir::Read));
                spec.global.push(
                    GlobalPattern::new(
                        self.v,
                        "v",
                        AccessDir::Atomic,
                        VecWidth::V1,
                        affine_lanes(|lane| (c * m + p * 32 + lane) as i64),
                    )
                    .with_by(geo.block_m as i64),
                );
            }
        }
        if let Some(vb) = self.verify {
            let gy = m / geo.block_m;
            spec.global.push(
                GlobalPattern::new(
                    vb.checksum,
                    "chk",
                    AccessDir::Atomic,
                    VecWidth::V1,
                    masked_lanes(|lane| {
                        (lane < r).then_some((lane * gy * CHECKSUM_SLOT_WORDS) as i64)
                    }),
                )
                .with_by(CHECKSUM_SLOT_WORDS as i64),
            );
            spec.global.push(GlobalPattern::new(
                vb.flag,
                "flag",
                AccessDir::Atomic,
                VecWidth::V1,
                masked_lanes(|lane| (lane == 0).then_some(0)),
            ));
        }
        spec.barriers = Some(BarrierSpec {
            count: syncs_per_block(geo, self.shape.k) + 1,
            warps: warps as u64,
        });
        Some(spec)
    }

    fn block_class(&self, block: Dim3) -> Option<BlockClass> {
        // Same affine structure as the single-weight kernel: the
        // column-major weight reads (c·n + bx·block_n + …) and atomic
        // drains (c·m + by·block_m + …) shift with bx·block_n /
        // by·block_m; the c·n / c·m column offsets are
        // block-independent.
        let (bx, by) = (block.x as usize, block.y as usize);
        let geo = &self.geometry;
        let mut anchors = vec![
            (self.ops.a, by * geo.block_m * self.shape.k),
            (self.ops.b, bx * geo.block_n * self.shape.k),
            (self.a2, by * geo.block_m),
            (self.b2, bx * geo.block_n),
            (self.w, bx * geo.block_n),
            (self.v, by * geo.block_m),
        ];
        if let Some(vb) = self.verify {
            // Checksum slots shift by one sector-aligned slot per row
            // group (the c·gy·8 column offsets are block-invariant,
            // like the w/v column offsets above); the flag never moves.
            anchors.push((vb.checksum, by * CHECKSUM_SLOT_WORDS));
            anchors.push((vb.flag, 0));
        }
        Some(BlockClass { key: 0, anchors })
    }

    fn analysis_budget(&self) -> AnalysisBudget {
        let (m, n, k) = (self.shape.m, self.shape.n, self.shape.k);
        let mut extra = Vec::new();
        if let Some(vb) = self.verify {
            extra.push(BufferUse {
                buf: vb.checksum,
                len: self.r * (m / self.geometry.block_m) * CHECKSUM_SLOT_WORDS,
                writes: true,
                label: "chk",
            });
            extra.push(BufferUse {
                buf: vb.flag,
                len: CHECKSUM_SLOT_WORDS,
                writes: true,
                label: "flag",
            });
        }
        // §III-A register economy, computed from the geometry: at the
        // paper point R ≥ 2 exceeds 128 regs/thread and halves
        // occupancy to one block per SM.
        let occ = ks_gpu_sim::occupancy::occupancy(&DeviceConfig::gtx970(), &self.resources());
        AnalysisBudget {
            smem_conflict_budget: 0,
            expected_blocks_per_sm: Some(occ.blocks_per_sm),
            expected_limiter: Some(occ.limiter),
            buffers: vec![
                BufferUse {
                    buf: self.ops.a,
                    len: m * k,
                    writes: false,
                    label: "a",
                },
                BufferUse {
                    buf: self.ops.b,
                    len: k * n,
                    writes: false,
                    label: "b",
                },
                BufferUse {
                    buf: self.a2,
                    len: m,
                    writes: false,
                    label: "a2",
                },
                BufferUse {
                    buf: self.b2,
                    len: n,
                    writes: false,
                    label: "b2",
                },
                BufferUse {
                    buf: self.w,
                    len: n * self.r,
                    writes: false,
                    label: "w",
                },
                BufferUse {
                    buf: self.v,
                    len: m * self.r,
                    writes: true,
                    label: "v",
                },
            ]
            .into_iter()
            .chain(extra)
            .collect(),
        }
    }
}

/// Label under which served batches appear in profiles and metrics.
pub const FUSED_MULTI_PIPELINE: &str = "Fused-Multi";

/// Pipeline label of the ABFT-verified serving path.
pub const FUSED_MULTI_VERIFIED_PIPELINE: &str = "Fused-Multi-ABFT";

/// Batched serving entry: runs the multi-weight pipeline end to end on
/// `dev` — `norms(B)`, `norms(A)` **unless** precomputed row norms are
/// supplied (the plan-cache hit path uploads them instead of
/// relaunching the kernel), then the fused multi-weight kernel — and
/// returns the `M×R` column-major result plus the pipeline profile.
///
/// `w_cols` is `N×R` column-major (column `c` of query `c` contiguous
/// at offset `c·N`); the result places query `c` at `c·M..c·M+M`.
///
/// # Errors
/// Propagates launch-validation failures from any kernel.
///
/// # Panics
/// Panics if the shape violates the tiling constraints, buffer
/// lengths disagree with the shape, `w_cols` is not a whole number of
/// columns, or the column count is outside `1..=MAX_WEIGHT_COLUMNS`.
pub fn execute_fused_multi(
    dev: &mut GpuDevice,
    shape: GemmShape,
    h: f32,
    a: &[f32],
    b: &[f32],
    w_cols: &[f32],
    a2: Option<&[f32]>,
) -> Result<(Vec<f32>, PipelineProfile), LaunchError> {
    execute_fused_multi_with(
        dev,
        &TileGeometry::paper_default(),
        shape,
        h,
        a,
        b,
        w_cols,
        a2,
    )
}

/// [`execute_fused_multi`] at an explicit tile geometry (the tuned
/// serving path).
///
/// # Errors
/// Propagates launch-validation failures from any kernel.
///
/// # Panics
/// As [`execute_fused_multi`]; additionally if the shape does not
/// divide `geometry` or the column count exceeds its `tile_k`.
#[allow(clippy::too_many_arguments)]
pub fn execute_fused_multi_with(
    dev: &mut GpuDevice,
    geometry: &TileGeometry,
    shape: GemmShape,
    h: f32,
    a: &[f32],
    b: &[f32],
    w_cols: &[f32],
    a2: Option<&[f32]>,
) -> Result<(Vec<f32>, PipelineProfile), LaunchError> {
    let (v, prof, _) = execute_fused_multi_inner(dev, geometry, shape, h, a, b, w_cols, a2, false)?;
    Ok((v, prof))
}

/// [`execute_fused_multi`] with ABFT verification enabled: the fused
/// kernel runs in its checksum-augmented variant and the host compares
/// the per-row-group checksum column against `V` before returning.
/// The returned [`VerifyReport`] says whether any corruption was
/// detected; the result vector must not be used when it was.
///
/// # Errors
/// Propagates launch-validation failures and injected launch-level
/// faults from any kernel.
///
/// # Panics
/// As [`execute_fused_multi`].
pub fn execute_fused_multi_verified(
    dev: &mut GpuDevice,
    shape: GemmShape,
    h: f32,
    a: &[f32],
    b: &[f32],
    w_cols: &[f32],
    a2: Option<&[f32]>,
) -> Result<(Vec<f32>, PipelineProfile, VerifyReport), LaunchError> {
    execute_fused_multi_verified_with(
        dev,
        &TileGeometry::paper_default(),
        shape,
        h,
        a,
        b,
        w_cols,
        a2,
    )
}

/// [`execute_fused_multi_verified`] at an explicit tile geometry.
///
/// # Errors
/// Propagates launch-validation failures and injected launch-level
/// faults from any kernel.
///
/// # Panics
/// As [`execute_fused_multi_with`].
#[allow(clippy::too_many_arguments)]
pub fn execute_fused_multi_verified_with(
    dev: &mut GpuDevice,
    geometry: &TileGeometry,
    shape: GemmShape,
    h: f32,
    a: &[f32],
    b: &[f32],
    w_cols: &[f32],
    a2: Option<&[f32]>,
) -> Result<(Vec<f32>, PipelineProfile, VerifyReport), LaunchError> {
    let (v, prof, report) =
        execute_fused_multi_inner(dev, geometry, shape, h, a, b, w_cols, a2, true)?;
    Ok((
        v,
        prof,
        report.expect("verified path always builds a report"),
    ))
}

#[allow(clippy::too_many_arguments)]
fn execute_fused_multi_inner(
    dev: &mut GpuDevice,
    geometry: &TileGeometry,
    shape: GemmShape,
    h: f32,
    a: &[f32],
    b: &[f32],
    w_cols: &[f32],
    a2: Option<&[f32]>,
    verify: bool,
) -> Result<(Vec<f32>, PipelineProfile, Option<VerifyReport>), LaunchError> {
    shape.validate_for(geometry);
    let (m, n, k) = (shape.m, shape.n, shape.k);
    assert_eq!(a.len(), m * k, "A must be M·K elements");
    assert_eq!(b.len(), k * n, "B must be K·N elements");
    assert_eq!(w_cols.len() % n, 0, "W must be a whole number of columns");
    let r = w_cols.len() / n;
    if let Some(norms) = a2 {
        assert_eq!(norms.len(), m, "precomputed row norms must be M elements");
    }
    let bw = Bandwidth { h };
    let _ = bw.inv_2h2(); // validates h

    let ops = GemmOperands {
        a: dev.upload(a),
        b: dev.upload(b),
    };
    let a2_buf = match a2 {
        Some(norms) => dev.upload(norms),
        None => dev.alloc(m),
    };
    let b2_buf = dev.alloc(n);
    let w_buf = dev.upload(w_cols);
    let v_buf = dev.alloc(m * r);
    let verify_bufs = verify.then(|| {
        let checksum = dev.alloc(r * (m / geometry.block_m) * CHECKSUM_SLOT_WORDS);
        let flag = dev.alloc(CHECKSUM_SLOT_WORDS);
        VerifyBufs { checksum, flag }
    });
    dev.invalidate_l2();
    dev.memset_zero(v_buf); // cudaMemset before the atomic reduction
    if let Some(vb) = verify_bufs {
        dev.memset_zero(vb.checksum);
        dev.memset_zero(vb.flag);
    }

    let mut kernels: Vec<Box<dyn Kernel>> = Vec::with_capacity(3);
    if a2.is_none() {
        kernels.push(Box::new(NormsKernel::new(ops.a, a2_buf, m, k, "a")));
    }
    kernels.push(Box::new(NormsKernel::new(ops.b, b2_buf, n, k, "b")));
    let mut fused = FusedMultiWeight::new(ops, a2_buf, b2_buf, w_buf, v_buf, shape, bw, r)
        .with_geometry(*geometry);
    if let Some(vb) = verify_bufs {
        fused = fused.with_verify(vb);
    }
    kernels.push(Box::new(fused));

    let mut prof = PipelineProfile::new(if verify {
        FUSED_MULTI_VERIFIED_PIPELINE
    } else {
        FUSED_MULTI_PIPELINE
    });
    for kern in kernels {
        let mut kp = dev.launch(kern.as_ref())?;
        dev.run(kern.as_ref())?;
        // The launch replay schedules upsets; the functional run
        // applies them — fold the applied tally into the profile.
        kp.faults.merge(&dev.take_fault_counters());
        prof.kernels.push(kp);
    }
    let v = dev.download(v_buf);
    let report = verify_bufs.map(|vb| {
        VerifyReport::from_outputs(
            &v,
            &dev.download(vb.checksum),
            &dev.download(vb.flag),
            m,
            r,
            geometry.block_m,
        )
    });
    Ok((v, prof, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ks_gpu_sim::GpuDevice;

    fn lcg(seed: u64) -> impl FnMut() -> f32 {
        let mut state = seed | 1;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) * 0.5
        }
    }

    struct Setup {
        dev: GpuDevice,
        a: Vec<f32>,
        b: Vec<f32>,
        w: Vec<f32>,
        kern_inputs: (GemmOperands, BufId, BufId, BufId, BufId),
        shape: GemmShape,
        bw: Bandwidth,
        r: usize,
    }

    fn setup(shape: GemmShape, r: usize, seed: u64) -> Setup {
        let mut next = lcg(seed);
        let a: Vec<f32> = (0..shape.m * shape.k).map(|_| next()).collect();
        let b: Vec<f32> = (0..shape.k * shape.n).map(|_| next()).collect();
        let w: Vec<f32> = (0..shape.n * r).map(|_| next()).collect();
        let a2: Vec<f32> = (0..shape.m)
            .map(|i| {
                a[i * shape.k..(i + 1) * shape.k]
                    .iter()
                    .map(|v| v * v)
                    .sum()
            })
            .collect();
        let b2: Vec<f32> = (0..shape.n)
            .map(|j| {
                b[j * shape.k..(j + 1) * shape.k]
                    .iter()
                    .map(|v| v * v)
                    .sum()
            })
            .collect();
        let mut dev = GpuDevice::gtx970();
        let ops = GemmOperands {
            a: dev.upload(&a),
            b: dev.upload(&b),
        };
        let (ba2, bb2) = (dev.upload(&a2), dev.upload(&b2));
        let bw_buf = dev.upload(&w);
        let bv = dev.alloc(shape.m * r);
        Setup {
            dev,
            a,
            b,
            w,
            kern_inputs: (ops, ba2, bb2, bw_buf, bv),
            shape,
            bw: Bandwidth { h: 1.0 },
            r,
        }
    }

    fn reference(s: &Setup) -> Vec<f32> {
        let scale = s.bw.inv_2h2() as f64;
        let (m, n, k) = (s.shape.m, s.shape.n, s.shape.k);
        let mut out = vec![0.0f32; m * s.r];
        for c in 0..s.r {
            for i in 0..m {
                let mut acc = 0.0f64;
                for j in 0..n {
                    let d: f64 = (0..k)
                        .map(|t| (s.a[i * k + t] as f64 - s.b[j * k + t] as f64).powi(2))
                        .sum();
                    acc += (-d * scale).exp() * s.w[c * n + j] as f64;
                }
                out[c * m + i] = acc as f32;
            }
        }
        out
    }

    #[test]
    fn functional_matches_reference_for_r2_and_r4() {
        for r in [2usize, 4] {
            let mut s = setup(
                GemmShape {
                    m: 128,
                    n: 256,
                    k: 16,
                },
                r,
                7 + r as u64,
            );
            let (ops, a2, b2, w, v) = s.kern_inputs;
            let kern = FusedMultiWeight::new(ops, a2, b2, w, v, s.shape, s.bw, r);
            s.dev.run(&kern).unwrap();
            let got = s.dev.download(v);
            let want = reference(&s);
            for (i, (g, x)) in got.iter().zip(want.iter()).enumerate() {
                assert!(
                    (g - x).abs() < 3e-3 * x.abs().max(1.0),
                    "r={r} idx {i}: {g} vs {x}"
                );
            }
        }
    }

    #[test]
    fn r1_matches_the_single_weight_kernel() {
        let mut s = setup(
            GemmShape {
                m: 128,
                n: 128,
                k: 16,
            },
            1,
            21,
        );
        let (ops, a2, b2, w, v) = s.kern_inputs;
        s.dev
            .run(&FusedMultiWeight::new(ops, a2, b2, w, v, s.shape, s.bw, 1))
            .unwrap();
        let multi = s.dev.download(v);
        let v2 = s.dev.alloc(s.shape.m);
        s.dev
            .run(&crate::fused::FusedKernelSummation::new(
                ops, a2, b2, w, v2, s.shape, s.bw,
            ))
            .unwrap();
        let single = s.dev.download(v2);
        for (a, b) in multi.iter().zip(single.iter()) {
            assert!((a - b).abs() < 1e-4 * a.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn non_default_geometry_matches_the_multi_oracle_bit_for_bit() {
        let (mr, nr, kr, r) = (128usize, 128usize, 16usize, 2usize);
        let shape = GemmShape {
            m: mr,
            n: nr,
            k: kr,
        };
        let s = setup(shape, r, 77);
        let a2: Vec<f32> = (0..mr)
            .map(|i| s.a[i * kr..(i + 1) * kr].iter().map(|v| v * v).sum())
            .collect();
        let b2: Vec<f32> = (0..nr)
            .map(|j| s.b[j * kr..(j + 1) * kr].iter().map(|v| v * v).sum())
            .collect();
        let geo = TileGeometry {
            block_m: 64,
            block_n: 64,
            ..TileGeometry::paper_default()
        };
        let mut dev = GpuDevice::gtx970();
        let ops = GemmOperands {
            a: dev.upload(&s.a),
            b: dev.upload(&s.b),
        };
        let (ba2, bb2) = (dev.upload(&a2), dev.upload(&b2));
        let bw_buf = dev.upload(&s.w);
        let bv = dev.alloc(mr * r);
        dev.run_counted(
            &FusedMultiWeight::new(ops, ba2, bb2, bw_buf, bv, shape, s.bw, r).with_geometry(geo),
        )
        .unwrap();
        let got = dev.download(bv);
        let want = crate::oracle::fused_multi_oracle(
            &geo, &s.a, &s.b, &a2, &b2, &s.w, mr, nr, kr, s.bw.h, r,
        );
        for (i, (g, x)) in got.iter().zip(want.iter()).enumerate() {
            assert_eq!(g.to_bits(), x.to_bits(), "idx {i}: {g} vs {x}");
        }
    }

    #[test]
    fn extra_columns_halve_occupancy() {
        // §III-A register economy: R = 2 needs >128 regs/thread and
        // drops to one block per SM.
        let mut s = setup(
            GemmShape {
                m: 128,
                n: 128,
                k: 8,
            },
            2,
            31,
        );
        let (ops, a2, b2, w, v) = s.kern_inputs;
        let p = s
            .dev
            .launch(&FusedMultiWeight::new(ops, a2, b2, w, v, s.shape, s.bw, 2))
            .unwrap();
        assert_eq!(p.occupancy.blocks_per_sm, 1);
    }

    #[test]
    fn multi_weight_beats_repeated_single_weight_runs() {
        // The whole point: folding R columns into one pass costs far
        // less than R full fused passes (each redoing the GEMM).
        let r = 4usize;
        let shape = GemmShape {
            m: 4096,
            n: 1024,
            k: 64,
        };
        let multi_time = {
            let mut dev = GpuDevice::gtx970();
            let ops = GemmOperands {
                a: dev.alloc_virtual(shape.m * shape.k),
                b: dev.alloc_virtual(shape.k * shape.n),
            };
            let (a2, b2) = (dev.alloc_virtual(shape.m), dev.alloc_virtual(shape.n));
            let w = dev.alloc_virtual(shape.n * r);
            let v = dev.alloc_virtual(shape.m * r);
            let p = dev
                .launch(&FusedMultiWeight::new(
                    ops,
                    a2,
                    b2,
                    w,
                    v,
                    shape,
                    Bandwidth { h: 1.0 },
                    r,
                ))
                .unwrap();
            p.timing.time_s
        };
        let single_time = {
            let mut dev = GpuDevice::gtx970();
            let ops = GemmOperands {
                a: dev.alloc_virtual(shape.m * shape.k),
                b: dev.alloc_virtual(shape.k * shape.n),
            };
            let (a2, b2) = (dev.alloc_virtual(shape.m), dev.alloc_virtual(shape.n));
            let w = dev.alloc_virtual(shape.n);
            let v = dev.alloc_virtual(shape.m);
            let p = dev
                .launch(&crate::fused::FusedKernelSummation::new(
                    ops,
                    a2,
                    b2,
                    w,
                    v,
                    shape,
                    Bandwidth { h: 1.0 },
                ))
                .unwrap();
            p.timing.time_s
        };
        assert!(
            multi_time < 0.5 * r as f64 * single_time,
            "multi {multi_time} vs {r}x single {}",
            r as f64 * single_time
        );
    }

    #[test]
    fn batched_entry_matches_reference_and_profiles_every_kernel() {
        let shape = GemmShape {
            m: 128,
            n: 256,
            k: 16,
        };
        let s = setup(shape, 3, 91);
        let mut dev = GpuDevice::gtx970();
        let (got, prof) =
            execute_fused_multi(&mut dev, shape, 1.0, &s.a, &s.b, &s.w, None).unwrap();
        assert_eq!(prof.name, FUSED_MULTI_PIPELINE);
        assert_eq!(prof.kernels.len(), 3, "norms(A), norms(B), fused-multi");
        let want = reference(&s);
        for (i, (g, x)) in got.iter().zip(want.iter()).enumerate() {
            assert!(
                (g - x).abs() < 3e-3 * x.abs().max(1.0),
                "idx {i}: {g} vs {x}"
            );
        }
    }

    #[test]
    fn precomputed_norms_skip_a_kernel_and_save_dram() {
        // The DRAM saving shows up when the corpus does not stay
        // L2-resident between the norms pass and the fused pass — the
        // production-serving regime. Model inter-request cache
        // pressure with a 64 KB effective L2 (A alone is 128 KB).
        let small_l2 = || {
            let mut cfg = ks_gpu_sim::config::DeviceConfig::gtx970();
            cfg.l2_bytes = 64 * 1024;
            GpuDevice::new(cfg)
        };
        let shape = GemmShape {
            m: 1024,
            n: 128,
            k: 32,
        };
        let s = setup(shape, 2, 101);
        let a2: Vec<f32> = (0..shape.m)
            .map(|i| {
                s.a[i * shape.k..(i + 1) * shape.k]
                    .iter()
                    .map(|v| v * v)
                    .sum()
            })
            .collect();
        let mut d_cold = small_l2();
        let (v_cold, p_cold) =
            execute_fused_multi(&mut d_cold, shape, 1.0, &s.a, &s.b, &s.w, None).unwrap();
        let mut d_hit = small_l2();
        let (v_hit, p_hit) =
            execute_fused_multi(&mut d_hit, shape, 1.0, &s.a, &s.b, &s.w, Some(&a2)).unwrap();
        assert_eq!(p_cold.kernels.len(), 3);
        assert_eq!(p_hit.kernels.len(), 2, "norms(A) skipped on a plan hit");
        assert!(
            p_hit.total_mem().dram_transactions() < p_cold.total_mem().dram_transactions(),
            "plan reuse must save DRAM: {} vs {}",
            p_hit.total_mem().dram_transactions(),
            p_cold.total_mem().dram_transactions()
        );
        for (i, (a, b)) in v_cold.iter().zip(v_hit.iter()).enumerate() {
            assert!(
                (a - b).abs() < 2e-3 * a.abs().max(1.0),
                "idx {i}: {a} vs {b}"
            );
        }
    }

    // ---- ABFT verification -------------------------------------------

    use ks_gpu_sim::{DeviceConfig, FaultSpec};

    fn faulty_device(spec: &str, seed: u64) -> GpuDevice {
        let mut fs = FaultSpec::parse(spec).expect("valid fault spec");
        fs.seed = seed;
        let mut cfg = DeviceConfig::gtx970();
        cfg.fault = Some(fs);
        GpuDevice::new(cfg)
    }

    #[test]
    fn verified_entry_matches_unverified_and_reports_clean() {
        let shape = GemmShape {
            m: 128,
            n: 256,
            k: 16,
        };
        let s = setup(shape, 3, 92);
        let mut d1 = GpuDevice::gtx970();
        let (plain, _) = execute_fused_multi(&mut d1, shape, 1.0, &s.a, &s.b, &s.w, None).unwrap();
        let mut d2 = GpuDevice::gtx970();
        let (got, prof, report) =
            execute_fused_multi_verified(&mut d2, shape, 1.0, &s.a, &s.b, &s.w, None).unwrap();
        assert_eq!(prof.name, FUSED_MULTI_VERIFIED_PIPELINE);
        assert_eq!(prof.kernels.len(), 3);
        assert!(
            prof.kernels[2].name.contains("_abft"),
            "{}",
            prof.kernels[2].name
        );
        assert!(!report.corruption_detected(), "{report:?}");
        assert_eq!(report.checksum_groups, 3 * (shape.m / 128));
        for (g, p) in got.iter().zip(plain.iter()) {
            assert!((g - p).abs() < 1e-4 * p.abs().max(1.0), "{g} vs {p}");
        }
    }

    /// In-flight fault sweep over the batched verified entry. With
    /// `n = 256` only two blocks atomically fold into each `V` row, so
    /// the parallel `run` stays bit-deterministic (two-operand float
    /// addition is commutative) and the baseline comparison is exact.
    #[test]
    fn verified_entry_flags_injected_faults() {
        let shape = GemmShape {
            m: 256,
            n: 256,
            k: 32,
        };
        let s = setup(shape, 2, 93);
        let mut clean = GpuDevice::gtx970();
        let (base, _, clean_report) =
            execute_fused_multi_verified(&mut clean, shape, 1.0, &s.a, &s.b, &s.w, None).unwrap();
        assert!(!clean_report.corruption_detected());

        let mut corrupted = 0u32;
        let mut injected_total = 0u64;
        for seed in 0..10u64 {
            let mut dev = faulty_device("smem=3,reg=2", seed);
            let (got, prof, report) =
                execute_fused_multi_verified(&mut dev, shape, 1.0, &s.a, &s.b, &s.w, None).unwrap();
            let injected: u64 = prof
                .kernels
                .iter()
                .map(|k| k.faults.smem_flips + k.faults.reg_flips)
                .sum();
            injected_total += injected;
            let changed = got
                .iter()
                .zip(base.iter())
                .any(|(g, b)| g.to_bits() != b.to_bits());
            if changed {
                corrupted += 1;
                assert!(
                    report.blocks_flagged > 0,
                    "seed {seed}: silent corruption ({injected} flips applied)"
                );
            }
        }
        assert!(injected_total > 0, "no faults were applied");
        assert!(corrupted >= 1, "no seed corrupted V — sweep is vacuous");
    }

    #[test]
    fn multi_verification_adds_at_most_two_percent_dram_traffic() {
        let r = 4usize;
        let shape = GemmShape {
            m: 4096,
            n: 1024,
            k: 32,
        };
        let launch = |verify: bool| {
            let mut dev = GpuDevice::gtx970();
            let ops = GemmOperands {
                a: dev.alloc_virtual(shape.m * shape.k),
                b: dev.alloc_virtual(shape.k * shape.n),
            };
            let (a2, b2) = (dev.alloc_virtual(shape.m), dev.alloc_virtual(shape.n));
            let w = dev.alloc_virtual(shape.n * r);
            let v = dev.alloc_virtual(shape.m * r);
            let mut kern = FusedMultiWeight::new(ops, a2, b2, w, v, shape, Bandwidth { h: 1.0 }, r);
            if verify {
                kern = kern.with_verify(crate::fused::VerifyBufs {
                    checksum: dev.alloc_virtual(r * (shape.m / 128) * CHECKSUM_SLOT_WORDS),
                    flag: dev.alloc_virtual(CHECKSUM_SLOT_WORDS),
                });
            }
            dev.launch(&kern).unwrap()
        };
        let plain = launch(false);
        let verified = launch(true);
        let ratio = verified.mem.dram_transactions() as f64 / plain.mem.dram_transactions() as f64;
        assert!(
            (1.0..=1.02).contains(&ratio),
            "verified/plain DRAM ratio {ratio}"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_too_many_columns() {
        let mut dev = GpuDevice::gtx970();
        let shape = GemmShape {
            m: 128,
            n: 128,
            k: 8,
        };
        let ops = GemmOperands {
            a: dev.alloc_virtual(128 * 8),
            b: dev.alloc_virtual(8 * 128),
        };
        let (a2, b2, w, v) = (
            dev.alloc_virtual(128),
            dev.alloc_virtual(128),
            dev.alloc_virtual(128 * 9),
            dev.alloc_virtual(128 * 9),
        );
        let _ = FusedMultiWeight::new(ops, a2, b2, w, v, shape, Bandwidth { h: 1.0 }, 9);
    }

    #[test]
    #[should_panic(expected = "exceed the T scratch")]
    fn rejects_columns_beyond_the_geometry_scratch() {
        let mut dev = GpuDevice::gtx970();
        let shape = GemmShape {
            m: 128,
            n: 128,
            k: 8,
        };
        let ops = GemmOperands {
            a: dev.alloc_virtual(128 * 8),
            b: dev.alloc_virtual(8 * 128),
        };
        let (a2, b2, w, v) = (
            dev.alloc_virtual(128),
            dev.alloc_virtual(128),
            dev.alloc_virtual(128 * 6),
            dev.alloc_virtual(128 * 6),
        );
        let geo = TileGeometry {
            tile_k: 4,
            ..TileGeometry::paper_default()
        };
        let _ = FusedMultiWeight::new(ops, a2, b2, w, v, shape, Bandwidth { h: 1.0 }, 6)
            .with_geometry(geo);
    }
}
