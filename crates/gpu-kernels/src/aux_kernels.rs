//! The unfused pipeline stages (Algorithm 1 run as separate kernels).
//!
//! * [`NormsKernel`] — `vecα` / `vecβ`: squared norms of 128 points
//!   per block (lines 3–4).
//! * [`EvalSumKernel`] — the paper's "summation kernel": reads the
//!   GEMM output `C` back from global memory, applies the Gaussian
//!   (line 13) and reduces against `W` (line 16) in one pass. This is
//!   the *strong* unfused baseline: evaluation and GEMV are already
//!   fused with each other; only the GEMM is separate — matching the
//!   paper's two-kernel cuBLAS pipeline (§V-A, Table II note).
//! * [`EvalKernel`] / [`GemvKernel`] — the same work as two passes
//!   (materialising the `K` matrix), kept for the ablation bench that
//!   quantifies what eval/GEMV fusion alone buys.
//!
//! All kernels require `N % 128 == 0` (warps never straddle rows);
//! the paper fixes `N = 1024`.

use ks_gpu_sim::access::{affine_lanes, masked_lanes, AccessSpec, GlobalPattern};
use ks_gpu_sim::buffer::BufId;
use ks_gpu_sim::dim::{Dim3, LaunchConfig};
use ks_gpu_sim::exec::BlockCtx;
use ks_gpu_sim::kernel::VecWidth;
use ks_gpu_sim::kernel::{
    AnalysisBudget, BlockClass, BufferUse, ExecModel, Kernel, KernelResources, TimingHints,
};
use ks_gpu_sim::trace::AccessDir;
use ks_gpu_sim::traffic::{TrafficSink, WarpIdx};

use crate::machine::{FunctionalMachine, TrafficMachine, WarpMachine};

/// Gaussian-kernel scale `1 / (2h²)` packaged with the bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bandwidth {
    /// The paper's `h`.
    pub h: f32,
}

impl Bandwidth {
    /// `1 / (2h²)`.
    ///
    /// # Panics
    /// Panics if `h` is not finite-positive.
    #[must_use]
    pub fn inv_2h2(&self) -> f32 {
        assert!(
            self.h.is_finite() && self.h > 0.0,
            "bandwidth h must be positive, got {}",
            self.h
        );
        1.0 / (2.0 * self.h * self.h)
    }
}

/// Gaussian kernel value for a squared distance (shared by every
/// implementation so numerics agree bit-for-bit in the oracles).
#[inline]
#[must_use]
pub fn gaussian(dist_sq: f32, inv_2h2: f32) -> f32 {
    (-dist_sq * inv_2h2).exp()
}

// ---------------------------------------------------------------------------
// Norms
// ---------------------------------------------------------------------------

/// Squared norms of `n_points` points stored point-contiguously with
/// `dim` coordinates each (covers both A row-major and B col-major).
pub struct NormsKernel {
    points: BufId,
    out: BufId,
    n_points: usize,
    dim: usize,
    label: &'static str,
}

impl NormsKernel {
    /// Creates the kernel.
    ///
    /// # Panics
    /// Panics unless `n_points % 128 == 0` and `dim % 4 == 0`.
    #[must_use]
    pub fn new(
        points: BufId,
        out: BufId,
        n_points: usize,
        dim: usize,
        label: &'static str,
    ) -> Self {
        assert_eq!(
            n_points % 128,
            0,
            "n_points {n_points} must be a multiple of 128"
        );
        assert_eq!(dim % 4, 0, "dim {dim} must be a multiple of 4");
        Self {
            points,
            out,
            n_points,
            dim,
            label,
        }
    }

    fn body<M: WarpMachine>(&self, block: Dim3, mach: &mut M) {
        let base_point = block.x as usize * 128;
        for w in 0..4 {
            mach.begin_warp(w as u32);
            mach.alu(2);
            let mut acc = [0.0f32; 32];
            for j in (0..self.dim).step_by(4) {
                let idx: WarpIdx = std::array::from_fn(|lane| {
                    let p = base_point + w * 32 + lane;
                    Some(p * self.dim + j)
                });
                let v = mach.ld_global(self.points, &idx, VecWidth::V4);
                mach.ffma(4);
                if M::FUNCTIONAL {
                    for lane in 0..32 {
                        for x in v[lane] {
                            acc[lane] += x * x;
                        }
                    }
                }
            }
            let idx: WarpIdx = std::array::from_fn(|lane| Some(base_point + w * 32 + lane));
            let vals: [[f32; 4]; 32] = std::array::from_fn(|lane| [acc[lane], 0.0, 0.0, 0.0]);
            mach.st_global(self.out, &idx, VecWidth::V1, &vals);
        }
    }
}

impl Kernel for NormsKernel {
    fn name(&self) -> String {
        format!("norms_{}_{}x{}", self.label, self.n_points, self.dim)
    }

    fn launch_config(&self) -> LaunchConfig {
        LaunchConfig::new(Dim3::new_1d((self.n_points / 128) as u32), 128u32)
    }

    fn resources(&self) -> KernelResources {
        KernelResources {
            threads_per_block: 128,
            regs_per_thread: 24,
            smem_bytes_per_block: 0,
        }
    }

    fn timing_hints(&self) -> TimingHints {
        TimingHints {
            exec_model: ExecModel::CudaC,
            mlp: 8.0,
        }
    }

    fn execute_block(&self, block: Dim3, ctx: &mut BlockCtx) {
        self.body(block, &mut FunctionalMachine::new(ctx));
    }

    fn block_traffic(&self, block: Dim3, sink: &mut TrafficSink) {
        self.body(block, &mut TrafficMachine::new(sink));
    }

    fn traffic_homogeneous(&self) -> bool {
        true
    }

    fn access_spec(&self) -> Option<AccessSpec> {
        let mut spec = AccessSpec::default();
        let dim = self.dim;
        for w in 0..4usize {
            spec.global.push(
                GlobalPattern::new(
                    self.points,
                    "points",
                    AccessDir::Read,
                    VecWidth::V4,
                    affine_lanes(|lane| ((w * 32 + lane) * dim) as i64),
                )
                .with_bx((128 * dim) as i64)
                .with_loop(dim.div_ceil(4) as u64, 4),
            );
            spec.global.push(
                GlobalPattern::new(
                    self.out,
                    "norms",
                    AccessDir::Write,
                    VecWidth::V1,
                    affine_lanes(|lane| (w * 32 + lane) as i64),
                )
                .with_bx(128),
            );
        }
        Some(spec)
    }

    fn block_class(&self, block: Dim3) -> Option<BlockClass> {
        // Block x norms points [x·128, x·128+128): reads start at
        // x·128·dim, the output store at x·128.
        let b = block.x as usize;
        Some(BlockClass {
            key: 0,
            anchors: vec![(self.points, b * 128 * self.dim), (self.out, b * 128)],
        })
    }

    fn analysis_budget(&self) -> AnalysisBudget {
        AnalysisBudget {
            buffers: vec![
                BufferUse {
                    buf: self.points,
                    len: self.n_points * self.dim,
                    writes: false,
                    label: "points",
                },
                BufferUse {
                    buf: self.out,
                    len: self.n_points,
                    writes: true,
                    label: "norms",
                },
            ],
            ..AnalysisBudget::default()
        }
    }
}

// ---------------------------------------------------------------------------
// EvalSum (the unfused "summation kernel")
// ---------------------------------------------------------------------------

/// Row-wise evaluation + reduction: `V_i = Σ_j exp(−(‖α_i‖²+‖β_j‖²−2·C_ij)/(2h²)) · W_j`.
///
/// This is the paper's unfused "summation routine" baseline: the
/// *natural* CUDA implementation assigns **one thread per output row**
/// and walks the row of the row-major `C` serially. Threads of a warp
/// then read the same column of 32 different rows — each 4-byte load
/// touches its own 32-byte sector, an 8× L2-traffic amplification.
/// This is exactly the pathology behind the paper's Fig 2 (high L2
/// MPKI of the cuBLAS pipeline at small K): the un-tuned epilogue, not
/// the GEMM, floods the memory system. [`EvalSumCoalescedKernel`] is
/// the tuned warp-per-row version, kept as an ablation.
pub struct EvalSumKernel {
    c_mat: BufId,
    a2: BufId,
    b2: BufId,
    w: BufId,
    v: BufId,
    m: usize,
    n: usize,
    bw: Bandwidth,
}

impl EvalSumKernel {
    /// Creates the kernel. `c_mat` is M×N row-major.
    ///
    /// # Panics
    /// Panics unless `m % 128 == 0`.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        c_mat: BufId,
        a2: BufId,
        b2: BufId,
        w: BufId,
        v: BufId,
        m: usize,
        n: usize,
        bw: Bandwidth,
    ) -> Self {
        assert_eq!(m % 128, 0, "M {m} must be a multiple of 128");
        assert!(n > 0);
        Self {
            c_mat,
            a2,
            b2,
            w,
            v,
            m,
            n,
            bw,
        }
    }

    fn body<M: WarpMachine>(&self, block: Dim3, mach: &mut M) {
        let s = self.bw.inv_2h2();
        for wp in 0..4 {
            mach.begin_warp(wp as u32);
            let row = |lane: usize| block.x as usize * 128 + wp * 32 + lane;
            mach.alu(2);
            // Row norm: one per thread, coalesced.
            let ridx: WarpIdx = std::array::from_fn(|lane| Some(row(lane)));
            let a2v = mach.ld_global(self.a2, &ridx, VecWidth::V1);
            let mut acc = [0.0f32; 32];
            for j in 0..self.n {
                // One column of 32 different rows: 32 scattered sectors.
                let cidx: WarpIdx = std::array::from_fn(|lane| Some(row(lane) * self.n + j));
                let bidx: WarpIdx = std::array::from_fn(|_| Some(j));
                let cv = mach.ld_global(self.c_mat, &cidx, VecWidth::V1);
                let b2v = mach.ld_global(self.b2, &bidx, VecWidth::V1);
                let wv = mach.ld_global(self.w, &bidx, VecWidth::V1);
                // FADD (norm sum), 2 FFMA (arg fold), MUFU (exp),
                // FFMA (×W accumulate).
                mach.falu(1);
                mach.ffma(3);
                mach.sfu(1);
                if M::FUNCTIONAL {
                    for lane in 0..32 {
                        let d = a2v[lane][0] + b2v[lane][0] - 2.0 * cv[lane][0];
                        acc[lane] += gaussian(d, s) * wv[lane][0];
                    }
                }
            }
            let vals: [[f32; 4]; 32] = std::array::from_fn(|lane| [acc[lane], 0.0, 0.0, 0.0]);
            mach.st_global(self.v, &ridx, VecWidth::V1, &vals);
        }
    }
}

impl Kernel for EvalSumKernel {
    fn name(&self) -> String {
        format!("eval_sum_{}x{}", self.m, self.n)
    }

    fn launch_config(&self) -> LaunchConfig {
        LaunchConfig::new(Dim3::new_1d((self.m / 128) as u32), 128u32)
    }

    fn resources(&self) -> KernelResources {
        KernelResources {
            threads_per_block: 128,
            regs_per_thread: 32,
            smem_bytes_per_block: 0,
        }
    }

    fn timing_hints(&self) -> TimingHints {
        TimingHints {
            exec_model: ExecModel::CudaC,
            mlp: 2.0,
        }
    }

    fn execute_block(&self, block: Dim3, ctx: &mut BlockCtx) {
        self.body(block, &mut FunctionalMachine::new(ctx));
    }

    fn block_traffic(&self, block: Dim3, sink: &mut TrafficSink) {
        self.body(block, &mut TrafficMachine::new(sink));
    }

    fn traffic_homogeneous(&self) -> bool {
        true
    }

    fn access_spec(&self) -> Option<AccessSpec> {
        let mut spec = AccessSpec::default();
        let n = self.n;
        for wp in 0..4usize {
            let row = |lane: usize| (wp * 32 + lane) as i64;
            spec.global.push(
                GlobalPattern::new(
                    self.a2,
                    "a2",
                    AccessDir::Read,
                    VecWidth::V1,
                    affine_lanes(row),
                )
                .with_bx(128),
            );
            // The uncoalesced walk: one column of 32 different rows
            // per iteration — the Fig 2 pathology, declared as-is.
            spec.global.push(
                GlobalPattern::new(
                    self.c_mat,
                    "C",
                    AccessDir::Read,
                    VecWidth::V1,
                    affine_lanes(|lane| row(lane) * n as i64),
                )
                .with_bx(128 * n as i64)
                .with_loop(n as u64, 1),
            );
            for (buf, label) in [(self.b2, "b2"), (self.w, "W")] {
                spec.global.push(
                    GlobalPattern::new(
                        buf,
                        label,
                        AccessDir::Read,
                        VecWidth::V1,
                        affine_lanes(|_| 0),
                    )
                    .with_loop(n as u64, 1),
                );
            }
            spec.global.push(
                GlobalPattern::new(
                    self.v,
                    "V",
                    AccessDir::Write,
                    VecWidth::V1,
                    affine_lanes(row),
                )
                .with_bx(128),
            );
        }
        Some(spec)
    }

    fn block_class(&self, block: Dim3) -> Option<BlockClass> {
        // Block x covers rows [x·128, x·128+128): C reads start at
        // x·128·n, the row norms and output at x·128; b2/W are read at
        // block-independent addresses (delta 0, so left unanchored).
        let b = block.x as usize;
        Some(BlockClass {
            key: 0,
            anchors: vec![
                (self.c_mat, b * 128 * self.n),
                (self.a2, b * 128),
                (self.v, b * 128),
            ],
        })
    }

    fn analysis_budget(&self) -> AnalysisBudget {
        AnalysisBudget {
            buffers: eval_sum_buffers(self.c_mat, self.a2, self.b2, self.w, self.v, self.m, self.n),
            ..AnalysisBudget::default()
        }
    }
}

/// Shared buffer-extent declaration for the two eval+sum variants.
fn eval_sum_buffers(
    c_mat: BufId,
    a2: BufId,
    b2: BufId,
    w: BufId,
    v: BufId,
    m: usize,
    n: usize,
) -> Vec<BufferUse> {
    vec![
        BufferUse {
            buf: c_mat,
            len: m * n,
            writes: false,
            label: "C",
        },
        BufferUse {
            buf: a2,
            len: m,
            writes: false,
            label: "a2",
        },
        BufferUse {
            buf: b2,
            len: n,
            writes: false,
            label: "b2",
        },
        BufferUse {
            buf: w,
            len: n,
            writes: false,
            label: "W",
        },
        BufferUse {
            buf: v,
            len: m,
            writes: true,
            label: "V",
        },
    ]
}

/// Tuned warp-per-row evaluation + reduction (ablation: what the
/// unfused baseline becomes if its epilogue is also hand-optimised
/// with `float4` loads and warp shuffles).
pub struct EvalSumCoalescedKernel {
    c_mat: BufId,
    a2: BufId,
    b2: BufId,
    w: BufId,
    v: BufId,
    m: usize,
    n: usize,
    bw: Bandwidth,
}

impl EvalSumCoalescedKernel {
    /// Creates the kernel. `c_mat` is M×N row-major.
    ///
    /// # Panics
    /// Panics unless `m % 8 == 0` and `n % 128 == 0`.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        c_mat: BufId,
        a2: BufId,
        b2: BufId,
        w: BufId,
        v: BufId,
        m: usize,
        n: usize,
        bw: Bandwidth,
    ) -> Self {
        assert_eq!(m % 8, 0, "M {m} must be a multiple of 8");
        assert_eq!(n % 128, 0, "N {n} must be a multiple of 128");
        Self {
            c_mat,
            a2,
            b2,
            w,
            v,
            m,
            n,
            bw,
        }
    }

    fn body<M: WarpMachine>(&self, block: Dim3, mach: &mut M) {
        let s = self.bw.inv_2h2();
        for w in 0..8 {
            mach.begin_warp(w as u32);
            let row = block.x as usize * 8 + w;
            mach.alu(2);
            // Broadcast load of the row norm.
            let a2v = mach.ld_global(self.a2, &std::array::from_fn(|_| Some(row)), VecWidth::V1);
            let mut acc = [0.0f32; 32];
            for j0 in (0..self.n).step_by(128) {
                let col = |lane: usize| j0 + 4 * lane;
                let cidx: WarpIdx = std::array::from_fn(|lane| Some(row * self.n + col(lane)));
                let vidx: WarpIdx = std::array::from_fn(|lane| Some(col(lane)));
                let cv = mach.ld_global(self.c_mat, &cidx, VecWidth::V4);
                let b2v = mach.ld_global(self.b2, &vidx, VecWidth::V4);
                let wv = mach.ld_global(self.w, &vidx, VecWidth::V4);
                mach.falu(4);
                mach.ffma(12);
                mach.sfu(4);
                if M::FUNCTIONAL {
                    for lane in 0..32 {
                        for e in 0..4 {
                            let d = a2v[lane][0] + b2v[lane][e] - 2.0 * cv[lane][e];
                            acc[lane] += gaussian(d, s) * wv[lane][e];
                        }
                    }
                }
            }
            // Warp tree-reduction: 5 shuffle+add rounds.
            mach.alu(5);
            mach.falu(5);
            let mut one_lane: WarpIdx = [None; 32];
            one_lane[0] = Some(row);
            let mut vals = [[0.0f32; 4]; 32];
            if M::FUNCTIONAL {
                vals[0][0] = acc.iter().sum();
            }
            mach.st_global(self.v, &one_lane, VecWidth::V1, &vals);
        }
    }
}

impl Kernel for EvalSumCoalescedKernel {
    fn name(&self) -> String {
        format!("eval_sum_coalesced_{}x{}", self.m, self.n)
    }

    fn launch_config(&self) -> LaunchConfig {
        LaunchConfig::new(Dim3::new_1d((self.m / 8) as u32), 256u32)
    }

    fn resources(&self) -> KernelResources {
        KernelResources {
            threads_per_block: 256,
            regs_per_thread: 32,
            smem_bytes_per_block: 0,
        }
    }

    fn timing_hints(&self) -> TimingHints {
        TimingHints {
            exec_model: ExecModel::CudaC,
            mlp: 8.0,
        }
    }

    fn execute_block(&self, block: Dim3, ctx: &mut BlockCtx) {
        self.body(block, &mut FunctionalMachine::new(ctx));
    }

    fn block_traffic(&self, block: Dim3, sink: &mut TrafficSink) {
        self.body(block, &mut TrafficMachine::new(sink));
    }

    fn traffic_homogeneous(&self) -> bool {
        true
    }

    fn access_spec(&self) -> Option<AccessSpec> {
        let mut spec = AccessSpec::default();
        let n = self.n;
        let strips = (n / 128) as u64;
        for w in 0..8usize {
            spec.global.push(
                GlobalPattern::new(
                    self.a2,
                    "a2",
                    AccessDir::Read,
                    VecWidth::V1,
                    affine_lanes(|_| w as i64),
                )
                .with_bx(8),
            );
            spec.global.push(
                GlobalPattern::new(
                    self.c_mat,
                    "C",
                    AccessDir::Read,
                    VecWidth::V4,
                    affine_lanes(|lane| (w * n + 4 * lane) as i64),
                )
                .with_bx(8 * n as i64)
                .with_loop(strips, 128),
            );
            for (buf, label) in [(self.b2, "b2"), (self.w, "W")] {
                spec.global.push(
                    GlobalPattern::new(
                        buf,
                        label,
                        AccessDir::Read,
                        VecWidth::V4,
                        affine_lanes(|lane| (4 * lane) as i64),
                    )
                    .with_loop(strips, 128),
                );
            }
            spec.global.push(
                GlobalPattern::new(
                    self.v,
                    "V",
                    AccessDir::Write,
                    VecWidth::V1,
                    masked_lanes(|lane| (lane == 0).then_some(w as i64)),
                )
                .with_bx(8),
            );
        }
        Some(spec)
    }

    fn block_class(&self, block: Dim3) -> Option<BlockClass> {
        // Block x covers rows [x·8, x·8+8): C reads start at x·8·n,
        // the row norms and output at x·8 (32 bytes — exactly one
        // sector, so translations stay aligned).
        let b = block.x as usize;
        Some(BlockClass {
            key: 0,
            anchors: vec![
                (self.c_mat, b * 8 * self.n),
                (self.a2, b * 8),
                (self.v, b * 8),
            ],
        })
    }

    fn analysis_budget(&self) -> AnalysisBudget {
        AnalysisBudget {
            buffers: eval_sum_buffers(self.c_mat, self.a2, self.b2, self.w, self.v, self.m, self.n),
            ..AnalysisBudget::default()
        }
    }
}

// ---------------------------------------------------------------------------
// Two-pass variants (ablation)
// ---------------------------------------------------------------------------

/// Element-wise Gaussian evaluation: `K_ij = exp(−(‖α_i‖²+‖β_j‖²−2·C_ij)/(2h²))`,
/// written to `k_mat` (may alias `c_mat` — in-place is what a real
/// two-pass implementation does).
pub struct EvalKernel {
    c_mat: BufId,
    k_mat: BufId,
    a2: BufId,
    b2: BufId,
    m: usize,
    n: usize,
    bw: Bandwidth,
}

impl EvalKernel {
    /// Creates the kernel.
    ///
    /// # Panics
    /// Panics unless `n % 128 == 0` and `(m·n) % 1024 == 0`.
    #[must_use]
    pub fn new(
        c_mat: BufId,
        k_mat: BufId,
        a2: BufId,
        b2: BufId,
        m: usize,
        n: usize,
        bw: Bandwidth,
    ) -> Self {
        assert_eq!(n % 128, 0, "N {n} must be a multiple of 128");
        assert_eq!((m * n) % 1024, 0, "M·N must be a multiple of 1024");
        Self {
            c_mat,
            k_mat,
            a2,
            b2,
            m,
            n,
            bw,
        }
    }

    fn body<M: WarpMachine>(&self, block: Dim3, mach: &mut M) {
        let s = self.bw.inv_2h2();
        for w in 0..8 {
            mach.begin_warp(w as u32);
            let base = block.x as usize * 1024 + w * 128;
            let row = base / self.n;
            mach.alu(2);
            let a2v = mach.ld_global(self.a2, &std::array::from_fn(|_| Some(row)), VecWidth::V1);
            let eidx: WarpIdx = std::array::from_fn(|lane| Some(base + 4 * lane));
            let vidx: WarpIdx = std::array::from_fn(|lane| Some((base + 4 * lane) % self.n));
            let cv = mach.ld_global(self.c_mat, &eidx, VecWidth::V4);
            let b2v = mach.ld_global(self.b2, &vidx, VecWidth::V4);
            mach.falu(4);
            mach.ffma(8);
            mach.sfu(4);
            let out: [[f32; 4]; 32] = if M::FUNCTIONAL {
                std::array::from_fn(|lane| {
                    std::array::from_fn(|e| {
                        let d = a2v[lane][0] + b2v[lane][e] - 2.0 * cv[lane][e];
                        gaussian(d, s)
                    })
                })
            } else {
                [[0.0; 4]; 32]
            };
            mach.st_global(self.k_mat, &eidx, VecWidth::V4, &out);
        }
    }
}

impl Kernel for EvalKernel {
    fn name(&self) -> String {
        format!("eval_{}x{}", self.m, self.n)
    }

    fn launch_config(&self) -> LaunchConfig {
        LaunchConfig::new(Dim3::new_1d((self.m * self.n / 1024) as u32), 256u32)
    }

    fn resources(&self) -> KernelResources {
        KernelResources {
            threads_per_block: 256,
            regs_per_thread: 24,
            smem_bytes_per_block: 0,
        }
    }

    fn timing_hints(&self) -> TimingHints {
        TimingHints {
            exec_model: ExecModel::CudaC,
            mlp: 8.0,
        }
    }

    fn execute_block(&self, block: Dim3, ctx: &mut BlockCtx) {
        self.body(block, &mut FunctionalMachine::new(ctx));
    }

    fn block_traffic(&self, block: Dim3, sink: &mut TrafficSink) {
        self.body(block, &mut TrafficMachine::new(sink));
    }

    fn traffic_homogeneous(&self) -> bool {
        true
    }

    fn access_spec(&self) -> Option<AccessSpec> {
        // The element-linear walk (`base + 4·lane` over C/K) is always
        // affine, but the row-norm broadcast (`base / n`) and the
        // wrapped column index (`(base + 4·lane) mod n`) are affine in
        // `bx` only when n divides the 1024-element block stripe — then
        // `bx·1024` vanishes mod n and divides exactly. Otherwise the
        // patterns are declared honestly as indirect and the analyzer
        // falls back to the dynamic lint.
        let n = self.n;
        let affine = 1024 % n == 0;
        let mut spec = AccessSpec::default();
        for w in 0..8usize {
            let base = w * 128;
            let mut a2p = GlobalPattern::new(
                self.a2,
                "a2",
                AccessDir::Read,
                VecWidth::V1,
                affine_lanes(|_| (base / n) as i64),
            );
            let mut b2p = GlobalPattern::new(
                self.b2,
                "b2",
                AccessDir::Read,
                VecWidth::V4,
                affine_lanes(|lane| ((base + 4 * lane) % n) as i64),
            );
            if affine {
                a2p = a2p.with_bx((1024 / n) as i64);
            } else {
                a2p = a2p.into_indirect();
                b2p = b2p.into_indirect();
            }
            spec.global.push(a2p);
            spec.global.push(b2p);
            spec.global.push(
                GlobalPattern::new(
                    self.c_mat,
                    "C",
                    AccessDir::Read,
                    VecWidth::V4,
                    affine_lanes(|lane| (base + 4 * lane) as i64),
                )
                .with_bx(1024),
            );
            spec.global.push(
                GlobalPattern::new(
                    self.k_mat,
                    "K",
                    AccessDir::Write,
                    VecWidth::V4,
                    affine_lanes(|lane| (base + 4 * lane) as i64),
                )
                .with_bx(1024),
            );
        }
        Some(spec)
    }

    fn analysis_budget(&self) -> AnalysisBudget {
        AnalysisBudget {
            buffers: vec![
                BufferUse {
                    buf: self.c_mat,
                    len: self.m * self.n,
                    writes: false,
                    label: "C",
                },
                BufferUse {
                    buf: self.k_mat,
                    len: self.m * self.n,
                    writes: true,
                    label: "K",
                },
                BufferUse {
                    buf: self.a2,
                    len: self.m,
                    writes: false,
                    label: "a2",
                },
                BufferUse {
                    buf: self.b2,
                    len: self.n,
                    writes: false,
                    label: "b2",
                },
            ],
            ..AnalysisBudget::default()
        }
    }
}

/// Plain GEMV reduction: `V_i = Σ_j K_ij · W_j` (second pass of the
/// two-pass ablation).
pub struct GemvKernel {
    k_mat: BufId,
    w: BufId,
    v: BufId,
    m: usize,
    n: usize,
}

impl GemvKernel {
    /// Creates the kernel.
    ///
    /// # Panics
    /// Panics unless `m % 8 == 0` and `n % 128 == 0`.
    #[must_use]
    pub fn new(k_mat: BufId, w: BufId, v: BufId, m: usize, n: usize) -> Self {
        assert_eq!(m % 8, 0, "M {m} must be a multiple of 8");
        assert_eq!(n % 128, 0, "N {n} must be a multiple of 128");
        Self { k_mat, w, v, m, n }
    }

    fn body<M: WarpMachine>(&self, block: Dim3, mach: &mut M) {
        for w in 0..8 {
            mach.begin_warp(w as u32);
            let row = block.x as usize * 8 + w;
            mach.alu(2);
            let mut acc = [0.0f32; 32];
            for j0 in (0..self.n).step_by(128) {
                let kidx: WarpIdx = std::array::from_fn(|lane| Some(row * self.n + j0 + 4 * lane));
                let vidx: WarpIdx = std::array::from_fn(|lane| Some(j0 + 4 * lane));
                let kv = mach.ld_global(self.k_mat, &kidx, VecWidth::V4);
                let wv = mach.ld_global(self.w, &vidx, VecWidth::V4);
                mach.ffma(4);
                if M::FUNCTIONAL {
                    for lane in 0..32 {
                        for e in 0..4 {
                            acc[lane] += kv[lane][e] * wv[lane][e];
                        }
                    }
                }
            }
            mach.alu(5);
            mach.falu(5);
            let mut one_lane: WarpIdx = [None; 32];
            one_lane[0] = Some(row);
            let mut vals = [[0.0f32; 4]; 32];
            if M::FUNCTIONAL {
                vals[0][0] = acc.iter().sum();
            }
            mach.st_global(self.v, &one_lane, VecWidth::V1, &vals);
        }
    }
}

impl Kernel for GemvKernel {
    fn name(&self) -> String {
        format!("gemv_{}x{}", self.m, self.n)
    }

    fn launch_config(&self) -> LaunchConfig {
        LaunchConfig::new(Dim3::new_1d((self.m / 8) as u32), 256u32)
    }

    fn resources(&self) -> KernelResources {
        KernelResources {
            threads_per_block: 256,
            regs_per_thread: 24,
            smem_bytes_per_block: 0,
        }
    }

    fn timing_hints(&self) -> TimingHints {
        TimingHints {
            exec_model: ExecModel::CudaC,
            mlp: 8.0,
        }
    }

    fn execute_block(&self, block: Dim3, ctx: &mut BlockCtx) {
        self.body(block, &mut FunctionalMachine::new(ctx));
    }

    fn block_traffic(&self, block: Dim3, sink: &mut TrafficSink) {
        self.body(block, &mut TrafficMachine::new(sink));
    }

    fn traffic_homogeneous(&self) -> bool {
        true
    }

    fn access_spec(&self) -> Option<AccessSpec> {
        let mut spec = AccessSpec::default();
        let n = self.n;
        let strips = (n / 128) as u64;
        for w in 0..8usize {
            spec.global.push(
                GlobalPattern::new(
                    self.k_mat,
                    "K",
                    AccessDir::Read,
                    VecWidth::V4,
                    affine_lanes(|lane| (w * n + 4 * lane) as i64),
                )
                .with_bx(8 * n as i64)
                .with_loop(strips, 128),
            );
            spec.global.push(
                GlobalPattern::new(
                    self.w,
                    "W",
                    AccessDir::Read,
                    VecWidth::V4,
                    affine_lanes(|lane| (4 * lane) as i64),
                )
                .with_loop(strips, 128),
            );
            spec.global.push(
                GlobalPattern::new(
                    self.v,
                    "V",
                    AccessDir::Write,
                    VecWidth::V1,
                    masked_lanes(|lane| (lane == 0).then_some(w as i64)),
                )
                .with_bx(8),
            );
        }
        Some(spec)
    }

    fn block_class(&self, block: Dim3) -> Option<BlockClass> {
        // Block x reduces rows [x·8, x·8+8) of K against the shared W.
        let b = block.x as usize;
        Some(BlockClass {
            key: 0,
            anchors: vec![(self.k_mat, b * 8 * self.n), (self.v, b * 8)],
        })
    }

    fn analysis_budget(&self) -> AnalysisBudget {
        AnalysisBudget {
            buffers: vec![
                BufferUse {
                    buf: self.k_mat,
                    len: self.m * self.n,
                    writes: false,
                    label: "K",
                },
                BufferUse {
                    buf: self.w,
                    len: self.n,
                    writes: false,
                    label: "W",
                },
                BufferUse {
                    buf: self.v,
                    len: self.m,
                    writes: true,
                    label: "V",
                },
            ],
            ..AnalysisBudget::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ks_gpu_sim::device::GpuDevice;

    fn lcg(seed: u64) -> impl FnMut() -> f32 {
        let mut state = seed | 1;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        }
    }

    #[test]
    fn norms_kernel_matches_cpu() {
        let (n_points, dim) = (256, 16);
        let mut next = lcg(5);
        let pts: Vec<f32> = (0..n_points * dim).map(|_| next()).collect();
        let mut dev = GpuDevice::gtx970();
        let p = dev.upload(&pts);
        let out = dev.alloc(n_points);
        dev.run(&NormsKernel::new(p, out, n_points, dim, "a"))
            .unwrap();
        let got = dev.download(out);
        for i in 0..n_points {
            let want: f32 = pts[i * dim..(i + 1) * dim].iter().map(|v| v * v).sum();
            assert!(
                (got[i] - want).abs() < 1e-4 * want.max(1.0),
                "{} vs {}",
                got[i],
                want
            );
        }
    }

    #[test]
    fn eval_sum_matches_cpu() {
        let (m, n) = (128, 96);
        let bw = Bandwidth { h: 0.8 };
        let mut next = lcg(6);
        let c: Vec<f32> = (0..m * n).map(|_| next()).collect();
        let a2: Vec<f32> = (0..m).map(|_| next().abs()).collect();
        let b2: Vec<f32> = (0..n).map(|_| next().abs()).collect();
        let wv: Vec<f32> = (0..n).map(|_| next()).collect();
        let mut dev = GpuDevice::gtx970();
        let (bc, ba2, bb2, bw_buf, bv) = (
            dev.upload(&c),
            dev.upload(&a2),
            dev.upload(&b2),
            dev.upload(&wv),
            dev.alloc(m),
        );
        dev.run(&EvalSumKernel::new(bc, ba2, bb2, bw_buf, bv, m, n, bw))
            .unwrap();
        let got = dev.download(bv);
        let s = bw.inv_2h2();
        for i in 0..m {
            let want: f32 = (0..n)
                .map(|j| gaussian(a2[i] + b2[j] - 2.0 * c[i * n + j], s) * wv[j])
                .sum();
            assert!(
                (got[i] - want).abs() < 1e-4 * want.abs().max(1.0),
                "row {i}: {} vs {}",
                got[i],
                want
            );
        }
    }

    #[test]
    fn two_pass_matches_eval_sum() {
        let (m, n) = (128, 128);
        let bw = Bandwidth { h: 1.1 };
        let mut next = lcg(9);
        let c: Vec<f32> = (0..m * n).map(|_| next()).collect();
        let a2: Vec<f32> = (0..m).map(|_| next().abs()).collect();
        let b2: Vec<f32> = (0..n).map(|_| next().abs()).collect();
        let wv: Vec<f32> = (0..n).map(|_| next()).collect();

        let mut dev = GpuDevice::gtx970();
        let (bc, ba2, bb2, bw_buf) = (
            dev.upload(&c),
            dev.upload(&a2),
            dev.upload(&b2),
            dev.upload(&wv),
        );
        let v1 = dev.alloc(m);
        dev.run(&EvalSumKernel::new(bc, ba2, bb2, bw_buf, v1, m, n, bw))
            .unwrap();

        let bk = dev.alloc(m * n);
        let v2 = dev.alloc(m);
        dev.run(&EvalKernel::new(bc, bk, ba2, bb2, m, n, bw))
            .unwrap();
        dev.run(&GemvKernel::new(bk, bw_buf, v2, m, n)).unwrap();

        let one = dev.download(v1);
        let two = dev.download(v2);
        for (a, b) in one.iter().zip(two.iter()) {
            assert!((a - b).abs() < 1e-5 * a.abs().max(1.0));
        }
    }

    #[test]
    fn coalesced_eval_sum_matches_naive_values() {
        let (m, n) = (128, 128);
        let bw = Bandwidth { h: 0.7 };
        let mut next = lcg(31);
        let c: Vec<f32> = (0..m * n).map(|_| next()).collect();
        let a2: Vec<f32> = (0..m).map(|_| next().abs()).collect();
        let b2: Vec<f32> = (0..n).map(|_| next().abs()).collect();
        let wv: Vec<f32> = (0..n).map(|_| next()).collect();
        let mut dev = GpuDevice::gtx970();
        let (bc, ba2, bb2, bw_buf) = (
            dev.upload(&c),
            dev.upload(&a2),
            dev.upload(&b2),
            dev.upload(&wv),
        );
        let (v1, v2) = (dev.alloc(m), dev.alloc(m));
        dev.run(&EvalSumKernel::new(bc, ba2, bb2, bw_buf, v1, m, n, bw))
            .unwrap();
        dev.run(&EvalSumCoalescedKernel::new(
            bc, ba2, bb2, bw_buf, v2, m, n, bw,
        ))
        .unwrap();
        let one = dev.download(v1);
        let two = dev.download(v2);
        for (a, b) in one.iter().zip(two.iter()) {
            assert!((a - b).abs() < 1e-4 * a.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn naive_eval_sum_amplifies_l2_traffic_8x() {
        // The uncoalesced baseline touches one 32B sector per 4B load;
        // the coalesced version touches each sector once per 8 floats.
        let (m, n) = (256, 1024);
        let mk = |coalesced: bool| {
            let mut dev = GpuDevice::gtx970();
            let bc = dev.alloc_virtual(m * n);
            let (ba2, bb2, bw_buf, bv) = (
                dev.alloc_virtual(m),
                dev.alloc_virtual(n),
                dev.alloc_virtual(n),
                dev.alloc_virtual(m),
            );
            let bw = Bandwidth { h: 1.0 };
            if coalesced {
                dev.launch(&EvalSumCoalescedKernel::new(
                    bc, ba2, bb2, bw_buf, bv, m, n, bw,
                ))
                .unwrap()
            } else {
                dev.launch(&EvalSumKernel::new(bc, ba2, bb2, bw_buf, bv, m, n, bw))
                    .unwrap()
            }
        };
        let naive = mk(false);
        let coal = mk(true);
        let ratio = naive.mem.l2_reads as f64 / coal.mem.l2_reads as f64;
        // C-only amplification is 8×; the broadcast b2/W loads dilute
        // the pipeline-level ratio to ~2.8.
        assert!(ratio > 2.5, "L2 amplification ratio {ratio}");
        // But unique DRAM traffic is similar (L2 absorbs the re-reads).
        let dram_ratio = naive.mem.dram_reads() as f64 / coal.mem.dram_reads() as f64;
        assert!(dram_ratio < 1.5, "DRAM ratio {dram_ratio}");
    }

    #[test]
    fn eval_sum_traffic_reads_whole_c_matrix() {
        let (m, n) = (128, 1024);
        let mut dev = GpuDevice::gtx970();
        let bc = dev.alloc(m * n);
        let (ba2, bb2, bw_buf, bv) = (dev.alloc(m), dev.alloc(n), dev.alloc(n), dev.alloc(m));
        let p = dev
            .launch(&EvalSumKernel::new(
                bc,
                ba2,
                bb2,
                bw_buf,
                bv,
                m,
                n,
                Bandwidth { h: 1.0 },
            ))
            .unwrap();
        // C is m*n*4 bytes = m*n/8 sectors, all cold misses.
        let c_sectors = (m * n / 8) as u64;
        assert!(
            p.mem.dram_reads() >= c_sectors,
            "dram reads {} < C sectors {c_sectors}",
            p.mem.dram_reads()
        );
        // b2/w re-reads must mostly hit L2.
        assert!(p.mem.l2_reads > c_sectors);
        assert!((p.mem.dram_reads() as f64) < 1.1 * c_sectors as f64);
    }

    #[test]
    fn gaussian_kernel_basics() {
        let s = Bandwidth { h: 1.0 }.inv_2h2();
        assert_eq!(gaussian(0.0, s), 1.0);
        assert!(gaussian(10.0, s) < gaussian(1.0, s));
        assert!((Bandwidth { h: 2.0 }.inv_2h2() - 0.125).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "multiple of 128")]
    fn norms_rejects_bad_point_count() {
        let mut dev = GpuDevice::gtx970();
        let p = dev.alloc(100 * 4);
        let out = dev.alloc(100);
        let _ = NormsKernel::new(p, out, 100, 4, "bad");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn bandwidth_rejects_zero_h() {
        let _ = Bandwidth { h: 0.0 }.inv_2h2();
    }
}
