//! The standalone SGEMM kernels (`C = A·B`, C row-major).
//!
//! [`CudaSgemm`] is the paper's CUDA-C GEMM: the Fig 4 blocking run
//! under the compiler-scheduled execution model. [`VendorSgemm`] is
//! the stand-in for the closed-source cuBLAS SGEMM: the identical
//! memory behaviour (cuBLAS uses the same 128×128 blocking class on
//! Maxwell) under the hand-scheduled `Vendor` timing model — the gap
//! between the two is exactly the §V-A penalty list (register-bank
//! replays, no dual issue, heavyweight barriers). Fig 7 compares them.

use ks_gpu_sim::access::{affine_lanes, AccessSpec, BarrierSpec, GlobalPattern};
use ks_gpu_sim::buffer::BufId;
use ks_gpu_sim::dim::{Dim3, LaunchConfig};
use ks_gpu_sim::exec::BlockCtx;
use ks_gpu_sim::kernel::VecWidth;
use ks_gpu_sim::kernel::{
    AnalysisBudget, BlockClass, BufferUse, ExecModel, Kernel, KernelResources, TimingHints,
};
use ks_gpu_sim::occupancy::OccupancyLimiter;
use ks_gpu_sim::trace::AccessDir;
use ks_gpu_sim::traffic::{TrafficSink, WarpIdx};

use crate::gemm_engine::{
    gemm_access_spec, gemm_block, syncs_per_block, AccGrid, GemmOperands, GemmShape, SmemMap,
};
use crate::geometry::TileGeometry;
use crate::layout::SmemLayout;
use crate::machine::{FunctionalMachine, TrafficMachine, WarpMachine};
use crate::{BLOCK_TILE, MICRO_TILE, THREADS_XY, WARPS_PER_BLOCK};

/// Registers per thread of the GEMM-structured kernels: 64
/// accumulators + 16 operand registers + addressing/control
/// (§III-A: "96 to 128 registers are consumed by each thread");
/// 128 yields the paper's two blocks per SM.
pub const GEMM_REGS_PER_THREAD: u32 = 128;

/// The paper's CUDA-C SGEMM kernel.
pub struct CudaSgemm {
    ops: GemmOperands,
    c: BufId,
    shape: GemmShape,
    layout: SmemLayout,
    double_buffer: bool,
}

impl CudaSgemm {
    /// Creates the kernel. `c` must hold `m·n` elements (row-major).
    ///
    /// # Panics
    /// Panics if the shape violates the tiling constraints.
    #[must_use]
    pub fn new(ops: GemmOperands, c: BufId, shape: GemmShape) -> Self {
        shape.validate();
        Self {
            ops,
            c,
            shape,
            layout: SmemLayout::default(),
            double_buffer: true,
        }
    }

    /// Selects the shared-memory placement (ablation).
    #[must_use]
    pub fn with_layout(mut self, layout: SmemLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Enables/disables double buffering (ablation).
    #[must_use]
    pub fn with_double_buffer(mut self, on: bool) -> Self {
        self.double_buffer = on;
        self
    }

    /// The paper-point geometry at this kernel's buffering depth.
    fn geometry(&self) -> TileGeometry {
        TileGeometry {
            double_buffer_depth: if self.double_buffer { 2 } else { 1 },
            ..TileGeometry::paper_default()
        }
    }

    /// Shared body: GEMM then the C write-back.
    fn body<M: WarpMachine>(&self, block: Dim3, mach: &mut M) {
        let (bx, by) = (block.x as usize, block.y as usize);
        let geo = self.geometry();
        let mut acc = if M::FUNCTIONAL {
            AccGrid::for_geometry(&geo)
        } else {
            AccGrid::empty(&geo)
        };
        gemm_block(
            mach,
            &geo,
            &self.ops,
            &self.shape,
            self.layout,
            bx,
            by,
            &mut acc,
        );

        // Write back submatrixC: each thread stores its 8×8 microtile
        // as 8 rows × 2 STG.128 (the unfused pipelines need C in
        // global memory — precisely the traffic fusion eliminates).
        let n = self.shape.n;
        for w in 0..WARPS_PER_BLOCK {
            mach.begin_warp(w as u32);
            mach.alu(2);
            for r in 0..MICRO_TILE {
                for half in 0..2 {
                    let idx: WarpIdx = std::array::from_fn(|lane| {
                        let tx = lane % THREADS_XY;
                        let ty = 2 * w + lane / THREADS_XY;
                        let row = by * BLOCK_TILE + ty * MICRO_TILE + r;
                        let col = bx * BLOCK_TILE + tx * MICRO_TILE + 4 * half;
                        Some(row * n + col)
                    });
                    let vals: [[f32; 4]; 32] = if M::FUNCTIONAL {
                        std::array::from_fn(|lane| {
                            let tid = w * 32 + lane;
                            std::array::from_fn(|j| acc.at(tid, r, 4 * half + j))
                        })
                    } else {
                        [[0.0; 4]; 32]
                    };
                    mach.st_global(self.c, &idx, VecWidth::V4, &vals);
                }
            }
        }
    }
}

impl Kernel for CudaSgemm {
    fn name(&self) -> String {
        format!(
            "sgemm_cudac_{}x{}x{}",
            self.shape.m, self.shape.n, self.shape.k
        )
    }

    fn launch_config(&self) -> LaunchConfig {
        let (gx, gy) = self.shape.grid();
        LaunchConfig::new(
            Dim3::new_2d(gx, gy),
            Dim3::new_2d(THREADS_XY as u32, THREADS_XY as u32),
        )
    }

    fn resources(&self) -> KernelResources {
        KernelResources {
            threads_per_block: (THREADS_XY * THREADS_XY) as u32,
            regs_per_thread: GEMM_REGS_PER_THREAD,
            smem_bytes_per_block: SmemMap::new(self.double_buffer).bytes(),
        }
    }

    fn timing_hints(&self) -> TimingHints {
        TimingHints {
            exec_model: ExecModel::CudaC,
            // Double buffering keeps two float4 loads per loader warp in
            // flight across the whole compute phase of the previous
            // tile; without it loads serialise at the barrier.
            mlp: if self.double_buffer { 8.0 } else { 3.0 },
        }
    }

    fn execute_block(&self, block: Dim3, ctx: &mut BlockCtx) {
        let mut mach = FunctionalMachine::new(ctx);
        self.body(block, &mut mach);
    }

    fn block_traffic(&self, block: Dim3, sink: &mut TrafficSink) {
        let mut mach = TrafficMachine::new(sink);
        self.body(block, &mut mach);
    }

    fn traffic_homogeneous(&self) -> bool {
        true
    }

    fn access_spec(&self) -> Option<AccessSpec> {
        let geo = self.geometry();
        let mut spec = AccessSpec::default();
        gemm_access_spec(&mut spec, &geo, &self.ops, &self.shape, self.layout, false);
        // Write-back: warp w stores microtile row r in two STG.128.
        let n = self.shape.n;
        for w in 0..WARPS_PER_BLOCK {
            for r in 0..MICRO_TILE {
                for half in 0..2usize {
                    spec.global.push(
                        GlobalPattern::new(
                            self.c,
                            "c",
                            AccessDir::Write,
                            VecWidth::V4,
                            affine_lanes(|lane| {
                                let tx = lane % THREADS_XY;
                                let ty = 2 * w + lane / THREADS_XY;
                                ((ty * MICRO_TILE + r) * n + tx * MICRO_TILE + 4 * half) as i64
                            }),
                        )
                        .with_by((BLOCK_TILE * n) as i64)
                        .with_bx(BLOCK_TILE as i64),
                    );
                }
            }
        }
        spec.barriers = Some(BarrierSpec {
            count: syncs_per_block(&geo, self.shape.k),
            warps: WARPS_PER_BLOCK as u64,
        });
        Some(spec)
    }

    fn block_class(&self, block: Dim3) -> Option<BlockClass> {
        // A rows anchor at by·128·k, B columns at bx·128·k, and the C
        // write-back tile at by·128·n + bx·128 — all affine in the
        // block coordinates with a fixed intra-block pattern.
        let (bx, by) = (block.x as usize, block.y as usize);
        Some(BlockClass {
            key: 0,
            anchors: vec![
                (self.ops.a, by * BLOCK_TILE * self.shape.k),
                (self.ops.b, bx * BLOCK_TILE * self.shape.k),
                (self.c, by * BLOCK_TILE * self.shape.n + bx * BLOCK_TILE),
            ],
        })
    }

    fn analysis_budget(&self) -> AnalysisBudget {
        let (m, n, k) = (self.shape.m, self.shape.n, self.shape.k);
        AnalysisBudget {
            smem_conflict_budget: match self.layout {
                SmemLayout::Swizzled => 0,
                SmemLayout::NaiveRowMajor => 3,
            },
            expected_blocks_per_sm: Some(2),
            expected_limiter: Some(OccupancyLimiter::Registers),
            buffers: vec![
                BufferUse {
                    buf: self.ops.a,
                    len: m * k,
                    writes: false,
                    label: "a",
                },
                BufferUse {
                    buf: self.ops.b,
                    len: k * n,
                    writes: false,
                    label: "b",
                },
                BufferUse {
                    buf: self.c,
                    len: m * n,
                    writes: true,
                    label: "c",
                },
            ],
        }
    }
}

/// The cuBLAS-class GEMM model: identical traffic, vendor timing
/// (see module docs and DESIGN.md §2).
pub struct VendorSgemm {
    inner: CudaSgemm,
}

impl VendorSgemm {
    /// Creates the kernel (same contract as [`CudaSgemm::new`]).
    ///
    /// # Panics
    /// Panics if the shape violates the tiling constraints.
    #[must_use]
    pub fn new(ops: GemmOperands, c: BufId, shape: GemmShape) -> Self {
        Self {
            inner: CudaSgemm::new(ops, c, shape),
        }
    }
}

impl Kernel for VendorSgemm {
    fn name(&self) -> String {
        let s = &self.inner.shape;
        format!("sgemm_vendor_{}x{}x{}", s.m, s.n, s.k)
    }

    fn launch_config(&self) -> LaunchConfig {
        self.inner.launch_config()
    }

    fn resources(&self) -> KernelResources {
        self.inner.resources()
    }

    fn timing_hints(&self) -> TimingHints {
        TimingHints {
            exec_model: ExecModel::Vendor,
            mlp: 8.0,
        }
    }

    fn execute_block(&self, block: Dim3, ctx: &mut BlockCtx) {
        self.inner.execute_block(block, ctx);
    }

    fn block_traffic(&self, block: Dim3, sink: &mut TrafficSink) {
        self.inner.block_traffic(block, sink);
    }

    fn traffic_homogeneous(&self) -> bool {
        true
    }

    fn block_class(&self, block: Dim3) -> Option<BlockClass> {
        self.inner.block_class(block)
    }

    fn access_spec(&self) -> Option<AccessSpec> {
        self.inner.access_spec()
    }

    fn analysis_budget(&self) -> AnalysisBudget {
        self.inner.analysis_budget()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ks_gpu_sim::device::GpuDevice;

    fn upload_problem(
        dev: &mut GpuDevice,
        shape: GemmShape,
        seed: u64,
    ) -> (GemmOperands, BufId, Vec<f32>, Vec<f32>) {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        };
        let a: Vec<f32> = (0..shape.m * shape.k).map(|_| next()).collect();
        let b: Vec<f32> = (0..shape.k * shape.n).map(|_| next()).collect();
        let ba = dev.upload(&a);
        let bb = dev.upload(&b);
        let c = dev.alloc(shape.m * shape.n);
        (GemmOperands { a: ba, b: bb }, c, a, b)
    }

    fn cpu_gemm(a: &[f32], b: &[f32], shape: &GemmShape) -> Vec<f32> {
        let mut c = vec![0.0f32; shape.m * shape.n];
        for i in 0..shape.m {
            for j in 0..shape.n {
                let mut acc = 0.0f64;
                for p in 0..shape.k {
                    acc += a[i * shape.k + p] as f64 * b[j * shape.k + p] as f64;
                }
                c[i * shape.n + j] = acc as f32;
            }
        }
        c
    }

    #[test]
    fn functional_gemm_matches_cpu() {
        let shape = GemmShape {
            m: 256,
            n: 128,
            k: 24,
        };
        let mut dev = GpuDevice::gtx970();
        let (ops, c, a, b) = upload_problem(&mut dev, shape, 3);
        let k = CudaSgemm::new(ops, c, shape);
        dev.run(&k).unwrap();
        let got = dev.download(c);
        let want = cpu_gemm(&a, &b, &shape);
        for (g, w) in got.iter().zip(want.iter()) {
            assert!((g - w).abs() <= 1e-3 * w.abs().max(1.0), "{g} vs {w}");
        }
    }

    #[test]
    fn fast_profile_path_matches_functional_counted() {
        let shape = GemmShape {
            m: 256,
            n: 256,
            k: 16,
        };
        let mut d1 = GpuDevice::gtx970();
        let (ops1, c1, ..) = upload_problem(&mut d1, shape, 9);
        let p_fast = d1.launch(&CudaSgemm::new(ops1, c1, shape)).unwrap();

        let mut d2 = GpuDevice::gtx970();
        let (ops2, c2, ..) = upload_problem(&mut d2, shape, 9);
        let p_slow = d2.run_counted(&CudaSgemm::new(ops2, c2, shape)).unwrap();

        assert_eq!(
            p_fast.counters, p_slow.counters,
            "homogeneous fast path must be exact"
        );
        assert_eq!(p_fast.mem, p_slow.mem);
    }

    #[test]
    fn vendor_is_1_5x_to_2x_faster_than_cudac() {
        // Fig 7: "the CUDA-C GEMM is two times slower than the cuBLAS
        // GEMM" (1.5–2.0× over the sweep).
        for k in [32usize, 64, 128, 256] {
            let shape = GemmShape {
                m: 1024,
                n: 1024,
                k,
            };
            let mut dev = GpuDevice::gtx970();
            let (ops, c, ..) = upload_problem(&mut dev, shape, 17);
            let pc = dev.launch(&CudaSgemm::new(ops, c, shape)).unwrap();
            dev.invalidate_l2();
            let pv = dev.launch(&VendorSgemm::new(ops, c, shape)).unwrap();
            let ratio = pc.timing.time_s / pv.timing.time_s;
            assert!(
                (1.30..2.15).contains(&ratio),
                "K={k}: CUDA-C/vendor ratio {ratio}"
            );
        }
    }

    #[test]
    fn occupancy_is_two_blocks_per_sm() {
        let shape = GemmShape {
            m: 128,
            n: 128,
            k: 8,
        };
        let mut dev = GpuDevice::gtx970();
        let (ops, c, ..) = upload_problem(&mut dev, shape, 1);
        let p = dev.launch(&CudaSgemm::new(ops, c, shape)).unwrap();
        assert_eq!(p.occupancy.blocks_per_sm, 2);
    }

    #[test]
    fn c_writeback_is_fully_coalesced() {
        let shape = GemmShape {
            m: 128,
            n: 128,
            k: 8,
        };
        let mut dev = GpuDevice::gtx970();
        let (ops, c, ..) = upload_problem(&mut dev, shape, 1);
        let p = dev.launch(&CudaSgemm::new(ops, c, shape)).unwrap();
        // C is 128×128 = 64KB = 2048 unique sectors; each sector is
        // touched by the two half-row STG.128s, so the L2 sees 4096
        // write requests but only 2048 distinct dirty sectors.
        assert_eq!(p.counters.l2_write_sectors, 4096);
        assert_eq!(p.mem.dram_writes, 2048);
    }

    #[test]
    fn single_buffer_doubles_barriers() {
        let shape = GemmShape {
            m: 128,
            n: 128,
            k: 64,
        };
        let mut dev = GpuDevice::gtx970();
        let (ops, c, ..) = upload_problem(&mut dev, shape, 1);
        let p2 = dev.launch(&CudaSgemm::new(ops, c, shape)).unwrap();
        let p1 = dev
            .launch(&CudaSgemm::new(ops, c, shape).with_double_buffer(false))
            .unwrap();
        assert_eq!(p1.counters.sync_insts, 2 * p2.counters.sync_insts);
        assert!(
            p1.timing.time_s > p2.timing.time_s,
            "double buffering must help"
        );
    }
}
