//! # ks-gpu-kernels — the paper's GPU kernels on the simulator
//!
//! Implements §III of the paper:
//!
//! * [`geometry`] — the [`geometry::TileGeometry`] tiling space: the
//!   paper's 128×128/16×16/8×8/rank-8 configuration as one point of a
//!   feasibility-pruned lattice; every derived quantity (thread shape,
//!   loader schedule, swizzle, register/SMEM footprint) is a function
//!   of the geometry.
//! * [`layout`] — the Fig 5 thread→track mapping and the swizzled
//!   shared-memory placement that eliminates both store and load bank
//!   conflicts (plus the naive placement, kept for the ablation bench);
//!   the paper-default specialization of [`geometry::TileSide`].
//! * [`machine`] — the [`machine::WarpMachine`] abstraction: kernels
//!   are written once and run either *functionally* (numerics on device
//!   buffers) or in *traffic* mode (pure access-pattern replay at
//!   paper-scale sizes). Both paths issue the identical warp-level
//!   instruction stream by construction.
//! * [`gemm_engine`] — the shared block-tile GEMM engine (Fig 4),
//!   parameterized over [`geometry::TileGeometry`]: register
//!   microtiles, rank-`tile_k` updates, optional double buffering.
//! * [`sgemm`] — the CUDA-C SGEMM kernel and the cuBLAS-class
//!   [`sgemm::VendorSgemm`] model.
//! * [`aux_kernels`] — squared-norm, kernel-evaluation and
//!   evaluation+summation kernels (the unfused pipeline stages).
//! * [`fused`] — Algorithm 2: fused kernel summation with the
//!   three-level reduction (intra-thread, intra-block, atomic
//!   inter-block), plus the ABFT-verified variant (checksum column,
//!   shared-memory audit, γ re-fold; DESIGN.md §11).
//! * [`fused_multi`] — the multi-weight serving kernel and the
//!   `execute_fused_multi[_verified]` batched entries.
//! * [`fused_multi_packed`] — horizontal fusion: many unrelated small
//!   queries packed into one launch behind a per-block routing table
//!   (block index → segment descriptor), with plan-cache-aware upload
//!   deduplication and per-segment ABFT reports.
//! * [`oracle`] — the geometry-aware bit-exact CPU replay of the fused
//!   kernel's reduction order (the differential-test contract).
//! * [`pipelines`] — the three end-to-end implementations of §IV:
//!   `Fused`, `CUDA-Unfused`, `cuBLAS-Unfused`.

#![warn(missing_docs)]
// Kernel bodies index explicit lane/row/column loops to mirror the
// CUDA code they model; iterator adaptors would obscure the mapping
// the paper's figures describe.
#![allow(clippy::needless_range_loop)]

pub mod aux_kernels;
pub mod fused;
pub mod fused_multi;
pub mod fused_multi_packed;
pub mod gemm_engine;
pub mod geometry;
pub mod layout;
pub mod machine;
pub mod oracle;
pub mod pipelines;
pub mod sgemm;
pub mod small_micro;

pub use fused::{FusedKernelSummation, VerifyBufs, VerifyReport, CHECKSUM_SLOT_WORDS};
pub use fused_multi::{
    execute_fused_multi, execute_fused_multi_verified, execute_fused_multi_verified_with,
    execute_fused_multi_with, FusedMultiWeight, FUSED_MULTI_PIPELINE,
    FUSED_MULTI_VERIFIED_PIPELINE, MAX_WEIGHT_COLUMNS,
};
pub use fused_multi_packed::{
    execute_fused_multi_packed_with, FusedMultiPacked, PackedSegmentSpec, RoutingTable,
    FUSED_MULTI_PACKED_PIPELINE, FUSED_MULTI_PACKED_VERIFIED_PIPELINE,
};
pub use geometry::{TileGeometry, TileSide};
pub use layout::SmemLayout;
pub use oracle::{fused_multi_oracle, fused_oracle};
pub use pipelines::{GpuKernelSummation, GpuVariant, ProblemDims, FUSED_VERIFIED_PIPELINE};
pub use sgemm::{CudaSgemm, VendorSgemm};
pub use small_micro::Sgemm4x4;

// The paper-point constants below are retained for doc references and
// external callers; the kernel modules themselves are parameterized
// over [`TileGeometry`] and must not use them (a lint test enforces
// this). They are pinned equal to `TileGeometry::paper_default()`.

/// Block tile edge: each thread block computes a 128×128 `submatrixC`.
pub const BLOCK_TILE: usize = 128;
/// Depth of one rank-update step (`tileA` is 128×8, `tileB` is 8×128).
pub const K_TILE: usize = 8;
/// Threads per block dimension (16×16 grid).
pub const THREADS_XY: usize = 16;
/// Microtile edge: each thread computes 8×8 elements of `submatrixC`.
pub const MICRO_TILE: usize = 8;
/// Threads per block.
pub const THREADS_PER_BLOCK: usize = THREADS_XY * THREADS_XY;
/// Warps per block.
pub const WARPS_PER_BLOCK: usize = THREADS_PER_BLOCK / 32;
/// Words in one shared tile (128×8).
pub const TILE_WORDS: usize = BLOCK_TILE * K_TILE;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_equal_the_default_geometry() {
        let g = TileGeometry::paper_default();
        assert_eq!(BLOCK_TILE, g.block_m);
        assert_eq!(BLOCK_TILE, g.block_n);
        assert_eq!(K_TILE, g.tile_k);
        assert_eq!(MICRO_TILE, g.micro_m);
        assert_eq!(MICRO_TILE, g.micro_n);
        assert_eq!(THREADS_XY, g.threads_x());
        assert_eq!(THREADS_PER_BLOCK, g.threads_per_block());
        assert_eq!(WARPS_PER_BLOCK, g.warps_per_block());
        assert_eq!(TILE_WORDS, g.a_tile_words());
    }

    /// Lint-style guard (the "latent assumption hunt" satellite):
    /// once parameterized, the geometry-generalized modules must not
    /// reach for the paper-point constants again — a reappearing
    /// `BLOCK_TILE`/`K_TILE`/`MICRO_TILE`/`THREADS_XY` literal in one
    /// of them means a hardcoded 128/16/8 assumption crept back in.
    #[test]
    fn generalized_modules_do_not_use_paper_constants() {
        let banned = [
            "BLOCK_TILE",
            "K_TILE",
            "MICRO_TILE",
            "THREADS_XY",
            "THREADS_PER_BLOCK",
            "WARPS_PER_BLOCK",
            "TILE_WORDS",
        ];
        for (name, src) in [
            ("geometry.rs", include_str!("geometry.rs")),
            ("gemm_engine.rs", include_str!("gemm_engine.rs")),
            ("fused.rs", include_str!("fused.rs")),
            ("fused_multi.rs", include_str!("fused_multi.rs")),
            ("oracle.rs", include_str!("oracle.rs")),
        ] {
            for b in banned {
                assert!(
                    !src.contains(b),
                    "{name} references paper-point constant {b}; \
                     use TileGeometry fields instead"
                );
            }
        }
    }
}
