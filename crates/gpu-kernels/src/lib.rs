//! # ks-gpu-kernels — the paper's GPU kernels on the simulator
//!
//! Implements §III of the paper:
//!
//! * [`layout`] — the Fig 5 thread→track mapping and the swizzled
//!   shared-memory placement that eliminates both store and load bank
//!   conflicts (plus the naive placement, kept for the ablation bench).
//! * [`machine`] — the [`machine::WarpMachine`] abstraction: kernels
//!   are written once and run either *functionally* (numerics on device
//!   buffers) or in *traffic* mode (pure access-pattern replay at
//!   paper-scale sizes). Both paths issue the identical warp-level
//!   instruction stream by construction.
//! * [`gemm_engine`] — the shared 128×128-tile GEMM block engine
//!   (Fig 4): 16×16 threads, 8×8 microtiles, rank-8 updates, double
//!   buffering.
//! * [`sgemm`] — the CUDA-C SGEMM kernel and the cuBLAS-class
//!   [`sgemm::VendorSgemm`] model.
//! * [`aux_kernels`] — squared-norm, kernel-evaluation and
//!   evaluation+summation kernels (the unfused pipeline stages).
//! * [`fused`] — Algorithm 2: fused kernel summation with the
//!   three-level reduction (intra-thread, intra-block, atomic
//!   inter-block), plus the ABFT-verified variant (checksum column,
//!   shared-memory audit, γ re-fold; DESIGN.md §11).
//! * [`fused_multi`] — the multi-weight serving kernel and the
//!   `execute_fused_multi[_verified]` batched entries.
//! * [`pipelines`] — the three end-to-end implementations of §IV:
//!   `Fused`, `CUDA-Unfused`, `cuBLAS-Unfused`.

#![warn(missing_docs)]
// Kernel bodies index explicit lane/row/column loops to mirror the
// CUDA code they model; iterator adaptors would obscure the mapping
// the paper's figures describe.
#![allow(clippy::needless_range_loop)]

pub mod aux_kernels;
pub mod fused;
pub mod fused_multi;
pub mod gemm_engine;
pub mod layout;
pub mod machine;
pub mod pipelines;
pub mod sgemm;
pub mod small_micro;

pub use fused::{FusedKernelSummation, VerifyBufs, VerifyReport, CHECKSUM_SLOT_WORDS};
pub use fused_multi::{
    execute_fused_multi, execute_fused_multi_verified, FusedMultiWeight, FUSED_MULTI_PIPELINE,
    FUSED_MULTI_VERIFIED_PIPELINE, MAX_WEIGHT_COLUMNS,
};
pub use layout::SmemLayout;
pub use pipelines::{GpuKernelSummation, GpuVariant, ProblemDims, FUSED_VERIFIED_PIPELINE};
pub use sgemm::{CudaSgemm, VendorSgemm};
pub use small_micro::Sgemm4x4;

/// Block tile edge: each thread block computes a 128×128 `submatrixC`.
pub const BLOCK_TILE: usize = 128;
/// Depth of one rank-update step (`tileA` is 128×8, `tileB` is 8×128).
pub const K_TILE: usize = 8;
/// Threads per block dimension (16×16 grid).
pub const THREADS_XY: usize = 16;
/// Microtile edge: each thread computes 8×8 elements of `submatrixC`.
pub const MICRO_TILE: usize = 8;
/// Threads per block.
pub const THREADS_PER_BLOCK: usize = THREADS_XY * THREADS_XY;
/// Warps per block.
pub const WARPS_PER_BLOCK: usize = THREADS_PER_BLOCK / 32;
/// Words in one shared tile (128×8).
pub const TILE_WORDS: usize = BLOCK_TILE * K_TILE;
