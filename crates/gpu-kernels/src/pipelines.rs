//! The three end-to-end kernel-summation implementations of §IV.
//!
//! | Variant | Kernels launched |
//! |---|---|
//! | `Fused` | norms(A), norms(B), fused kernel summation |
//! | `CUDA-Unfused` | norms(A), norms(B), CUDA-C SGEMM → C, eval+sum |
//! | `cuBLAS-Unfused` | norms(A), norms(B), vendor SGEMM → C, eval+sum |
//!
//! Each variant can be **executed** (functional numerics + profile) or
//! **profiled** (traffic replay over virtual buffers — usable at the
//! paper's largest `M = 524288`, where the intermediate matrix alone
//! would be 2 GB).

use ks_gpu_sim::buffer::BufId;
use ks_gpu_sim::device::GpuDevice;
use ks_gpu_sim::kernel::{Kernel, LaunchError};
use ks_gpu_sim::profiler::PipelineProfile;

use crate::aux_kernels::{Bandwidth, EvalSumKernel, NormsKernel};
use crate::fused::{FusedKernelSummation, VerifyBufs, VerifyReport, CHECKSUM_SLOT_WORDS};
use crate::gemm_engine::{GemmOperands, GemmShape};
use crate::geometry::TileGeometry;
use crate::layout::SmemLayout;
use crate::sgemm::{CudaSgemm, VendorSgemm};

/// Pipeline label of the ABFT-verified fused variant.
pub const FUSED_VERIFIED_PIPELINE: &str = "Fused-ABFT";

/// Kernel-summation problem dimensions: `A` is M×K (sources, row-major),
/// `B` is K×N (targets, col-major), `W ∈ R^N`, `V ∈ R^M`.
///
/// Note on the paper's notation: Equation (2) writes the sum per target
/// point; Algorithm 2 (which we follow) produces one output per *row*
/// of `A`, i.e. `V = K·W`. The two are the same computation with the
/// roles of the point sets swapped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProblemDims {
    /// Number of source points (rows of A and of C).
    pub m: usize,
    /// Number of target points (columns of B and of C).
    pub n: usize,
    /// Dimension of the point space (the paper's K).
    pub k: usize,
}

impl ProblemDims {
    /// As a GEMM shape.
    #[must_use]
    pub fn shape(&self) -> GemmShape {
        GemmShape {
            m: self.m,
            n: self.n,
            k: self.k,
        }
    }

    /// Validates the tiling constraints.
    ///
    /// # Panics
    /// Panics if the dimensions violate them.
    pub fn validate(&self) {
        self.shape().validate();
    }
}

/// Which implementation to run (§IV: "three different implementations
/// of kernel summation problem are run and compared").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GpuVariant {
    /// The paper's contribution (§III).
    Fused,
    /// Own SGEMM + separate evaluation/summation kernel.
    CudaUnfused,
    /// Vendor (cuBLAS-model) SGEMM + separate evaluation/summation.
    CublasUnfused,
}

impl GpuVariant {
    /// All three variants in the paper's presentation order.
    pub const ALL: [GpuVariant; 3] = [
        GpuVariant::Fused,
        GpuVariant::CudaUnfused,
        GpuVariant::CublasUnfused,
    ];

    /// The paper's label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            GpuVariant::Fused => "Fused",
            GpuVariant::CudaUnfused => "CUDA-Unfused",
            GpuVariant::CublasUnfused => "cuBLAS-Unfused",
        }
    }
}

/// Configured kernel-summation pipeline factory.
#[derive(Debug, Clone, Copy)]
pub struct GpuKernelSummation {
    /// Problem dimensions.
    pub dims: ProblemDims,
    /// Gaussian bandwidth.
    pub bw: Bandwidth,
    /// Shared-memory placement for the GEMM-structured kernels.
    pub layout: SmemLayout,
    /// Double buffering for the GEMM-structured kernels.
    pub double_buffer: bool,
    /// Tile geometry of the fused kernel (the autotuner's knob; the
    /// SGEMM-structured kernels stay at the paper point).
    pub geometry: TileGeometry,
}

struct DeviceBufs {
    ops: GemmOperands,
    a2: BufId,
    b2: BufId,
    w: BufId,
    v: BufId,
    c: Option<BufId>,
}

impl GpuKernelSummation {
    /// Creates a pipeline factory with the paper's default options.
    ///
    /// # Panics
    /// Panics if the dimensions violate the tiling constraints or the
    /// bandwidth is invalid.
    #[must_use]
    pub fn new(m: usize, n: usize, k: usize, h: f32) -> Self {
        let dims = ProblemDims { m, n, k };
        dims.validate();
        let bw = Bandwidth { h };
        let _ = bw.inv_2h2(); // validates h
        Self {
            dims,
            bw,
            layout: SmemLayout::default(),
            double_buffer: true,
            geometry: TileGeometry::paper_default(),
        }
    }

    /// Overrides the shared-memory layout (ablation).
    #[must_use]
    pub fn with_layout(mut self, layout: SmemLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Overrides double buffering (ablation).
    #[must_use]
    pub fn with_double_buffer(mut self, on: bool) -> Self {
        self.double_buffer = on;
        self
    }

    /// Overrides the fused kernel's tile geometry (the tuned path).
    ///
    /// # Panics
    /// Panics if the dimensions violate the geometry's constraints.
    #[must_use]
    pub fn with_geometry(mut self, geometry: TileGeometry) -> Self {
        self.dims.shape().validate_for(&geometry);
        self.geometry = geometry;
        self
    }

    fn kernels(&self, variant: GpuVariant, bufs: &DeviceBufs) -> Vec<Box<dyn Kernel>> {
        let d = self.dims;
        let mut ks: Vec<Box<dyn Kernel>> = vec![
            Box::new(NormsKernel::new(bufs.ops.a, bufs.a2, d.m, d.k, "a")),
            Box::new(NormsKernel::new(bufs.ops.b, bufs.b2, d.n, d.k, "b")),
        ];
        match variant {
            GpuVariant::Fused => {
                ks.push(Box::new(
                    FusedKernelSummation::new(
                        bufs.ops,
                        bufs.a2,
                        bufs.b2,
                        bufs.w,
                        bufs.v,
                        d.shape(),
                        self.bw,
                    )
                    .with_geometry(self.geometry)
                    .with_layout(self.layout)
                    .with_double_buffer(self.double_buffer),
                ));
            }
            GpuVariant::CudaUnfused | GpuVariant::CublasUnfused => {
                let c = bufs
                    .c
                    .expect("unfused pipelines need the intermediate buffer");
                if variant == GpuVariant::CudaUnfused {
                    ks.push(Box::new(
                        CudaSgemm::new(bufs.ops, c, d.shape())
                            .with_layout(self.layout)
                            .with_double_buffer(self.double_buffer),
                    ));
                } else {
                    ks.push(Box::new(VendorSgemm::new(bufs.ops, c, d.shape())));
                }
                ks.push(Box::new(EvalSumKernel::new(
                    c, bufs.a2, bufs.b2, bufs.w, bufs.v, d.m, d.n, self.bw,
                )));
            }
        }
        ks
    }

    fn alloc_bufs(
        &self,
        dev: &mut GpuDevice,
        variant: GpuVariant,
        data: Option<(&[f32], &[f32], &[f32])>,
    ) -> DeviceBufs {
        let d = self.dims;
        let needs_c = variant != GpuVariant::Fused;
        match data {
            Some((a, b, w)) => {
                assert_eq!(a.len(), d.m * d.k, "A must be M·K elements");
                assert_eq!(b.len(), d.k * d.n, "B must be K·N elements");
                assert_eq!(w.len(), d.n, "W must be N elements");
                DeviceBufs {
                    ops: GemmOperands {
                        a: dev.upload(a),
                        b: dev.upload(b),
                    },
                    a2: dev.alloc(d.m),
                    b2: dev.alloc(d.n),
                    w: dev.upload(w),
                    v: dev.alloc(d.m),
                    c: needs_c.then(|| dev.alloc(d.m * d.n)),
                }
            }
            None => DeviceBufs {
                ops: GemmOperands {
                    a: dev.alloc_virtual(d.m * d.k),
                    b: dev.alloc_virtual(d.k * d.n),
                },
                a2: dev.alloc_virtual(d.m),
                b2: dev.alloc_virtual(d.n),
                w: dev.alloc_virtual(d.n),
                v: dev.alloc_virtual(d.m),
                c: needs_c.then(|| dev.alloc_virtual(d.m * d.n)),
            },
        }
    }

    /// Profiles a variant on a fresh (cold-cache) device using virtual
    /// buffers: works at any problem size, no numerics.
    ///
    /// # Errors
    /// Propagates launch-validation failures.
    pub fn profile(
        &self,
        dev: &mut GpuDevice,
        variant: GpuVariant,
    ) -> Result<PipelineProfile, LaunchError> {
        let bufs = self.alloc_bufs(dev, variant, None);
        dev.invalidate_l2();
        let mut prof = PipelineProfile::new(variant.label());
        for k in self.kernels(variant, &bufs) {
            prof.kernels.push(dev.launch(k.as_ref())?);
        }
        Ok(prof)
    }

    /// Executes a variant functionally **and** profiles it. Returns
    /// `(V, profile)`.
    ///
    /// # Errors
    /// Propagates launch-validation failures.
    pub fn execute(
        &self,
        dev: &mut GpuDevice,
        variant: GpuVariant,
        a: &[f32],
        b: &[f32],
        w: &[f32],
    ) -> Result<(Vec<f32>, PipelineProfile), LaunchError> {
        let bufs = self.alloc_bufs(dev, variant, Some((a, b, w)));
        dev.invalidate_l2();
        dev.memset_zero(bufs.v); // cudaMemset before the atomic reduction
        let mut prof = PipelineProfile::new(variant.label());
        for k in self.kernels(variant, &bufs) {
            prof.kernels.push(dev.launch(k.as_ref())?);
            dev.run(k.as_ref())?;
        }
        Ok((dev.download(bufs.v), prof))
    }

    fn verified_kernels(&self, bufs: &DeviceBufs, vb: VerifyBufs) -> Vec<Box<dyn Kernel>> {
        let d = self.dims;
        vec![
            Box::new(NormsKernel::new(bufs.ops.a, bufs.a2, d.m, d.k, "a")),
            Box::new(NormsKernel::new(bufs.ops.b, bufs.b2, d.n, d.k, "b")),
            Box::new(
                FusedKernelSummation::new(
                    bufs.ops,
                    bufs.a2,
                    bufs.b2,
                    bufs.w,
                    bufs.v,
                    d.shape(),
                    self.bw,
                )
                .with_geometry(self.geometry)
                .with_layout(self.layout)
                .with_double_buffer(self.double_buffer)
                .with_verify(vb),
            ),
        ]
    }

    /// Profiles the ABFT-verified fused pipeline (traffic replay over
    /// virtual buffers) — the counterpart of [`Self::profile`] with
    /// `GpuVariant::Fused`, used to measure the verification overhead.
    ///
    /// # Errors
    /// Propagates launch-validation failures.
    pub fn profile_verified(&self, dev: &mut GpuDevice) -> Result<PipelineProfile, LaunchError> {
        let bufs = self.alloc_bufs(dev, GpuVariant::Fused, None);
        let vb = VerifyBufs {
            checksum: dev
                .alloc_virtual((self.dims.m / self.geometry.block_m) * CHECKSUM_SLOT_WORDS),
            flag: dev.alloc_virtual(CHECKSUM_SLOT_WORDS),
        };
        dev.invalidate_l2();
        let mut prof = PipelineProfile::new(FUSED_VERIFIED_PIPELINE);
        for k in self.verified_kernels(&bufs, vb) {
            prof.kernels.push(dev.launch(k.as_ref())?);
        }
        Ok(prof)
    }

    /// Executes the fused variant with ABFT verification: the fused
    /// kernel audits its shared tiles, re-folds γ, digests the `T`
    /// drain and emits a per-row-group checksum column, which the host
    /// compares against `V`. Returns `(V, profile, report)`; the
    /// result must not be used when the report says corruption was
    /// detected.
    ///
    /// # Errors
    /// Propagates launch-validation failures and injected launch-level
    /// faults.
    pub fn execute_verified(
        &self,
        dev: &mut GpuDevice,
        a: &[f32],
        b: &[f32],
        w: &[f32],
    ) -> Result<(Vec<f32>, PipelineProfile, VerifyReport), LaunchError> {
        let bufs = self.alloc_bufs(dev, GpuVariant::Fused, Some((a, b, w)));
        let vb = VerifyBufs {
            checksum: dev.alloc((self.dims.m / self.geometry.block_m) * CHECKSUM_SLOT_WORDS),
            flag: dev.alloc(CHECKSUM_SLOT_WORDS),
        };
        dev.invalidate_l2();
        dev.memset_zero(bufs.v); // cudaMemset before the atomic reduction
        dev.memset_zero(vb.checksum);
        dev.memset_zero(vb.flag);
        let mut prof = PipelineProfile::new(FUSED_VERIFIED_PIPELINE);
        for k in self.verified_kernels(&bufs, vb) {
            let mut kp = dev.launch(k.as_ref())?;
            dev.run(k.as_ref())?;
            kp.faults.merge(&dev.take_fault_counters());
            prof.kernels.push(kp);
        }
        let v = dev.download(bufs.v);
        let report = VerifyReport::from_outputs(
            &v,
            &dev.download(vb.checksum),
            &dev.download(vb.flag),
            self.dims.m,
            1,
            self.geometry.block_m,
        );
        Ok((v, prof, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aux_kernels::gaussian;

    fn lcg(seed: u64) -> impl FnMut() -> f32 {
        let mut state = seed | 1;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        }
    }

    fn problem(m: usize, n: usize, k: usize, seed: u64) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let mut next = lcg(seed);
        (
            (0..m * k).map(|_| next() * 0.5).collect(),
            (0..k * n).map(|_| next() * 0.5).collect(),
            (0..n).map(|_| next()).collect(),
        )
    }

    fn cpu_reference(
        a: &[f32],
        b: &[f32],
        w: &[f32],
        m: usize,
        n: usize,
        k: usize,
        h: f32,
    ) -> Vec<f32> {
        let s = Bandwidth { h }.inv_2h2();
        (0..m)
            .map(|i| {
                (0..n)
                    .map(|j| {
                        let d: f32 = (0..k).map(|t| (a[i * k + t] - b[j * k + t]).powi(2)).sum();
                        gaussian(d, s) * w[j]
                    })
                    .sum()
            })
            .collect()
    }

    #[test]
    fn all_three_variants_agree_with_cpu() {
        let (m, n, k, h) = (128, 256, 16, 0.9);
        let (a, b, w) = problem(m, n, k, 77);
        let want = cpu_reference(&a, &b, &w, m, n, k, h);
        for variant in GpuVariant::ALL {
            let mut dev = GpuDevice::gtx970();
            let ks = GpuKernelSummation::new(m, n, k, h);
            let (got, prof) = ks.execute(&mut dev, variant, &a, &b, &w).unwrap();
            assert_eq!(
                prof.kernels.len(),
                if variant == GpuVariant::Fused { 3 } else { 4 }
            );
            for (i, (g, wv)) in got.iter().zip(want.iter()).enumerate() {
                assert!(
                    (g - wv).abs() < 3e-3 * wv.abs().max(1.0),
                    "{} row {i}: {g} vs {wv}",
                    variant.label()
                );
            }
        }
    }

    #[test]
    fn fused_has_far_fewer_dram_transactions() {
        // Fig 8b: "the number of DRAM transactions in Fused is less
        // than 10% of cuBLAS-Unfused in all problem sizes".
        let ks = GpuKernelSummation::new(1024, 1024, 32, 1.0);
        let mut d1 = GpuDevice::gtx970();
        let fused = ks.profile(&mut d1, GpuVariant::Fused).unwrap();
        let mut d2 = GpuDevice::gtx970();
        let unfused = ks.profile(&mut d2, GpuVariant::CublasUnfused).unwrap();
        let ratio = fused.total_mem().dram_transactions() as f64
            / unfused.total_mem().dram_transactions() as f64;
        assert!(ratio < 0.10, "DRAM ratio {ratio}");
    }

    #[test]
    fn fused_is_faster_at_low_k() {
        // Fig 6: speedup > 1 for K = 32.
        let ks = GpuKernelSummation::new(8192, 1024, 32, 1.0);
        let mut d1 = GpuDevice::gtx970();
        let fused = ks.profile(&mut d1, GpuVariant::Fused).unwrap();
        let mut d2 = GpuDevice::gtx970();
        let unfused = ks.profile(&mut d2, GpuVariant::CublasUnfused).unwrap();
        let speedup = unfused.total_time_s() / fused.total_time_s();
        assert!(speedup > 1.0, "speedup {speedup}");
    }

    #[test]
    fn profile_works_at_paper_scale_virtually() {
        // M = 65536 with a virtual intermediate (256 MB would be real).
        let ks = GpuKernelSummation::new(65536, 1024, 32, 1.0);
        let mut dev = GpuDevice::gtx970();
        let prof = ks.profile(&mut dev, GpuVariant::CublasUnfused).unwrap();
        assert!(prof.total_mem().dram_transactions() > 0);
        assert!(prof.total_time_s() > 0.0);
    }

    #[test]
    fn variant_labels() {
        assert_eq!(GpuVariant::Fused.label(), "Fused");
        assert_eq!(GpuVariant::CudaUnfused.label(), "CUDA-Unfused");
        assert_eq!(GpuVariant::CublasUnfused.label(), "cuBLAS-Unfused");
    }

    #[test]
    #[should_panic(expected = "A must be")]
    fn execute_rejects_bad_input_lengths() {
        let ks = GpuKernelSummation::new(128, 128, 8, 1.0);
        let mut dev = GpuDevice::gtx970();
        let _ = ks.execute(
            &mut dev,
            GpuVariant::Fused,
            &[0.0; 10],
            &[0.0; 1024],
            &[0.0; 128],
        );
    }

    #[test]
    fn execute_verified_matches_plain_fused_and_reports_clean() {
        let (m, n, k, h) = (256, 256, 16, 0.9);
        let (a, b, w) = problem(m, n, k, 78);
        let ks = GpuKernelSummation::new(m, n, k, h);
        let mut d1 = GpuDevice::gtx970();
        let (plain, _) = ks.execute(&mut d1, GpuVariant::Fused, &a, &b, &w).unwrap();
        let mut d2 = GpuDevice::gtx970();
        let (got, prof, report) = ks.execute_verified(&mut d2, &a, &b, &w).unwrap();
        assert_eq!(prof.name, FUSED_VERIFIED_PIPELINE);
        assert_eq!(prof.kernels.len(), 3);
        assert!(prof.kernels[2].name.contains("_abft"));
        assert!(!report.corruption_detected(), "{report:?}");
        for (g, p) in got.iter().zip(plain.iter()) {
            // run() reduces atomics in nondeterministic order; compare
            // with the usual float tolerance rather than bitwise.
            assert!((g - p).abs() < 1e-4 * p.abs().max(1.0), "{g} vs {p}");
        }
    }

    #[test]
    fn verification_adds_at_most_two_percent_dram_traffic() {
        // ISSUE 5 acceptance gate: on the smoke grid (K = 32,
        // M ∈ {1024, 8192}, N = 1024) the ABFT variant must stay
        // within 2% of the unverified fused pipeline's simulated DRAM
        // transactions.
        for m in [1024usize, 8192] {
            let ks = GpuKernelSummation::new(m, 1024, 32, 1.0);
            let mut d1 = GpuDevice::gtx970();
            let plain = ks.profile(&mut d1, GpuVariant::Fused).unwrap();
            let mut d2 = GpuDevice::gtx970();
            let verified = ks.profile_verified(&mut d2).unwrap();
            let ratio = verified.total_mem().dram_transactions() as f64
                / plain.total_mem().dram_transactions() as f64;
            assert!(
                (1.0..=1.02).contains(&ratio),
                "M={m}: verified/plain DRAM ratio {ratio}"
            );
        }
    }
}
