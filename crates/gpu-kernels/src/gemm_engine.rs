//! The shared block-tile GEMM engine (paper §III-A, Fig 4),
//! parameterized over [`TileGeometry`].
//!
//! One thread block of `threads_x × threads_y` threads computes a
//! `block_m × block_n` `submatrixC` as `Σ_i tileA_i × tileB_i` with
//! rank-`tile_k` updates: `tileA` is `block_m × tile_k` (rows of A),
//! `tileB` is `tile_k × block_n` (columns of B). Each thread owns a
//! `micro_m × micro_n` `microtileC` in registers. Tiles are staged in
//! shared memory with the generalized Fig 5 swizzle
//! ([`crate::geometry::TileSide`]) and — at depth 2 — double-buffered
//! so the loads of tile `i+1` overlap the compute of tile `i`
//! (Algorithm 2 lines 5–13). At [`TileGeometry::paper_default`] every
//! loop below reduces to the paper's hand-written schedule.
//!
//! The engine is generic over [`WarpMachine`], so the same code path
//! produces numerics (functional mode) and transaction counts
//! (traffic mode).

use ks_gpu_sim::access::{affine_lanes, AccessSpec, GlobalPattern, SharedPattern};
use ks_gpu_sim::buffer::BufId;
use ks_gpu_sim::kernel::VecWidth;
use ks_gpu_sim::trace::AccessDir;
use ks_gpu_sim::traffic::WarpIdx;

use crate::geometry::TileGeometry;
use crate::layout::SmemLayout;
use crate::machine::WarpMachine;

/// Largest supported microtile edge (bounds the per-lane operand
/// fragment arrays; the feasibility lattice never exceeds it).
pub const MAX_MICRO: usize = 16;

/// Per-block accumulator grid: one `micro_m × micro_n` register
/// microtile per thread, stored flat. In traffic mode use
/// [`AccGrid::empty`] — no data is touched.
#[derive(Debug, Clone, PartialEq)]
pub struct AccGrid {
    data: Vec<f32>,
    micro_m: usize,
    micro_n: usize,
}

impl AccGrid {
    /// Fresh zeroed accumulators for one block of `geo`.
    #[must_use]
    pub fn for_geometry(geo: &TileGeometry) -> Self {
        Self {
            data: vec![0.0; geo.threads_per_block() * geo.micro_m * geo.micro_n],
            micro_m: geo.micro_m,
            micro_n: geo.micro_n,
        }
    }

    /// A data-less grid for traffic mode.
    #[must_use]
    pub fn empty(geo: &TileGeometry) -> Self {
        Self {
            data: Vec::new(),
            micro_m: geo.micro_m,
            micro_n: geo.micro_n,
        }
    }

    /// True when no data is carried (traffic mode).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat length of the grid.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Element `(r, c)` of thread `tid`'s microtile.
    #[inline]
    #[must_use]
    pub fn at(&self, tid: usize, r: usize, c: usize) -> f32 {
        self.data[(tid * self.micro_m + r) * self.micro_n + c]
    }

    /// Mutable element `(r, c)` of thread `tid`'s microtile.
    #[inline]
    pub fn at_mut(&mut self, tid: usize, r: usize, c: usize) -> &mut f32 {
        &mut self.data[(tid * self.micro_m + r) * self.micro_n + c]
    }

    /// XORs `mask` into the bit pattern of flat accumulator slot
    /// `idx mod len` (the register-file fault-injection hook).
    pub fn flip_bits(&mut self, idx: u64, mask: u32) {
        let n = self.data.len() as u64;
        if n > 0 {
            let slot = (idx % n) as usize;
            self.data[slot] = f32::from_bits(self.data[slot].to_bits() ^ mask);
        }
    }
}

/// Operand matrices of the GEMM: `a` is M×K row-major, `b` is K×N
/// column-major — both *point-contiguous* along K, as the paper
/// requires.
#[derive(Debug, Clone, Copy)]
pub struct GemmOperands {
    /// Source-point matrix A (M×K, row-major).
    pub a: BufId,
    /// Target-point matrix B (K×N, column-major).
    pub b: BufId,
}

/// Problem dimensions. The engine requires the shape to divide the
/// tile geometry exactly (the paper's sweeps satisfy this; fringe
/// tiles are out of scope — see DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmShape {
    /// Rows of A and C.
    pub m: usize,
    /// Columns of B and C.
    pub n: usize,
    /// Inner dimension.
    pub k: usize,
}

impl GemmShape {
    /// Validates divisibility against the paper-default geometry.
    ///
    /// # Panics
    /// Panics if the shape violates the tiling constraints.
    pub fn validate(&self) {
        self.validate_for(&TileGeometry::paper_default());
    }

    /// Validates divisibility against `geo`.
    ///
    /// # Panics
    /// Panics if the shape violates the tiling constraints.
    pub fn validate_for(&self, geo: &TileGeometry) {
        assert!(self.m > 0 && self.n > 0 && self.k > 0, "empty GEMM shape");
        assert!(
            self.m.is_multiple_of(geo.block_m),
            "M = {} must be a multiple of {}",
            self.m,
            geo.block_m
        );
        assert!(
            self.n.is_multiple_of(geo.block_n),
            "N = {} must be a multiple of {}",
            self.n,
            geo.block_n
        );
        assert!(
            self.k.is_multiple_of(geo.tile_k),
            "K = {} must be a multiple of {}",
            self.k,
            geo.tile_k
        );
    }

    /// Grid extent at the paper-default geometry: `(N/128, M/128)`.
    #[must_use]
    pub fn grid(&self) -> (u32, u32) {
        self.grid_for(&TileGeometry::paper_default())
    }

    /// Grid extent at `geo`: `(N/block_n, M/block_m)`.
    #[must_use]
    pub fn grid_for(&self, geo: &TileGeometry) -> (u32, u32) {
        geo.grid_for(self.m, self.n)
    }
}

/// Word offsets of the shared-memory buffers. At depth 2 the block
/// holds two tile pairs; at depth 1 both parities alias the same
/// pair. `T` (the reduction scratch of Algorithm 2) reuses an A tile.
#[derive(Debug, Clone, Copy)]
pub struct SmemMap {
    /// Word offsets of sharedA0 / sharedA1.
    pub a: [u32; 2],
    /// Word offsets of sharedB0 / sharedB1.
    pub b: [u32; 2],
    /// Total shared words.
    pub words: u32,
}

impl SmemMap {
    /// Builds the map for single- or double-buffered operation at the
    /// paper-default tile extents.
    #[must_use]
    pub fn new(double_buffer: bool) -> Self {
        let mut geo = TileGeometry::paper_default();
        geo.double_buffer_depth = if double_buffer { 2 } else { 1 };
        Self::for_geometry(&geo)
    }

    /// Builds the map for `geo`.
    #[must_use]
    pub fn for_geometry(geo: &TileGeometry) -> Self {
        let ta = geo.a_tile_words() as u32;
        let tb = geo.b_tile_words() as u32;
        if geo.double_buffer_depth == 2 {
            Self {
                a: [0, ta],
                b: [2 * ta, 2 * ta + tb],
                words: 2 * (ta + tb),
            }
        } else {
            Self {
                a: [0, 0],
                b: [ta, ta],
                words: ta + tb,
            }
        }
    }

    /// Shared-memory bytes per block.
    #[must_use]
    pub fn bytes(&self) -> u32 {
        self.words * 4
    }
}

/// Loads `tileA[kt]` and `tileB[kt]` into the shared buffers at
/// `smem_a` / `smem_b` (generalized Fig 5 store pattern: the first
/// half of the block's warps load A, the second half B, covering the
/// tracks in `loader_slots / loader_warps` passes; conflict-free
/// stores at every feasible geometry).
///
/// Returns the XOR of the bit patterns of all stored words — the
/// *staged checksum* of the tile pair, computed for free while the
/// values pass through registers. [`gemm_block_verified`] compares it
/// against a post-compute [`audit_tile`] re-read to detect shared-
/// memory corruption. Traffic mode returns 0.
#[allow(clippy::too_many_arguments)] // mirrors the CUDA kernel's parameter list
pub fn load_tiles<M: WarpMachine>(
    mach: &mut M,
    geo: &TileGeometry,
    ops: &GemmOperands,
    shape: &GemmShape,
    layout: SmemLayout,
    bx: usize,
    by: usize,
    kt: usize,
    smem_a: u32,
    smem_b: u32,
) -> u32 {
    let k = shape.k;
    let l = geo.loader_warps();
    let chunks = geo.tile_k / 4;
    let mut staged = 0u32;
    for w in 0..geo.warps_per_block() {
        mach.begin_warp(w as u32);
        // Halves: the first `l` warps fetch tileA (point base = row),
        // the rest fetch tileB (point base = column).
        let (buf, point0, wl, side, dst) = if w < l {
            (ops.a, by * geo.block_m, w, geo.side_a(), smem_a)
        } else {
            (ops.b, bx * geo.block_n, w - l, geo.side_b(), smem_b)
        };
        let passes = side.loader_slots() / l;
        for pass in 0..passes {
            let slot = pass * l + wl;
            let track_base = |u: usize| {
                let (m, c) = side.loader_track(slot, u);
                (m, c, (point0 + m * side.micro + c) * k + kt * geo.tile_k)
            };
            // Each lane fetches one `tile_k`-element track as LDG.128s.
            mach.alu(2); // address computation
            let mut track_vals = vec![[0.0f32; 32]; geo.tile_k];
            for chunk in 0..chunks {
                let idx: WarpIdx = std::array::from_fn(|u| Some(track_base(u).2 + 4 * chunk));
                let v = mach.ld_global(buf, &idx, VecWidth::V4);
                if M::FUNCTIONAL {
                    for u in 0..32 {
                        for e in 0..4 {
                            track_vals[4 * chunk + e][u] = v[u][e];
                        }
                    }
                }
            }
            // `tile_k` store phases: phase kk writes one full 32-bank
            // row in the swizzled layout (no store conflicts).
            for (kk, phase_vals) in track_vals.iter().enumerate() {
                let words: [Option<u32>; 32] = std::array::from_fn(|u| {
                    let (m, c, _) = track_base(u);
                    Some(dst + side.word(layout, m, c, kk))
                });
                let vals: [[f32; 4]; 32] = std::array::from_fn(|u| [phase_vals[u], 0.0, 0.0, 0.0]);
                if M::FUNCTIONAL {
                    for v in &vals {
                        staged ^= v[0].to_bits();
                    }
                }
                mach.st_shared(&words, VecWidth::V1, &vals);
            }
        }
    }
    staged
}

/// Re-reads one tile buffer of `words` words and returns the XOR of
/// its bit patterns (0 in traffic mode). The read is conflict-free:
/// each warp covers `words / warps` contiguous words in single-word
/// phases of 32 consecutive words, so the 32 lanes of every phase hit
/// 32 distinct banks.
pub fn audit_tile<M: WarpMachine>(
    mach: &mut M,
    geo: &TileGeometry,
    words: usize,
    base: u32,
) -> u32 {
    let phases = geo.audit_phases(words) as u32;
    let mut digest = 0u32;
    for w in 0..geo.warps_per_block() as u32 {
        mach.begin_warp(w);
        for phase in 0..phases {
            let words: [Option<u32>; 32] =
                std::array::from_fn(|lane| Some(base + (w * phases + phase) * 32 + lane as u32));
            let v = mach.ld_shared(&words, VecWidth::V1);
            if M::FUNCTIONAL {
                for lane in &v {
                    digest ^= lane[0].to_bits();
                }
            }
        }
    }
    digest
}

fn audit_pair<M: WarpMachine>(mach: &mut M, geo: &TileGeometry, smem_a: u32, smem_b: u32) -> u32 {
    audit_tile(mach, geo, geo.a_tile_words(), smem_a)
        ^ audit_tile(mach, geo, geo.b_tile_words(), smem_b)
}

/// One rank-`tile_k` update: every thread multiplies its
/// `microtileA_ty` column slice by its `microtileB_tx` row slice for
/// each of the `tile_k` k-steps, accumulating into `acc` (functional
/// mode only).
pub fn compute_ktile<M: WarpMachine>(
    mach: &mut M,
    geo: &TileGeometry,
    layout: SmemLayout,
    smem_a: u32,
    smem_b: u32,
    acc: &mut AccGrid,
) {
    let (sa, sb) = (geo.side_a(), geo.side_b());
    let txn = geo.threads_x();
    let rpw = geo.rows_per_warp();
    let (mm, mn) = (geo.micro_m, geo.micro_n);
    for w in 0..geo.warps_per_block() {
        mach.begin_warp(w as u32);
        mach.alu(2); // loop/index overhead per warp per tile
        for kk in 0..geo.tile_k {
            // A operand: lane (tx, ty) reads the micro_m track values
            // of microtileA_ty as LDS.64 pairs (2 tracks each).
            let mut a_vals = [[0.0f32; MAX_MICRO]; 32];
            for j in 0..sa.pairs() {
                let words: [Option<u32>; 32] = std::array::from_fn(|lane| {
                    let ty = rpw * w + lane / txn;
                    Some(smem_a + sa.pair_base(layout, ty, kk, j))
                });
                let v = mach.ld_shared(&words, VecWidth::V2);
                if M::FUNCTIONAL {
                    for lane in 0..32 {
                        a_vals[lane][2 * j] = v[lane][0];
                        a_vals[lane][2 * j + 1] = v[lane][1];
                    }
                }
            }
            // B operand: microtileB_tx.
            let mut b_vals = [[0.0f32; MAX_MICRO]; 32];
            for j in 0..sb.pairs() {
                let words: [Option<u32>; 32] = std::array::from_fn(|lane| {
                    let tx = lane % txn;
                    Some(smem_b + sb.pair_base(layout, tx, kk, j))
                });
                let v = mach.ld_shared(&words, VecWidth::V2);
                if M::FUNCTIONAL {
                    for lane in 0..32 {
                        b_vals[lane][2 * j] = v[lane][0];
                        b_vals[lane][2 * j + 1] = v[lane][1];
                    }
                }
            }
            // micro_m × micro_n FFMAs per lane: the rank-1 update.
            mach.ffma((mm * mn) as u64);
            if M::FUNCTIONAL {
                for lane in 0..32 {
                    let tid = w * 32 + lane;
                    for r in 0..mm {
                        let ar = a_vals[lane][r];
                        for cc in 0..mn {
                            *acc.at_mut(tid, r, cc) += ar * b_vals[lane][cc];
                        }
                    }
                }
            }
        }
    }
}

/// Runs the full GEMM phase of one block: Algorithm 2 lines 5–13.
/// Leaves the microtile products in `acc` (functional mode).
#[allow(clippy::too_many_arguments)] // mirrors the CUDA kernel's parameter list
pub fn gemm_block<M: WarpMachine>(
    mach: &mut M,
    geo: &TileGeometry,
    ops: &GemmOperands,
    shape: &GemmShape,
    layout: SmemLayout,
    bx: usize,
    by: usize,
    acc: &mut AccGrid,
) {
    let smem = SmemMap::for_geometry(geo);
    let tiles = geo.tiles(shape.k);
    let warps = geo.warps_per_block() as u64;

    if geo.double_buffer_depth == 2 {
        let mut j = 0usize;
        load_tiles(
            mach, geo, ops, shape, layout, bx, by, 0, smem.a[j], smem.b[j],
        );
        mach.syncthreads(warps);
        for i in 1..tiles {
            let prev = j;
            j ^= 1;
            load_tiles(
                mach, geo, ops, shape, layout, bx, by, i, smem.a[j], smem.b[j],
            );
            compute_ktile(mach, geo, layout, smem.a[prev], smem.b[prev], acc);
            mach.syncthreads(warps);
        }
        compute_ktile(mach, geo, layout, smem.a[j], smem.b[j], acc);
    } else {
        for i in 0..tiles {
            load_tiles(
                mach, geo, ops, shape, layout, bx, by, i, smem.a[0], smem.b[0],
            );
            mach.syncthreads(warps);
            compute_ktile(mach, geo, layout, smem.a[0], smem.b[0], acc);
            mach.syncthreads(warps);
        }
    }
}

/// [`gemm_block`] with an ABFT shared-memory audit: every tile pair's
/// staged checksum (the XOR [`load_tiles`] computes while the values
/// pass through registers) is compared against an [`audit_tile`]
/// re-read issued right after the `compute_ktile` that consumed it.
///
/// Returns `true` iff any consumed tile word differed from what was
/// staged — i.e. a bit flip landed in a live tile buffer between its
/// store and its last read. Flips into dead or about-to-be-overwritten
/// buffers never reach `acc` and are deliberately *not* flagged.
/// Always `false` in traffic mode (both digests are 0).
#[allow(clippy::too_many_arguments)] // mirrors gemm_block
pub fn gemm_block_verified<M: WarpMachine>(
    mach: &mut M,
    geo: &TileGeometry,
    ops: &GemmOperands,
    shape: &GemmShape,
    layout: SmemLayout,
    bx: usize,
    by: usize,
    acc: &mut AccGrid,
) -> bool {
    let smem = SmemMap::for_geometry(geo);
    let tiles = geo.tiles(shape.k);
    let warps = geo.warps_per_block() as u64;
    let mut corrupt = false;

    if geo.double_buffer_depth == 2 {
        let mut j = 0usize;
        let mut staged = [0u32; 2];
        staged[j] = load_tiles(
            mach, geo, ops, shape, layout, bx, by, 0, smem.a[j], smem.b[j],
        );
        mach.syncthreads(warps);
        for i in 1..tiles {
            let prev = j;
            j ^= 1;
            staged[j] = load_tiles(
                mach, geo, ops, shape, layout, bx, by, i, smem.a[j], smem.b[j],
            );
            compute_ktile(mach, geo, layout, smem.a[prev], smem.b[prev], acc);
            corrupt |= audit_pair(mach, geo, smem.a[prev], smem.b[prev]) != staged[prev];
            mach.syncthreads(warps);
        }
        compute_ktile(mach, geo, layout, smem.a[j], smem.b[j], acc);
        corrupt |= audit_pair(mach, geo, smem.a[j], smem.b[j]) != staged[j];
    } else {
        for i in 0..tiles {
            let staged = load_tiles(
                mach, geo, ops, shape, layout, bx, by, i, smem.a[0], smem.b[0],
            );
            mach.syncthreads(warps);
            compute_ktile(mach, geo, layout, smem.a[0], smem.b[0], acc);
            corrupt |= audit_pair(mach, geo, smem.a[0], smem.b[0]) != staged;
            mach.syncthreads(warps);
        }
    }
    corrupt
}

/// Number of `__syncthreads()` per block for a given configuration
/// (used by tests and the timing documentation).
#[must_use]
pub fn syncs_per_block(geo: &TileGeometry, k: usize) -> u64 {
    let tiles = geo.tiles(k) as u64;
    if geo.double_buffer_depth == 2 {
        tiles // one barrier per tile (the paper's pipelined loop)
    } else {
        2 * tiles // load barrier + compute barrier
    }
}

/// Appends the GEMM phase's declared access patterns to `spec`
/// (see `ks_gpu_sim::access`): the per-warp tile-track global loads,
/// the swizzled (or naive) shared stores and compute-phase loads, and
/// — when `verified` — the ABFT audit re-reads. Mirrors exactly what
/// [`gemm_block`] / [`gemm_block_verified`] issue per block, at any
/// feasible geometry.
///
/// Shared patterns use the parity-0 buffer bases: the double-buffer
/// toggle shifts every address by a multiple of the tile size, which
/// is bank-invariant on 32 banks, so one canonical pattern carries
/// the combined `tiles` issue count. Barrier counts are *not* set
/// here ([`syncs_per_block`] gives them); callers own `spec.barriers`.
pub fn gemm_access_spec(
    spec: &mut AccessSpec,
    geo: &TileGeometry,
    ops: &GemmOperands,
    shape: &GemmShape,
    layout: SmemLayout,
    verified: bool,
) {
    let k = shape.k;
    let tiles = geo.tiles(k) as u64;
    let smem = SmemMap::for_geometry(geo);
    let l = geo.loader_warps();
    let chunks = geo.tile_k / 4;
    // Tile loads + shared stores (load_tiles, once per k-tile).
    for w in 0..geo.warps_per_block() {
        let (buf, label, wl, side, dst, a_half) = if w < l {
            (ops.a, "a", w, geo.side_a(), smem.a[0], true)
        } else {
            (ops.b, "b", w - l, geo.side_b(), smem.b[0], false)
        };
        let passes = side.loader_slots() / l;
        for pass in 0..passes {
            let slot = pass * l + wl;
            let track = |u: usize| side.loader_track(slot, u);
            for chunk in 0..chunks {
                let mut p = GlobalPattern::new(
                    buf,
                    label,
                    AccessDir::Read,
                    VecWidth::V4,
                    affine_lanes(|u| {
                        let (m, c) = track(u);
                        ((m * side.micro + c) * k + chunk * 4) as i64
                    }),
                )
                .with_loop(tiles, geo.tile_k as i64);
                if a_half {
                    p = p.with_by((geo.block_m * k) as i64);
                } else {
                    p = p.with_bx((geo.block_n * k) as i64);
                }
                spec.global.push(p);
            }
            for kk in 0..geo.tile_k {
                let words: [Option<u32>; 32] = std::array::from_fn(|u| {
                    let (m, c) = track(u);
                    Some(dst + side.word(layout, m, c, kk))
                });
                spec.shared
                    .push(SharedPattern::new(words, VecWidth::V1, AccessDir::Write).times(tiles));
            }
        }
    }
    // Compute-phase operand loads (compute_ktile, once per k-tile).
    let (sa, sb) = (geo.side_a(), geo.side_b());
    let txn = geo.threads_x();
    let rpw = geo.rows_per_warp();
    for w in 0..geo.warps_per_block() {
        for kk in 0..geo.tile_k {
            for j in 0..sa.pairs().max(sb.pairs()) {
                if j < sa.pairs() {
                    let a_words: [Option<u32>; 32] = std::array::from_fn(|lane| {
                        let ty = rpw * w + lane / txn;
                        Some(smem.a[0] + sa.pair_base(layout, ty, kk, j))
                    });
                    spec.shared.push(
                        SharedPattern::new(a_words, VecWidth::V2, AccessDir::Read).times(tiles),
                    );
                }
                if j < sb.pairs() {
                    let b_words: [Option<u32>; 32] = std::array::from_fn(|lane| {
                        let tx = lane % txn;
                        Some(smem.b[0] + sb.pair_base(layout, tx, kk, j))
                    });
                    spec.shared.push(
                        SharedPattern::new(b_words, VecWidth::V2, AccessDir::Read).times(tiles),
                    );
                }
            }
        }
    }
    // ABFT audit re-reads (audit_pair, once per k-tile).
    if verified {
        for (words_n, base) in [
            (geo.a_tile_words(), smem.a[0]),
            (geo.b_tile_words(), smem.b[0]),
        ] {
            let phases = geo.audit_phases(words_n) as u32;
            for w in 0..geo.warps_per_block() as u32 {
                for phase in 0..phases {
                    let words: [Option<u32>; 32] = std::array::from_fn(|lane| {
                        Some(base + (w * phases + phase) * 32 + lane as u32)
                    });
                    spec.shared.push(
                        SharedPattern::new(words, VecWidth::V1, AccessDir::Read).times(tiles),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{FunctionalMachine, TrafficMachine};
    use ks_gpu_sim::buffer::GlobalMem;
    use ks_gpu_sim::cache::Cache;
    use ks_gpu_sim::config::DeviceConfig;
    use ks_gpu_sim::exec::BlockCtx;
    use ks_gpu_sim::traffic::TrafficSink;

    fn upload_ab(mem: &mut GlobalMem, shape: &GemmShape, seed: u64) -> GemmOperands {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        };
        let a: Vec<f32> = (0..shape.m * shape.k).map(|_| next()).collect();
        let b: Vec<f32> = (0..shape.k * shape.n).map(|_| next()).collect();
        GemmOperands {
            a: mem.upload(&a),
            b: mem.upload(&b),
        }
    }

    fn reference_c(mem: &GlobalMem, ops: &GemmOperands, shape: &GemmShape) -> Vec<f32> {
        let a = mem.download(ops.a);
        let b = mem.download(ops.b);
        let mut c = vec![0.0f32; shape.m * shape.n];
        for i in 0..shape.m {
            for j in 0..shape.n {
                let mut acc = 0.0f64;
                for p in 0..shape.k {
                    acc += a[i * shape.k + p] as f64 * b[j * shape.k + p] as f64;
                }
                c[i * shape.n + j] = acc as f32;
            }
        }
        c
    }

    fn run_block_functional(
        mem: &GlobalMem,
        geo: &TileGeometry,
        ops: &GemmOperands,
        shape: &GemmShape,
        layout: SmemLayout,
        bx: usize,
        by: usize,
    ) -> AccGrid {
        let smem = SmemMap::for_geometry(geo);
        let mut ctx = BlockCtx::new(mem, smem.words as usize, None);
        let mut acc = AccGrid::for_geometry(geo);
        let mut mach = FunctionalMachine::new(&mut ctx);
        gemm_block(&mut mach, geo, ops, shape, layout, bx, by, &mut acc);
        acc
    }

    fn check_block(
        geo: &TileGeometry,
        acc: &AccGrid,
        c_ref: &[f32],
        shape: &GemmShape,
        bx: usize,
        by: usize,
    ) {
        for ty in 0..geo.threads_y() {
            for tx in 0..geo.threads_x() {
                let tid = ty * geo.threads_x() + tx;
                for r in 0..geo.micro_m {
                    for cc in 0..geo.micro_n {
                        let row = by * geo.block_m + ty * geo.micro_m + r;
                        let col = bx * geo.block_n + tx * geo.micro_n + cc;
                        let want = c_ref[row * shape.n + col];
                        let got = acc.at(tid, r, cc);
                        assert!(
                            (want - got).abs() <= 1e-3 * want.abs().max(1.0),
                            "{geo} block ({bx},{by}) thread ({tx},{ty}) \
                             elem ({r},{cc}): {got} vs {want}"
                        );
                    }
                }
            }
        }
    }

    fn paper() -> TileGeometry {
        TileGeometry::paper_default()
    }

    #[test]
    fn single_block_gemm_matches_reference() {
        let shape = GemmShape {
            m: 128,
            n: 128,
            k: 32,
        };
        let mut mem = GlobalMem::new();
        let ops = upload_ab(&mut mem, &shape, 7);
        let c_ref = reference_c(&mem, &ops, &shape);
        let geo = paper();
        let acc = run_block_functional(&mem, &geo, &ops, &shape, SmemLayout::Swizzled, 0, 0);
        check_block(&geo, &acc, &c_ref, &shape, 0, 0);
    }

    #[test]
    fn multi_block_offsets_are_correct() {
        let shape = GemmShape {
            m: 256,
            n: 256,
            k: 16,
        };
        let mut mem = GlobalMem::new();
        let ops = upload_ab(&mut mem, &shape, 13);
        let c_ref = reference_c(&mem, &ops, &shape);
        let geo = paper();
        for (bx, by) in [(0, 0), (1, 0), (0, 1), (1, 1)] {
            let acc = run_block_functional(&mem, &geo, &ops, &shape, SmemLayout::Swizzled, bx, by);
            check_block(&geo, &acc, &c_ref, &shape, bx, by);
        }
    }

    #[test]
    fn every_lattice_geometry_computes_a_correct_block() {
        // The engine-level differential sweep: one block of every
        // feasible geometry against the f64 reference.
        let shape = GemmShape {
            m: 256,
            n: 256,
            k: 16,
        };
        let mut mem = GlobalMem::new();
        let ops = upload_ab(&mut mem, &shape, 29);
        let c_ref = reference_c(&mem, &ops, &shape);
        for geo in TileGeometry::lattice(&DeviceConfig::gtx970()) {
            if !geo.divides(shape.m, shape.n, shape.k) {
                continue;
            }
            // Pick the last block in each dimension so non-zero offsets
            // are exercised whenever the grid has more than one block.
            let bx = shape.n / geo.block_n - 1;
            let by = shape.m / geo.block_m - 1;
            let acc = run_block_functional(&mem, &geo, &ops, &shape, SmemLayout::Swizzled, bx, by);
            check_block(&geo, &acc, &c_ref, &shape, bx, by);
        }
    }

    #[test]
    fn naive_layout_computes_the_same_values() {
        let shape = GemmShape {
            m: 128,
            n: 128,
            k: 24,
        };
        let mut mem = GlobalMem::new();
        let ops = upload_ab(&mut mem, &shape, 21);
        let geo = paper();
        let a = run_block_functional(&mem, &geo, &ops, &shape, SmemLayout::Swizzled, 0, 0);
        let b = run_block_functional(&mem, &geo, &ops, &shape, SmemLayout::NaiveRowMajor, 0, 0);
        assert_eq!(a, b, "layout must not change numerics");
    }

    #[test]
    fn single_buffer_computes_the_same_values() {
        let shape = GemmShape {
            m: 128,
            n: 128,
            k: 24,
        };
        let mut mem = GlobalMem::new();
        let ops = upload_ab(&mut mem, &shape, 22);
        let geo = paper();
        let single = TileGeometry {
            double_buffer_depth: 1,
            ..geo
        };
        let a = run_block_functional(&mem, &geo, &ops, &shape, SmemLayout::Swizzled, 0, 0);
        let b = run_block_functional(&mem, &single, &ops, &shape, SmemLayout::Swizzled, 0, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn m_side_geometry_is_bit_neutral() {
        // The serve router's bit-compatibility contract at engine
        // level: same (block_n, micro_n) ⇒ identical result bits for
        // any row, whatever the M-side tiling, buffering or tile_k.
        let shape = GemmShape {
            m: 256,
            n: 128,
            k: 16,
        };
        let mut mem = GlobalMem::new();
        let ops = upload_ab(&mut mem, &shape, 33);
        let geo = paper();
        let alt = TileGeometry {
            block_m: 64,
            tile_k: 4,
            double_buffer_depth: 1,
            ..geo
        };
        assert!(geo.bit_compatible(&alt));
        // Row 100 lives in block by=0 (ty=12, r=4) under the default
        // and block by=1 (ty=4, r=4) under alt.
        let d = run_block_functional(&mem, &geo, &ops, &shape, SmemLayout::Swizzled, 0, 0);
        let a = run_block_functional(&mem, &alt, &ops, &shape, SmemLayout::Swizzled, 0, 1);
        for col in 0..shape.n {
            let tx = col / geo.micro_n;
            let cc = col % geo.micro_n;
            let want = d.at(12 * 16 + tx, 4, cc);
            let got = a.at(4 * alt.threads_x() + tx, 4, cc);
            assert_eq!(want.to_bits(), got.to_bits(), "col {col}");
        }
    }

    #[test]
    fn traffic_mode_counts_without_data() {
        let shape = GemmShape {
            m: 128,
            n: 128,
            k: 32,
        };
        let mut mem = GlobalMem::new();
        let ops = upload_ab(&mut mem, &shape, 5);
        let geo = paper();
        let mut l2 = Cache::new(256 * 1024, 16, 32);
        let mut sink = TrafficSink::new(&mem, &mut l2, 32, 32);
        {
            let mut mach = TrafficMachine::new(&mut sink);
            let mut acc = AccGrid::empty(&geo);
            gemm_block(
                &mut mach,
                &geo,
                &ops,
                &shape,
                SmemLayout::Swizzled,
                0,
                0,
                &mut acc,
            );
        }
        let c = &sink.counters;
        let tiles = geo.tiles(shape.k) as u64;
        // FFMA: 8 warps × 8 k-steps × 64 per tile.
        assert_eq!(c.ffma_insts, tiles * 8 * 8 * 64);
        // Global loads: 8 warps × 2 LDG.128 per tile.
        assert_eq!(c.global_load_insts, tiles * 8 * 2);
        // Sector traffic: each tile pair is 2×128×8 floats = 8KB = 256
        // unique sectors per tile, but each 32-byte sector is touched
        // by both LDG.128s of its track (two instructions), so the L2
        // sees 512 sector requests per tile (half of them hits).
        assert_eq!(c.l2_read_sectors, tiles * 512);
        assert_eq!(c.sync_insts, syncs_per_block(&geo, shape.k) * 8);
        // Swizzled layout: zero conflicts ⇒ transactions = 2 per LDS.64
        // phase... loads: 8 warps × 8 k × 8 LDS.64, each 2 phases ⇒
        // transactions = insts × 2 / ... every phase is one transaction.
        assert_eq!(c.smem.load_instructions, tiles * 8 * 8 * 8);
        assert_eq!(c.smem.load_transactions, c.smem.load_instructions * 2);
        // Stores: 8 warps × 8 phases per tile, conflict-free.
        assert_eq!(c.smem.store_instructions, tiles * 8 * 8);
        assert_eq!(c.smem.store_transactions, c.smem.store_instructions);
    }

    #[test]
    fn lattice_traffic_is_conflict_free_and_counted() {
        // Generalized counter formulas, checked for a few non-default
        // geometries: instruction counts scale with the geometry and
        // the swizzled stores/loads stay conflict-free.
        let shape = GemmShape {
            m: 256,
            n: 256,
            k: 32,
        };
        let mut mem = GlobalMem::new();
        let ops = upload_ab(&mut mem, &shape, 11);
        for geo in [
            TileGeometry {
                block_m: 64,
                block_n: 64,
                ..paper()
            },
            TileGeometry {
                block_m: 256,
                micro_m: 16,
                ..paper()
            },
            TileGeometry {
                tile_k: 16,
                ..paper()
            },
        ] {
            geo.feasibility(&DeviceConfig::gtx970()).unwrap();
            let mut l2 = Cache::new(256 * 1024, 16, 32);
            let mut sink = TrafficSink::new(&mem, &mut l2, 32, 32);
            {
                let mut mach = TrafficMachine::new(&mut sink);
                let mut acc = AccGrid::empty(&geo);
                gemm_block(
                    &mut mach,
                    &geo,
                    &ops,
                    &shape,
                    SmemLayout::Swizzled,
                    0,
                    0,
                    &mut acc,
                );
            }
            let c = &sink.counters;
            let tiles = geo.tiles(shape.k) as u64;
            let warps = geo.warps_per_block() as u64;
            let k_steps = geo.tile_k as u64;
            assert_eq!(
                c.ffma_insts,
                tiles * warps * k_steps * (geo.micro_m * geo.micro_n) as u64,
                "{geo}: ffma"
            );
            let slots = (geo.side_a().loader_slots() + geo.side_b().loader_slots()) as u64;
            assert_eq!(
                c.global_load_insts,
                tiles * slots * (geo.tile_k as u64 / 4),
                "{geo}: ldg"
            );
            assert_eq!(
                c.smem.store_instructions,
                tiles * slots * k_steps,
                "{geo}: smem stores"
            );
            assert_eq!(
                c.smem.store_transactions, c.smem.store_instructions,
                "{geo}: store conflicts"
            );
            let pair_loads = (geo.side_a().pairs() + geo.side_b().pairs()) as u64;
            assert_eq!(
                c.smem.load_instructions,
                tiles * warps * k_steps * pair_loads,
                "{geo}: smem loads"
            );
            assert_eq!(
                c.smem.load_transactions,
                c.smem.load_instructions * 2,
                "{geo}: load conflicts"
            );
        }
    }

    #[test]
    fn naive_layout_has_conflicted_loads() {
        let shape = GemmShape {
            m: 128,
            n: 128,
            k: 32,
        };
        let mut mem = GlobalMem::new();
        let ops = upload_ab(&mut mem, &shape, 5);
        let geo = paper();
        let count = |layout: SmemLayout| {
            let mut l2 = Cache::new(256 * 1024, 16, 32);
            let mut sink = TrafficSink::new(&mem, &mut l2, 32, 32);
            let mut mach = TrafficMachine::new(&mut sink);
            let mut acc = AccGrid::empty(&geo);
            gemm_block(&mut mach, &geo, &ops, &shape, layout, 0, 0, &mut acc);
            sink.counters.smem
        };
        let sw = count(SmemLayout::Swizzled);
        let nv = count(SmemLayout::NaiveRowMajor);
        assert!(
            nv.load_transactions > 2 * sw.load_transactions,
            "naive {} vs swizzled {}",
            nv.load_transactions,
            sw.load_transactions
        );
    }

    #[test]
    fn sync_counts_match_buffering_mode() {
        let geo = paper();
        assert_eq!(syncs_per_block(&geo, 64), 8);
        let single = TileGeometry {
            double_buffer_depth: 1,
            ..geo
        };
        assert_eq!(syncs_per_block(&single, 64), 16);
    }

    #[test]
    #[should_panic(expected = "multiple of")]
    fn shape_validation_rejects_bad_m() {
        GemmShape {
            m: 100,
            n: 128,
            k: 8,
        }
        .validate();
    }

    #[test]
    fn smem_map_sizes() {
        assert_eq!(SmemMap::new(true).bytes(), 16 * 1024);
        assert_eq!(SmemMap::new(false).bytes(), 8 * 1024);
        let geo = TileGeometry {
            block_m: 64,
            block_n: 128,
            tile_k: 4,
            double_buffer_depth: 2,
            ..paper()
        };
        let m = SmemMap::for_geometry(&geo);
        assert_eq!(m.a, [0, 256]);
        assert_eq!(m.b, [512, 1024]);
        assert_eq!(m.bytes(), 2 * (256 + 512) * 4);
    }
}
