//! The shared 128×128 GEMM block engine (paper §III-A, Fig 4).
//!
//! One thread block of 16×16 threads computes a 128×128 `submatrixC`
//! as `Σ_i tileA_i × tileB_i` with rank-8 updates: `tileA` is 128×8
//! (rows of A), `tileB` is 8×128 (columns of B). Each thread owns an
//! 8×8 `microtileC` in registers. Tiles are staged in shared memory
//! with the Fig 5 swizzle ([`crate::layout`]) and — by default —
//! double-buffered so the loads of tile `i+1` overlap the compute of
//! tile `i` (Algorithm 2 lines 5–13).
//!
//! The engine is generic over [`WarpMachine`], so the same code path
//! produces numerics (functional mode) and transaction counts
//! (traffic mode).

use ks_gpu_sim::access::{affine_lanes, AccessSpec, GlobalPattern, SharedPattern};
use ks_gpu_sim::buffer::BufId;
use ks_gpu_sim::kernel::VecWidth;
use ks_gpu_sim::trace::AccessDir;
use ks_gpu_sim::traffic::WarpIdx;

use crate::layout::{compute_read_pairs, loader_assignment, tile_word, SmemLayout};
use crate::machine::WarpMachine;
use crate::{BLOCK_TILE, K_TILE, MICRO_TILE, THREADS_PER_BLOCK, TILE_WORDS, WARPS_PER_BLOCK};

/// Per-thread accumulator: an 8×8 microtile of C.
pub type Microtile = [[f32; MICRO_TILE]; MICRO_TILE];

/// Fresh accumulators for one block (256 microtiles). In traffic mode
/// pass an empty slice instead.
#[must_use]
pub fn fresh_acc() -> Vec<Microtile> {
    vec![[[0.0; MICRO_TILE]; MICRO_TILE]; THREADS_PER_BLOCK]
}

/// Operand matrices of the GEMM: `a` is M×K row-major, `b` is K×N
/// column-major — both *point-contiguous* along K, as the paper
/// requires.
#[derive(Debug, Clone, Copy)]
pub struct GemmOperands {
    /// Source-point matrix A (M×K, row-major).
    pub a: BufId,
    /// Target-point matrix B (K×N, column-major).
    pub b: BufId,
}

/// Problem dimensions. The engine requires `m % 128 == 0`,
/// `n % 128 == 0`, `k % 8 == 0` (the paper's sweeps satisfy all
/// three; fringe tiles are out of scope — see DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmShape {
    /// Rows of A and C.
    pub m: usize,
    /// Columns of B and C.
    pub n: usize,
    /// Inner dimension.
    pub k: usize,
}

impl GemmShape {
    /// Validates divisibility constraints.
    ///
    /// # Panics
    /// Panics if the shape violates the tiling constraints.
    pub fn validate(&self) {
        assert!(self.m > 0 && self.n > 0 && self.k > 0, "empty GEMM shape");
        assert_eq!(
            self.m % BLOCK_TILE,
            0,
            "M = {} must be a multiple of {BLOCK_TILE}",
            self.m
        );
        assert_eq!(
            self.n % BLOCK_TILE,
            0,
            "N = {} must be a multiple of {BLOCK_TILE}",
            self.n
        );
        assert_eq!(
            self.k % K_TILE,
            0,
            "K = {} must be a multiple of {K_TILE}",
            self.k
        );
    }

    /// Grid extent: `(N/128, M/128)`.
    #[must_use]
    pub fn grid(&self) -> (u32, u32) {
        ((self.n / BLOCK_TILE) as u32, (self.m / BLOCK_TILE) as u32)
    }
}

/// Word offsets of the shared-memory buffers. With double buffering the
/// block uses four 1024-word tiles (16KB); without, two (8KB). `T`
/// (the reduction scratch of Algorithm 2) reuses `a[0]`.
#[derive(Debug, Clone, Copy)]
pub struct SmemMap {
    /// Word offsets of sharedA0 / sharedA1.
    pub a: [u32; 2],
    /// Word offsets of sharedB0 / sharedB1.
    pub b: [u32; 2],
    /// Total shared words.
    pub words: u32,
}

impl SmemMap {
    /// Builds the map for single- or double-buffered operation.
    #[must_use]
    pub fn new(double_buffer: bool) -> Self {
        let t = TILE_WORDS as u32;
        if double_buffer {
            Self {
                a: [0, t],
                b: [2 * t, 3 * t],
                words: 4 * t,
            }
        } else {
            Self {
                a: [0, 0],
                b: [t, t],
                words: 2 * t,
            }
        }
    }

    /// Shared-memory bytes per block.
    #[must_use]
    pub fn bytes(&self) -> u32 {
        self.words * 4
    }
}

/// Loads `tileA[kt]` and `tileB[kt]` into the shared buffers at
/// `smem_a` / `smem_b` (Fig 5 store pattern: warps 0–3 load A,
/// warps 4–7 load B; conflict-free stores).
///
/// Returns the XOR of the bit patterns of all 2048 stored words — the
/// *staged checksum* of the tile pair, computed for free while the
/// values pass through registers. [`gemm_block_verified`] compares it
/// against a post-compute [`audit_tile`] re-read to detect shared-
/// memory corruption. Traffic mode returns 0.
#[allow(clippy::too_many_arguments)] // mirrors the CUDA kernel's parameter list
pub fn load_tiles<M: WarpMachine>(
    mach: &mut M,
    ops: &GemmOperands,
    shape: &GemmShape,
    layout: SmemLayout,
    bx: usize,
    by: usize,
    kt: usize,
    smem_a: u32,
    smem_b: u32,
) -> u32 {
    let k = shape.k;
    let mut staged = 0u32;
    for w in 0..WARPS_PER_BLOCK {
        mach.begin_warp(w as u32);
        // Halves: warps 0..4 fetch tileA (point base = row), warps
        // 4..8 fetch tileB (point base = column).
        let (buf, point0, wl, dst) = if w < 4 {
            (ops.a, by * BLOCK_TILE, w, smem_a)
        } else {
            (ops.b, bx * BLOCK_TILE, w - 4, smem_b)
        };

        // Each lane fetches one 8-element track: two LDG.128.
        let track_base = |u: usize| {
            let (m, c) = loader_assignment(wl, u);
            (m, c, (point0 + m * MICRO_TILE + c) * k + kt * K_TILE)
        };
        let idx_lo: WarpIdx = std::array::from_fn(|u| Some(track_base(u).2));
        let idx_hi: WarpIdx = std::array::from_fn(|u| Some(track_base(u).2 + 4));
        mach.alu(2); // address computation
        let lo = mach.ld_global(buf, &idx_lo, VecWidth::V4);
        let hi = mach.ld_global(buf, &idx_hi, VecWidth::V4);

        // Eight store phases: phase kk writes one full 32-bank row in
        // the swizzled layout (no store conflicts).
        for kk in 0..K_TILE {
            let words: [Option<u32>; 32] = std::array::from_fn(|u| {
                let (m, c, _) = track_base(u);
                Some(dst + tile_word(layout, m, c, kk))
            });
            let vals: [[f32; 4]; 32] = std::array::from_fn(|u| {
                let v = if kk < 4 { lo[u][kk] } else { hi[u][kk - 4] };
                [v, 0.0, 0.0, 0.0]
            });
            if M::FUNCTIONAL {
                for v in &vals {
                    staged ^= v[0].to_bits();
                }
            }
            mach.st_shared(&words, VecWidth::V1, &vals);
        }
    }
    staged
}

/// Re-reads one 1024-word tile buffer and returns the XOR of its bit
/// patterns (0 in traffic mode). The read is conflict-free: each of
/// the 8 warps covers 128 contiguous words in 4 single-word phases of
/// 32 consecutive words, so the 32 lanes of every phase hit 32
/// distinct banks.
pub fn audit_tile<M: WarpMachine>(mach: &mut M, base: u32) -> u32 {
    let mut digest = 0u32;
    for w in 0..WARPS_PER_BLOCK {
        mach.begin_warp(w as u32);
        for phase in 0..4u32 {
            let words: [Option<u32>; 32] = std::array::from_fn(|lane| {
                Some(base + (w as u32) * 128 + phase * 32 + lane as u32)
            });
            let v = mach.ld_shared(&words, VecWidth::V1);
            if M::FUNCTIONAL {
                for lane in &v {
                    digest ^= lane[0].to_bits();
                }
            }
        }
    }
    digest
}

fn audit_pair<M: WarpMachine>(mach: &mut M, smem_a: u32, smem_b: u32) -> u32 {
    audit_tile(mach, smem_a) ^ audit_tile(mach, smem_b)
}

/// One rank-8 update: every thread multiplies its `microtileA_ty`
/// column slice by its `microtileB_tx` row slice for each of the 8
/// k-steps, accumulating into `acc` (functional mode only).
///
/// `acc` must have 256 entries in functional mode; it may be empty in
/// traffic mode.
pub fn compute_ktile<M: WarpMachine>(
    mach: &mut M,
    layout: SmemLayout,
    smem_a: u32,
    smem_b: u32,
    acc: &mut [Microtile],
) {
    for w in 0..WARPS_PER_BLOCK {
        mach.begin_warp(w as u32);
        mach.alu(2); // loop/index overhead per warp per tile
        for kk in 0..K_TILE {
            // A operand: lane (tx, ty) reads the 8 track values of
            // microtileA_ty as 4 LDS.64 (2 tracks each).
            let mut a_vals = [[0.0f32; MICRO_TILE]; 32];
            for j in 0..4 {
                let words: [Option<u32>; 32] = std::array::from_fn(|lane| {
                    let ty = 2 * w + lane / 16;
                    Some(smem_a + compute_read_pairs(layout, ty, kk)[j])
                });
                let v = mach.ld_shared(&words, VecWidth::V2);
                if M::FUNCTIONAL {
                    for lane in 0..32 {
                        a_vals[lane][2 * j] = v[lane][0];
                        a_vals[lane][2 * j + 1] = v[lane][1];
                    }
                }
            }
            // B operand: microtileB_tx.
            let mut b_vals = [[0.0f32; MICRO_TILE]; 32];
            for j in 0..4 {
                let words: [Option<u32>; 32] = std::array::from_fn(|lane| {
                    let tx = lane % 16;
                    Some(smem_b + compute_read_pairs(layout, tx, kk)[j])
                });
                let v = mach.ld_shared(&words, VecWidth::V2);
                if M::FUNCTIONAL {
                    for lane in 0..32 {
                        b_vals[lane][2 * j] = v[lane][0];
                        b_vals[lane][2 * j + 1] = v[lane][1];
                    }
                }
            }
            // 64 FFMAs per lane: the rank-1 update of the microtile.
            mach.ffma((MICRO_TILE * MICRO_TILE) as u64);
            if M::FUNCTIONAL {
                for lane in 0..32 {
                    let tid = w * 32 + lane;
                    let mt = &mut acc[tid];
                    for (r, ar) in a_vals[lane].iter().enumerate() {
                        for (cc, bc) in b_vals[lane].iter().enumerate() {
                            mt[r][cc] += ar * bc;
                        }
                    }
                }
            }
        }
    }
}

/// Runs the full GEMM phase of one block: Algorithm 2 lines 5–13.
/// Leaves the microtile products in `acc` (functional mode).
#[allow(clippy::too_many_arguments)] // mirrors the CUDA kernel's parameter list
pub fn gemm_block<M: WarpMachine>(
    mach: &mut M,
    ops: &GemmOperands,
    shape: &GemmShape,
    layout: SmemLayout,
    double_buffer: bool,
    bx: usize,
    by: usize,
    acc: &mut [Microtile],
) {
    let smem = SmemMap::new(double_buffer);
    let tiles = shape.k / K_TILE;
    let warps = WARPS_PER_BLOCK as u64;

    if double_buffer {
        let mut j = 0usize;
        load_tiles(mach, ops, shape, layout, bx, by, 0, smem.a[j], smem.b[j]);
        mach.syncthreads(warps);
        for i in 1..tiles {
            let prev = j;
            j ^= 1;
            load_tiles(mach, ops, shape, layout, bx, by, i, smem.a[j], smem.b[j]);
            compute_ktile(mach, layout, smem.a[prev], smem.b[prev], acc);
            mach.syncthreads(warps);
        }
        compute_ktile(mach, layout, smem.a[j], smem.b[j], acc);
    } else {
        for i in 0..tiles {
            load_tiles(mach, ops, shape, layout, bx, by, i, smem.a[0], smem.b[0]);
            mach.syncthreads(warps);
            compute_ktile(mach, layout, smem.a[0], smem.b[0], acc);
            mach.syncthreads(warps);
        }
    }
}

/// [`gemm_block`] with an ABFT shared-memory audit: every tile pair's
/// staged checksum (the XOR [`load_tiles`] computes while the values
/// pass through registers) is compared against an [`audit_tile`]
/// re-read issued right after the `compute_ktile` that consumed it.
///
/// Returns `true` iff any consumed tile word differed from what was
/// staged — i.e. a bit flip landed in a live tile buffer between its
/// store and its last read. Flips into dead or about-to-be-overwritten
/// buffers never reach `acc` and are deliberately *not* flagged.
/// Always `false` in traffic mode (both digests are 0).
#[allow(clippy::too_many_arguments)] // mirrors gemm_block
pub fn gemm_block_verified<M: WarpMachine>(
    mach: &mut M,
    ops: &GemmOperands,
    shape: &GemmShape,
    layout: SmemLayout,
    double_buffer: bool,
    bx: usize,
    by: usize,
    acc: &mut [Microtile],
) -> bool {
    let smem = SmemMap::new(double_buffer);
    let tiles = shape.k / K_TILE;
    let warps = WARPS_PER_BLOCK as u64;
    let mut corrupt = false;

    if double_buffer {
        let mut j = 0usize;
        let mut staged = [0u32; 2];
        staged[j] = load_tiles(mach, ops, shape, layout, bx, by, 0, smem.a[j], smem.b[j]);
        mach.syncthreads(warps);
        for i in 1..tiles {
            let prev = j;
            j ^= 1;
            staged[j] = load_tiles(mach, ops, shape, layout, bx, by, i, smem.a[j], smem.b[j]);
            compute_ktile(mach, layout, smem.a[prev], smem.b[prev], acc);
            corrupt |= audit_pair(mach, smem.a[prev], smem.b[prev]) != staged[prev];
            mach.syncthreads(warps);
        }
        compute_ktile(mach, layout, smem.a[j], smem.b[j], acc);
        corrupt |= audit_pair(mach, smem.a[j], smem.b[j]) != staged[j];
    } else {
        for i in 0..tiles {
            let staged = load_tiles(mach, ops, shape, layout, bx, by, i, smem.a[0], smem.b[0]);
            mach.syncthreads(warps);
            compute_ktile(mach, layout, smem.a[0], smem.b[0], acc);
            corrupt |= audit_pair(mach, smem.a[0], smem.b[0]) != staged;
            mach.syncthreads(warps);
        }
    }
    corrupt
}

/// Number of `__syncthreads()` per block for a given configuration
/// (used by tests and the timing documentation).
#[must_use]
pub fn syncs_per_block(k: usize, double_buffer: bool) -> u64 {
    let tiles = (k / K_TILE) as u64;
    if double_buffer {
        tiles // one barrier per tile (the paper's pipelined loop)
    } else {
        2 * tiles // load barrier + compute barrier
    }
}

/// Appends the GEMM phase's declared access patterns to `spec`
/// (see `ks_gpu_sim::access`): the per-warp tile-track global loads,
/// the swizzled (or naive) shared stores and compute-phase loads, and
/// — when `verified` — the ABFT audit re-reads. Mirrors exactly what
/// [`gemm_block`] / [`gemm_block_verified`] issue per block.
///
/// Shared patterns use the parity-0 buffer bases: the double-buffer
/// toggle shifts every address by a multiple of 1024 words, which is
/// bank-invariant on 32 banks, so one canonical pattern carries the
/// combined `tiles` issue count. Barrier counts are *not* set here
/// ([`syncs_per_block`] gives them); callers own `spec.barriers`.
pub fn gemm_access_spec(
    spec: &mut AccessSpec,
    ops: &GemmOperands,
    shape: &GemmShape,
    layout: SmemLayout,
    double_buffer: bool,
    verified: bool,
) {
    let k = shape.k;
    let tiles = (k / K_TILE) as u64;
    let smem = SmemMap::new(double_buffer);
    // Tile loads + shared stores (load_tiles, once per k-tile).
    for w in 0..WARPS_PER_BLOCK {
        let (buf, label, wl, dst) = if w < 4 {
            (ops.a, "a", w, smem.a[0])
        } else {
            (ops.b, "b", w - 4, smem.b[0])
        };
        let track = |u: usize| loader_assignment(wl, u);
        for half in 0..2usize {
            let mut p = GlobalPattern::new(
                buf,
                label,
                AccessDir::Read,
                VecWidth::V4,
                affine_lanes(|u| {
                    let (m, c) = track(u);
                    ((m * MICRO_TILE + c) * k + half * 4) as i64
                }),
            )
            .with_loop(tiles, K_TILE as i64);
            if w < 4 {
                p = p.with_by((BLOCK_TILE * k) as i64);
            } else {
                p = p.with_bx((BLOCK_TILE * k) as i64);
            }
            spec.global.push(p);
        }
        for kk in 0..K_TILE {
            let words: [Option<u32>; 32] = std::array::from_fn(|u| {
                let (m, c) = track(u);
                Some(dst + tile_word(layout, m, c, kk))
            });
            spec.shared
                .push(SharedPattern::new(words, VecWidth::V1, AccessDir::Write).times(tiles));
        }
    }
    // Compute-phase operand loads (compute_ktile, once per k-tile).
    for w in 0..WARPS_PER_BLOCK {
        for kk in 0..K_TILE {
            for j in 0..4 {
                let a_words: [Option<u32>; 32] = std::array::from_fn(|lane| {
                    let ty = 2 * w + lane / 16;
                    Some(smem.a[0] + compute_read_pairs(layout, ty, kk)[j])
                });
                spec.shared
                    .push(SharedPattern::new(a_words, VecWidth::V2, AccessDir::Read).times(tiles));
                let b_words: [Option<u32>; 32] = std::array::from_fn(|lane| {
                    let tx = lane % 16;
                    Some(smem.b[0] + compute_read_pairs(layout, tx, kk)[j])
                });
                spec.shared
                    .push(SharedPattern::new(b_words, VecWidth::V2, AccessDir::Read).times(tiles));
            }
        }
    }
    // ABFT audit re-reads (audit_pair, once per k-tile).
    if verified {
        for base in [smem.a[0], smem.b[0]] {
            for w in 0..WARPS_PER_BLOCK as u32 {
                for phase in 0..4u32 {
                    let words: [Option<u32>; 32] =
                        std::array::from_fn(|lane| Some(base + w * 128 + phase * 32 + lane as u32));
                    spec.shared.push(
                        SharedPattern::new(words, VecWidth::V1, AccessDir::Read).times(tiles),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{FunctionalMachine, TrafficMachine};
    use ks_gpu_sim::buffer::GlobalMem;
    use ks_gpu_sim::cache::Cache;
    use ks_gpu_sim::exec::BlockCtx;
    use ks_gpu_sim::traffic::TrafficSink;

    fn upload_ab(mem: &mut GlobalMem, shape: &GemmShape, seed: u64) -> GemmOperands {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        };
        let a: Vec<f32> = (0..shape.m * shape.k).map(|_| next()).collect();
        let b: Vec<f32> = (0..shape.k * shape.n).map(|_| next()).collect();
        GemmOperands {
            a: mem.upload(&a),
            b: mem.upload(&b),
        }
    }

    fn reference_c(mem: &GlobalMem, ops: &GemmOperands, shape: &GemmShape) -> Vec<f32> {
        let a = mem.download(ops.a);
        let b = mem.download(ops.b);
        let mut c = vec![0.0f32; shape.m * shape.n];
        for i in 0..shape.m {
            for j in 0..shape.n {
                let mut acc = 0.0f64;
                for p in 0..shape.k {
                    acc += a[i * shape.k + p] as f64 * b[j * shape.k + p] as f64;
                }
                c[i * shape.n + j] = acc as f32;
            }
        }
        c
    }

    fn run_block_functional(
        mem: &GlobalMem,
        ops: &GemmOperands,
        shape: &GemmShape,
        layout: SmemLayout,
        double_buffer: bool,
        bx: usize,
        by: usize,
    ) -> Vec<Microtile> {
        let smem = SmemMap::new(double_buffer);
        let mut ctx = BlockCtx::new(mem, smem.words as usize, None);
        let mut acc = fresh_acc();
        let mut mach = FunctionalMachine::new(&mut ctx);
        gemm_block(
            &mut mach,
            ops,
            shape,
            layout,
            double_buffer,
            bx,
            by,
            &mut acc,
        );
        acc
    }

    fn check_block(acc: &[Microtile], c_ref: &[f32], shape: &GemmShape, bx: usize, by: usize) {
        for ty in 0..16 {
            for tx in 0..16 {
                let mt = &acc[ty * 16 + tx];
                for r in 0..8 {
                    for cc in 0..8 {
                        let row = by * 128 + ty * 8 + r;
                        let col = bx * 128 + tx * 8 + cc;
                        let want = c_ref[row * shape.n + col];
                        let got = mt[r][cc];
                        assert!(
                            (want - got).abs() <= 1e-3 * want.abs().max(1.0),
                            "block ({bx},{by}) thread ({tx},{ty}) elem ({r},{cc}): {got} vs {want}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn single_block_gemm_matches_reference() {
        let shape = GemmShape {
            m: 128,
            n: 128,
            k: 32,
        };
        let mut mem = GlobalMem::new();
        let ops = upload_ab(&mut mem, &shape, 7);
        let c_ref = reference_c(&mem, &ops, &shape);
        let acc = run_block_functional(&mem, &ops, &shape, SmemLayout::Swizzled, true, 0, 0);
        check_block(&acc, &c_ref, &shape, 0, 0);
    }

    #[test]
    fn multi_block_offsets_are_correct() {
        let shape = GemmShape {
            m: 256,
            n: 256,
            k: 16,
        };
        let mut mem = GlobalMem::new();
        let ops = upload_ab(&mut mem, &shape, 13);
        let c_ref = reference_c(&mem, &ops, &shape);
        for (bx, by) in [(0, 0), (1, 0), (0, 1), (1, 1)] {
            let acc = run_block_functional(&mem, &ops, &shape, SmemLayout::Swizzled, true, bx, by);
            check_block(&acc, &c_ref, &shape, bx, by);
        }
    }

    #[test]
    fn naive_layout_computes_the_same_values() {
        let shape = GemmShape {
            m: 128,
            n: 128,
            k: 24,
        };
        let mut mem = GlobalMem::new();
        let ops = upload_ab(&mut mem, &shape, 21);
        let a = run_block_functional(&mem, &ops, &shape, SmemLayout::Swizzled, true, 0, 0);
        let b = run_block_functional(&mem, &ops, &shape, SmemLayout::NaiveRowMajor, true, 0, 0);
        assert_eq!(a, b, "layout must not change numerics");
    }

    #[test]
    fn single_buffer_computes_the_same_values() {
        let shape = GemmShape {
            m: 128,
            n: 128,
            k: 24,
        };
        let mut mem = GlobalMem::new();
        let ops = upload_ab(&mut mem, &shape, 22);
        let a = run_block_functional(&mem, &ops, &shape, SmemLayout::Swizzled, true, 0, 0);
        let b = run_block_functional(&mem, &ops, &shape, SmemLayout::Swizzled, false, 0, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn traffic_mode_counts_without_data() {
        let shape = GemmShape {
            m: 128,
            n: 128,
            k: 32,
        };
        let mut mem = GlobalMem::new();
        let ops = upload_ab(&mut mem, &shape, 5);
        let mut l2 = Cache::new(256 * 1024, 16, 32);
        let mut sink = TrafficSink::new(&mem, &mut l2, 32, 32);
        {
            let mut mach = TrafficMachine::new(&mut sink);
            let mut acc: Vec<Microtile> = Vec::new();
            gemm_block(
                &mut mach,
                &ops,
                &shape,
                SmemLayout::Swizzled,
                true,
                0,
                0,
                &mut acc,
            );
        }
        let c = &sink.counters;
        let tiles = (shape.k / K_TILE) as u64;
        // FFMA: 8 warps × 8 k-steps × 64 per tile.
        assert_eq!(c.ffma_insts, tiles * 8 * 8 * 64);
        // Global loads: 8 warps × 2 LDG.128 per tile.
        assert_eq!(c.global_load_insts, tiles * 8 * 2);
        // Sector traffic: each tile pair is 2×128×8 floats = 8KB = 256
        // unique sectors per tile, but each 32-byte sector is touched
        // by both LDG.128s of its track (two instructions), so the L2
        // sees 512 sector requests per tile (half of them hits).
        assert_eq!(c.l2_read_sectors, tiles * 512);
        assert_eq!(c.sync_insts, syncs_per_block(shape.k, true) * 8);
        // Swizzled layout: zero conflicts ⇒ transactions = 2 per LDS.64
        // phase... loads: 8 warps × 8 k × 8 LDS.64, each 2 phases ⇒
        // transactions = insts × 2 / ... every phase is one transaction.
        assert_eq!(c.smem.load_instructions, tiles * 8 * 8 * 8);
        assert_eq!(c.smem.load_transactions, c.smem.load_instructions * 2);
        // Stores: 8 warps × 8 phases per tile, conflict-free.
        assert_eq!(c.smem.store_instructions, tiles * 8 * 8);
        assert_eq!(c.smem.store_transactions, c.smem.store_instructions);
    }

    #[test]
    fn naive_layout_has_conflicted_loads() {
        let shape = GemmShape {
            m: 128,
            n: 128,
            k: 32,
        };
        let mut mem = GlobalMem::new();
        let ops = upload_ab(&mut mem, &shape, 5);
        let count = |layout: SmemLayout| {
            let mut l2 = Cache::new(256 * 1024, 16, 32);
            let mut sink = TrafficSink::new(&mem, &mut l2, 32, 32);
            let mut mach = TrafficMachine::new(&mut sink);
            let mut acc: Vec<Microtile> = Vec::new();
            gemm_block(&mut mach, &ops, &shape, layout, true, 0, 0, &mut acc);
            sink.counters.smem
        };
        let sw = count(SmemLayout::Swizzled);
        let nv = count(SmemLayout::NaiveRowMajor);
        assert!(
            nv.load_transactions > 2 * sw.load_transactions,
            "naive {} vs swizzled {}",
            nv.load_transactions,
            sw.load_transactions
        );
    }

    #[test]
    fn sync_counts_match_buffering_mode() {
        assert_eq!(syncs_per_block(64, true), 8);
        assert_eq!(syncs_per_block(64, false), 16);
    }

    #[test]
    #[should_panic(expected = "multiple of")]
    fn shape_validation_rejects_bad_m() {
        GemmShape {
            m: 100,
            n: 128,
            k: 8,
        }
        .validate();
    }

    #[test]
    fn smem_map_sizes() {
        assert_eq!(SmemMap::new(true).bytes(), 16 * 1024);
        assert_eq!(SmemMap::new(false).bytes(), 8 * 1024);
    }
}
