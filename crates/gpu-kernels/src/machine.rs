//! The [`WarpMachine`] abstraction: one kernel body, two back-ends.
//!
//! Kernels in this crate are written once against `WarpMachine` and
//! instantiated twice:
//!
//! * [`FunctionalMachine`] wraps a [`BlockCtx`] — real loads, stores
//!   and arithmetic on device buffers (plus counting when the context
//!   carries a sink);
//! * [`TrafficMachine`] wraps a [`TrafficSink`] — the identical
//!   instruction stream with no data movement, cheap enough to replay
//!   the paper's largest problems (`M = 524288`).
//!
//! Because both back-ends see the *same* sequence of warp-level calls,
//! traffic-mode counters are exactly the functional-mode counters —
//! a property the integration tests assert.
//!
//! Compute helpers take closures so the functional machine can do real
//! math while the traffic machine skips it; the `FUNCTIONAL` constant
//! lets kernel bodies guard data-dependent work.

use ks_gpu_sim::buffer::BufId;
use ks_gpu_sim::exec::BlockCtx;
use ks_gpu_sim::kernel::VecWidth;
use ks_gpu_sim::traffic::{TrafficSink, WarpIdx};

/// Warp-level machine interface (see module docs).
pub trait WarpMachine {
    /// True when the machine executes numerics.
    const FUNCTIONAL: bool;

    /// Announces the warp issuing subsequent events. Purely for access
    /// tracing (`ks-analyze`): it records nothing and must never change
    /// counters or numerics, so the default is a no-op.
    fn begin_warp(&mut self, _warp: u32) {}

    /// Warp global load: lane `l` reads `vlen` consecutive words from
    /// `idx[l]`. Returns up to 4 words per lane (unused tail is zero).
    fn ld_global(&mut self, buf: BufId, idx: &WarpIdx, vlen: VecWidth) -> [[f32; 4]; 32];

    /// Warp global store of `vlen` words per lane.
    fn st_global(&mut self, buf: BufId, idx: &WarpIdx, vlen: VecWidth, vals: &[[f32; 4]; 32]);

    /// Warp `atomicAdd` of one word per lane.
    fn atomic_add(&mut self, buf: BufId, idx: &WarpIdx, vals: &[f32; 32]);

    /// Warp shared load of `vlen` consecutive words per lane.
    fn ld_shared(&mut self, word: &[Option<u32>; 32], vlen: VecWidth) -> [[f32; 4]; 32];

    /// Warp shared store of `vlen` consecutive words per lane.
    fn st_shared(&mut self, word: &[Option<u32>; 32], vlen: VecWidth, vals: &[[f32; 4]; 32]);

    /// `n` full-warp FFMA instructions.
    fn ffma(&mut self, n: u64);

    /// `n` full-warp FADD/FMUL instructions.
    fn falu(&mut self, n: u64);

    /// `n` full-warp integer/addressing/shuffle instructions.
    fn alu(&mut self, n: u64);

    /// `n` full-warp special-function instructions.
    fn sfu(&mut self, n: u64);

    /// Block barrier executed by `warps` warps.
    fn syncthreads(&mut self, warps: u64);

    /// Drains the accumulator-register bit flips the fault model
    /// scheduled against this block, as `(element draw, bit)` pairs.
    /// Purely functional: it issues no instructions and must never
    /// change counters, so the traffic machine's default returns
    /// nothing.
    fn accumulator_faults(&mut self) -> Vec<(u64, u8)> {
        Vec::new()
    }
}

/// Functional back-end over a [`BlockCtx`].
pub struct FunctionalMachine<'c, 'a, 'b> {
    ctx: &'c mut BlockCtx<'a, 'b>,
}

impl<'c, 'a, 'b> FunctionalMachine<'c, 'a, 'b> {
    /// Wraps a block context.
    pub fn new(ctx: &'c mut BlockCtx<'a, 'b>) -> Self {
        Self { ctx }
    }
}

fn widen<const VL: usize>(v: [[f32; VL]; 32]) -> [[f32; 4]; 32] {
    std::array::from_fn(|l| std::array::from_fn(|j| if j < VL { v[l][j] } else { 0.0 }))
}

fn narrow<const VL: usize>(v: &[[f32; 4]; 32]) -> [[f32; VL]; 32] {
    std::array::from_fn(|l| std::array::from_fn(|j| v[l][j]))
}

impl WarpMachine for FunctionalMachine<'_, '_, '_> {
    const FUNCTIONAL: bool = true;

    fn begin_warp(&mut self, warp: u32) {
        self.ctx.begin_warp(warp);
    }

    fn ld_global(&mut self, buf: BufId, idx: &WarpIdx, vlen: VecWidth) -> [[f32; 4]; 32] {
        match vlen {
            VecWidth::V1 => widen(self.ctx.warp_ld_global_vec::<1>(buf, idx)),
            VecWidth::V2 => widen(self.ctx.warp_ld_global_vec::<2>(buf, idx)),
            VecWidth::V4 => self.ctx.warp_ld_global_vec::<4>(buf, idx),
        }
    }

    fn st_global(&mut self, buf: BufId, idx: &WarpIdx, vlen: VecWidth, vals: &[[f32; 4]; 32]) {
        match vlen {
            VecWidth::V1 => self.ctx.warp_st_global_vec::<1>(buf, idx, &narrow(vals)),
            VecWidth::V2 => self.ctx.warp_st_global_vec::<2>(buf, idx, &narrow(vals)),
            VecWidth::V4 => self.ctx.warp_st_global_vec::<4>(buf, idx, vals),
        }
    }

    fn atomic_add(&mut self, buf: BufId, idx: &WarpIdx, vals: &[f32; 32]) {
        self.ctx.warp_atomic_add(buf, idx, vals);
    }

    fn ld_shared(&mut self, word: &[Option<u32>; 32], vlen: VecWidth) -> [[f32; 4]; 32] {
        match vlen {
            VecWidth::V1 => widen(self.ctx.warp_ld_shared_vec::<1>(word)),
            VecWidth::V2 => widen(self.ctx.warp_ld_shared_vec::<2>(word)),
            VecWidth::V4 => self.ctx.warp_ld_shared_vec::<4>(word),
        }
    }

    fn st_shared(&mut self, word: &[Option<u32>; 32], vlen: VecWidth, vals: &[[f32; 4]; 32]) {
        match vlen {
            VecWidth::V1 => self.ctx.warp_st_shared_vec::<1>(word, &narrow(vals)),
            VecWidth::V2 => self.ctx.warp_st_shared_vec::<2>(word, &narrow(vals)),
            VecWidth::V4 => self.ctx.warp_st_shared_vec::<4>(word, vals),
        }
    }

    fn ffma(&mut self, n: u64) {
        self.ctx.ffma(n);
    }
    fn falu(&mut self, n: u64) {
        self.ctx.falu(n);
    }
    fn alu(&mut self, n: u64) {
        self.ctx.alu(n);
    }
    fn sfu(&mut self, n: u64) {
        self.ctx.sfu(n);
    }
    fn syncthreads(&mut self, warps: u64) {
        self.ctx.syncthreads(warps);
    }
    fn accumulator_faults(&mut self) -> Vec<(u64, u8)> {
        self.ctx.take_accumulator_faults()
    }
}

/// Traffic-only back-end over a [`TrafficSink`].
pub struct TrafficMachine<'s, 'a> {
    sink: &'s mut TrafficSink<'a>,
}

impl<'s, 'a> TrafficMachine<'s, 'a> {
    /// Wraps a traffic sink.
    pub fn new(sink: &'s mut TrafficSink<'a>) -> Self {
        Self { sink }
    }
}

impl WarpMachine for TrafficMachine<'_, '_> {
    const FUNCTIONAL: bool = false;

    fn begin_warp(&mut self, warp: u32) {
        self.sink.begin_warp(warp);
    }

    fn ld_global(&mut self, buf: BufId, idx: &WarpIdx, vlen: VecWidth) -> [[f32; 4]; 32] {
        self.sink.global_read(buf, idx, vlen.words());
        [[0.0; 4]; 32]
    }

    fn st_global(&mut self, buf: BufId, idx: &WarpIdx, vlen: VecWidth, _vals: &[[f32; 4]; 32]) {
        self.sink.global_write(buf, idx, vlen.words());
    }

    fn atomic_add(&mut self, buf: BufId, idx: &WarpIdx, _vals: &[f32; 32]) {
        self.sink.global_atomic(buf, idx);
    }

    fn ld_shared(&mut self, word: &[Option<u32>; 32], vlen: VecWidth) -> [[f32; 4]; 32] {
        self.sink.shared_read(word, vlen.words());
        [[0.0; 4]; 32]
    }

    fn st_shared(&mut self, word: &[Option<u32>; 32], vlen: VecWidth, _vals: &[[f32; 4]; 32]) {
        self.sink.shared_write(word, vlen.words());
    }

    fn ffma(&mut self, n: u64) {
        self.sink.ffma(n);
    }
    fn falu(&mut self, n: u64) {
        self.sink.falu(n);
    }
    fn alu(&mut self, n: u64) {
        self.sink.alu(n);
    }
    fn sfu(&mut self, n: u64) {
        self.sink.sfu(n);
    }
    fn syncthreads(&mut self, warps: u64) {
        self.sink.syncthreads(warps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ks_gpu_sim::buffer::GlobalMem;
    use ks_gpu_sim::cache::Cache;
    use ks_gpu_sim::traffic::full_warp_idx;

    fn drive<M: WarpMachine>(m: &mut M, buf: BufId) -> [[f32; 4]; 32] {
        let idx = full_warp_idx(|l| l * 4);
        let out = m.ld_global(buf, &idx, VecWidth::V4);
        m.ffma(3);
        m.syncthreads(8);
        m.st_global(buf, &idx, VecWidth::V4, &out);
        out
    }

    #[test]
    fn both_machines_issue_identical_counters() {
        let mut mem = GlobalMem::new();
        let buf = mem.upload(&(0..128).map(|i| i as f32).collect::<Vec<_>>());

        let mut l2a = Cache::new(16 * 1024, 4, 32);
        let mut sink_a = TrafficSink::new(&mem, &mut l2a, 32, 32);
        {
            let mut ctx = BlockCtx::new(&mem, 0, Some(&mut sink_a));
            let mut fm = FunctionalMachine::new(&mut ctx);
            let v = drive(&mut fm, buf);
            assert_eq!(v[1][2], 6.0, "functional machine returns real data");
        }

        let mut l2b = Cache::new(16 * 1024, 4, 32);
        let mut sink_b = TrafficSink::new(&mem, &mut l2b, 32, 32);
        {
            let mut tm = TrafficMachine::new(&mut sink_b);
            let v = drive(&mut tm, buf);
            assert_eq!(v[1][2], 0.0, "traffic machine returns zeros");
        }

        assert_eq!(sink_a.counters, sink_b.counters);
        assert_eq!(l2a.stats(), l2b.stats());
    }

    #[test]
    fn functional_flag() {
        // Read through a generic helper so the flags are exercised the
        // way kernel bodies consume them.
        fn flag_of<M: WarpMachine>(_: &M) -> bool {
            M::FUNCTIONAL
        }
        let mem = GlobalMem::new();
        let mut ctx = BlockCtx::new(&mem, 0, None);
        assert!(flag_of(&FunctionalMachine::new(&mut ctx)));
        let mut l2 = Cache::new(1024, 4, 32);
        let mut sink = TrafficSink::new(&mem, &mut l2, 32, 32);
        assert!(!flag_of(&TrafficMachine::new(&mut sink)));
    }

    #[test]
    fn narrow_widen_round_trip() {
        let wide: [[f32; 4]; 32] =
            std::array::from_fn(|l| std::array::from_fn(|j| (l * 4 + j) as f32));
        let two: [[f32; 2]; 32] = narrow(&wide);
        let back = widen(two);
        for l in 0..32 {
            assert_eq!(back[l][0], wide[l][0]);
            assert_eq!(back[l][1], wide[l][1]);
            assert_eq!(back[l][2], 0.0);
        }
    }
}
