//! Tile geometry: the paper's 128×128/16×16/8×8/rank-8 configuration
//! as *one point* in a parameterized space.
//!
//! [`TileGeometry`] captures every tiling degree of freedom of the
//! fused kernel family: block tile extents, microtile extents, the
//! rank of the k-tile update, and the buffering depth. All derived
//! quantities — thread-block shape, loader schedule, shared-memory
//! swizzle, register/SMEM footprints — are functions of the geometry,
//! so the static access-pattern lint and the trace lint keep proving
//! each variant race- and conflict-free (see DESIGN.md §14).
//!
//! The swizzle generalizes Fig 5 of the paper. A tile of `block`
//! points × `tile_k` k-values is viewed as `MT = block/micro`
//! microtiles; each microtile is reshaped onto a *bank group* of
//! `g = 32/MT` banks: track `c` of microtile `m` lives in bank
//! `g·m + (c mod g)`, row `(c div g)·tile_k + k`. At the paper point
//! (`MT = 16`, `g = 2`) this is exactly Fig 5 (`bank = 2m + c mod 2`,
//! `row = 8·(c div 2) + k`).
//!
//! Loader schedule: the block's warps split in half (A-half, B-half);
//! a half of `L` warps covers the tile's `block` tracks in
//! `P = block/(32·L)` passes. In pass `p`, lane `u` of warp `w`
//! (effective slot `s = p·L + w`) fetches track `c = g·s + (u mod g)`
//! of microtile `m = u div g` and stores each element `k` to bank `u`
//! of row `s·tile_k + k` — all 32 lanes hit 32 distinct banks in
//! every phase for *every* feasible geometry, which is the invariant
//! the conflict-free-store proof rests on.

use ks_gpu_sim::config::DeviceConfig;
use ks_gpu_sim::kernel::KernelResources;
use ks_gpu_sim::occupancy::{occupancy, Occupancy};
use serde::{Deserialize, Serialize};

use crate::layout::SmemLayout;

/// One point of the fused-kernel tiling space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TileGeometry {
    /// Rows of A (and C) covered by one block tile.
    pub block_m: usize,
    /// Columns of B (and C) covered by one block tile.
    pub block_n: usize,
    /// Rank of one k-tile update (the paper's 8).
    pub tile_k: usize,
    /// Rows of the per-thread register microtile.
    pub micro_m: usize,
    /// Columns of the per-thread register microtile.
    pub micro_n: usize,
    /// Shared-memory buffering depth: 2 = double-buffered (Algorithm
    /// 2's pipelined loop), 1 = single-buffered.
    pub double_buffer_depth: usize,
}

impl std::fmt::Display for TileGeometry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}x{}/{}x{}/k{}/d{}",
            self.block_m,
            self.block_n,
            self.micro_m,
            self.micro_n,
            self.tile_k,
            self.double_buffer_depth
        )
    }
}

impl Default for TileGeometry {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Register model: microtile accumulators + two operand fragments +
/// address/loop bookkeeping. Calibrated so the paper point lands on
/// its measured 128 registers/thread.
fn regs_model(micro_m: usize, micro_n: usize) -> u32 {
    (micro_m * micro_n + 2 * (micro_m + micro_n) + 32) as u32
}

impl TileGeometry {
    /// The paper's configuration: 128×128 block, 8×8 microtile,
    /// rank-8 k-tiles, double-buffered (§III, Fig 4/5).
    #[must_use]
    pub const fn paper_default() -> Self {
        Self {
            block_m: 128,
            block_n: 128,
            tile_k: 8,
            micro_m: 8,
            micro_n: 8,
            double_buffer_depth: 2,
        }
    }

    /// Threads along x: one per microtile column group (`block_n /
    /// micro_n`).
    #[must_use]
    pub fn threads_x(&self) -> usize {
        self.block_n / self.micro_n
    }

    /// Threads along y (`block_m / micro_m`).
    #[must_use]
    pub fn threads_y(&self) -> usize {
        self.block_m / self.micro_m
    }

    /// Threads per block.
    #[must_use]
    pub fn threads_per_block(&self) -> usize {
        self.threads_x() * self.threads_y()
    }

    /// Warps per block.
    #[must_use]
    pub fn warps_per_block(&self) -> usize {
        self.threads_per_block() / 32
    }

    /// Loader warps per operand half.
    #[must_use]
    pub fn loader_warps(&self) -> usize {
        self.warps_per_block() / 2
    }

    /// `ty` rows covered by one compute warp (`32 / threads_x`).
    #[must_use]
    pub fn rows_per_warp(&self) -> usize {
        32 / self.threads_x()
    }

    /// The A-side tile mapping.
    #[must_use]
    pub fn side_a(&self) -> TileSide {
        TileSide {
            block: self.block_m,
            micro: self.micro_m,
            tile_k: self.tile_k,
        }
    }

    /// The B-side tile mapping.
    #[must_use]
    pub fn side_b(&self) -> TileSide {
        TileSide {
            block: self.block_n,
            micro: self.micro_n,
            tile_k: self.tile_k,
        }
    }

    /// Shared words of one A tile.
    #[must_use]
    pub fn a_tile_words(&self) -> usize {
        self.block_m * self.tile_k
    }

    /// Shared words of one B tile.
    #[must_use]
    pub fn b_tile_words(&self) -> usize {
        self.block_n * self.tile_k
    }

    /// Total shared words of the block (all buffered tiles).
    #[must_use]
    pub fn smem_words(&self) -> usize {
        self.double_buffer_depth * (self.a_tile_words() + self.b_tile_words())
    }

    /// Shared bytes per block.
    #[must_use]
    pub fn smem_bytes(&self) -> u32 {
        (self.smem_words() * 4) as u32
    }

    /// Registers per thread of the single-weight fused kernel.
    #[must_use]
    pub fn regs_per_thread(&self) -> u32 {
        regs_model(self.micro_m, self.micro_n)
    }

    /// Registers per thread of the rank-`r` multi-weight variant
    /// (each extra weight column pins one γ row + one weight
    /// fragment per microtile column).
    #[must_use]
    pub fn regs_per_thread_multi(&self, r: usize) -> u32 {
        self.regs_per_thread() + (2 * self.micro_n * (r.max(1) - 1)) as u32
    }

    /// Launch resources of the fused kernel at this geometry.
    #[must_use]
    pub fn resources(&self) -> KernelResources {
        KernelResources {
            threads_per_block: self.threads_per_block() as u32,
            regs_per_thread: self.regs_per_thread(),
            smem_bytes_per_block: self.smem_bytes(),
        }
    }

    /// Occupancy of the fused kernel at this geometry on `dev`.
    #[must_use]
    pub fn occupancy(&self, dev: &DeviceConfig) -> Occupancy {
        occupancy(dev, &self.resources())
    }

    /// Grid extent `(N/block_n, M/block_m)` for a problem shape.
    #[must_use]
    pub fn grid_for(&self, m: usize, n: usize) -> (u32, u32) {
        ((n / self.block_n) as u32, (m / self.block_m) as u32)
    }

    /// K-tiles per block for inner dimension `k`.
    #[must_use]
    pub fn tiles(&self, k: usize) -> usize {
        k / self.tile_k
    }

    /// True when the problem shape divides this geometry exactly
    /// (fringe tiles are out of scope, as in the seed engine).
    #[must_use]
    pub fn divides(&self, m: usize, n: usize, k: usize) -> bool {
        m > 0
            && n > 0
            && k > 0
            && m.is_multiple_of(self.block_m)
            && n.is_multiple_of(self.block_n)
            && k.is_multiple_of(self.tile_k)
    }

    /// Shared-memory audit phases per warp for a tile of `words`
    /// words (ABFT re-read schedule; see `gemm_engine::audit_tile`).
    #[must_use]
    pub fn audit_phases(&self, words: usize) -> usize {
        words / (32 * self.warps_per_block())
    }

    /// Drain phases of the three-level reduction: the `block_m`-word
    /// `T` scratch is drained 32 words at a time, phase `p` by warp
    /// `p mod warps`.
    #[must_use]
    pub fn drain_phases(&self) -> usize {
        self.block_m / 32
    }

    /// Structural + device feasibility. `Ok(())` means the geometry's
    /// loader schedule, swizzle, reduction tree and ABFT audit are all
    /// well-formed and the block fits the device's register/SMEM/
    /// thread budgets with at least one resident block per SM.
    ///
    /// # Errors
    /// Returns a human-readable reason for the first violated
    /// constraint.
    pub fn feasibility(&self, dev: &DeviceConfig) -> Result<(), String> {
        let pow2 = |v: usize| v.is_power_of_two();
        if !(pow2(self.block_m)
            && pow2(self.block_n)
            && pow2(self.tile_k)
            && pow2(self.micro_m)
            && pow2(self.micro_n))
        {
            return Err("tile extents must be powers of two".into());
        }
        if !(1..=2).contains(&self.double_buffer_depth) {
            return Err("double_buffer_depth must be 1 or 2".into());
        }
        if self.micro_m < 4 || self.micro_n < 4 {
            return Err("microtile extents must be >= 4 (V4 epilogue loads)".into());
        }
        if self.tile_k < 4 {
            return Err("tile_k must be >= 4 (V4 track loads)".into());
        }
        if self.micro_m > self.block_m || self.micro_n > self.block_n {
            return Err("microtile larger than block tile".into());
        }
        let (tx, ty) = (self.threads_x(), self.threads_y());
        // g = 32/MT >= 2 on both sides: bank groups must hold the V2
        // compute pairs.
        if ty > 16 {
            return Err(format!("threads_y = {ty} > 16 (A-side bank group < 2)"));
        }
        if tx > 16 {
            return Err(format!("threads_x = {tx} > 16 (B-side bank group < 2)"));
        }
        let threads = tx * ty;
        if threads % 32 != 0 || threads < 64 {
            return Err(format!("{threads} threads: need a multiple of 32, >= 64"));
        }
        if threads as u32 > dev.max_threads_per_block {
            return Err(format!("{threads} threads exceed the device block limit"));
        }
        let warps = threads / 32;
        if warps % 2 != 0 {
            return Err(format!("{warps} warps: loader halves need an even count"));
        }
        // Loader passes must tile the tracks exactly.
        let l = warps / 2;
        if !self.block_m.is_multiple_of(32 * l) {
            return Err(format!(
                "A loader: {} tracks not a multiple of {} lanes",
                self.block_m,
                32 * l
            ));
        }
        if !self.block_n.is_multiple_of(32 * l) {
            return Err(format!(
                "B loader: {} tracks not a multiple of {} lanes",
                self.block_n,
                32 * l
            ));
        }
        // T-park conflict freedom: the tx==0 lanes of one warp write
        // `rows_per_warp` rows of stride micro_m into 32 banks.
        if self.micro_m > tx {
            return Err(format!(
                "micro_m = {} > threads_x = {tx}: T-park stores would conflict",
                self.micro_m
            ));
        }
        if !self.block_m.is_multiple_of(32) {
            return Err("block_m must be a multiple of 32 (drain phases)".into());
        }
        // ABFT audit: each tile must split into whole 32-lane phases
        // across the block's warps.
        for (label, words) in [("A", self.a_tile_words()), ("B", self.b_tile_words())] {
            if words % (32 * warps) != 0 {
                return Err(format!(
                    "{label} tile ({words} words) not auditable by {warps} warps"
                ));
            }
        }
        if self.regs_per_thread() > dev.max_regs_per_thread {
            return Err(format!(
                "{} regs/thread exceed the device limit",
                self.regs_per_thread()
            ));
        }
        if self.smem_bytes() > dev.max_smem_per_block {
            return Err(format!(
                "{} SMEM bytes exceed the per-block limit",
                self.smem_bytes()
            ));
        }
        let occ = self.occupancy(dev);
        if occ.blocks_per_sm == 0 {
            return Err("zero resident blocks per SM".into());
        }
        Ok(())
    }

    /// True when `other` is *bit-compatible* with `self`: same
    /// N-side geometry, hence the same target-association tree and
    /// the same per-element floating-point reduction order. The
    /// GEMM accumulation over K is sequential in global k order for
    /// every `tile_k`/depth, and the M-side tiling only re-partitions
    /// rows across blocks, so two bit-compatible geometries produce
    /// bit-identical results on the same inputs — the contract the
    /// energy-budgeted serve router relies on.
    #[must_use]
    pub fn bit_compatible(&self, other: &TileGeometry) -> bool {
        self.block_n == other.block_n && self.micro_n == other.micro_n
    }

    /// Enumerates the legal geometry lattice for `dev`: every
    /// structurally sound, device-feasible point over the candidate
    /// ranges (block ∈ {32..256}, micro ∈ {4..16}, tile_k ∈ {4..16},
    /// depth ∈ {1, 2}). The paper default is always a member.
    #[must_use]
    pub fn lattice(dev: &DeviceConfig) -> Vec<TileGeometry> {
        let mut out = Vec::new();
        for block_m in [32, 64, 128, 256] {
            for block_n in [32, 64, 128, 256] {
                for micro_m in [4, 8, 16] {
                    for micro_n in [4, 8, 16] {
                        for tile_k in [4, 8, 16] {
                            for double_buffer_depth in [1, 2] {
                                let g = TileGeometry {
                                    block_m,
                                    block_n,
                                    tile_k,
                                    micro_m,
                                    micro_n,
                                    double_buffer_depth,
                                };
                                if g.feasibility(dev).is_ok() {
                                    out.push(g);
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// One operand side (A or B) of a [`TileGeometry`]: the tile mapping
/// onto shared memory and the loader-track schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileSide {
    /// Points per tile (block_m or block_n).
    pub block: usize,
    /// Points per microtile (micro_m or micro_n).
    pub micro: usize,
    /// K-values per tile.
    pub tile_k: usize,
}

impl TileSide {
    /// Microtiles per tile.
    #[must_use]
    pub fn microtiles(&self) -> usize {
        self.block / self.micro
    }

    /// Bank-group width `g = 32 / microtiles`.
    #[must_use]
    pub fn group(&self) -> usize {
        32 / self.microtiles()
    }

    /// Words per tile.
    #[must_use]
    pub fn words(&self) -> usize {
        self.block * self.tile_k
    }

    /// Loader slots (`(warp, pass)` combinations) per tile.
    #[must_use]
    pub fn loader_slots(&self) -> usize {
        self.block / 32
    }

    /// Word offset (within the tile's shared array) of element `k` of
    /// track `c` of microtile `m`.
    #[inline]
    #[must_use]
    pub fn word(&self, layout: SmemLayout, m: usize, c: usize, k: usize) -> u32 {
        debug_assert!(m < self.microtiles() && c < self.micro && k < self.tile_k);
        match layout {
            SmemLayout::Swizzled => {
                let g = self.group();
                let row = (c / g) * self.tile_k + k;
                let bank = g * m + (c % g);
                (row * 32 + bank) as u32
            }
            SmemLayout::NaiveRowMajor => {
                let point = m * self.micro + c;
                (k * self.block + point) as u32
            }
        }
    }

    /// Loader-track assignment: which `(microtile, track)` lane `u`
    /// of effective slot `s` (= `pass·L + warp`) fetches and stores.
    #[inline]
    #[must_use]
    pub fn loader_track(&self, s: usize, u: usize) -> (usize, usize) {
        debug_assert!(s < self.loader_slots() && u < 32);
        let g = self.group();
        (u / g, g * s + (u % g))
    }

    /// Global element index (within the tile's source region) of
    /// track `(m, c)` with `k_stride` elements between points.
    #[inline]
    #[must_use]
    pub fn track_global_offset(&self, m: usize, c: usize, k_stride: usize) -> usize {
        (m * self.micro + c) * k_stride
    }

    /// Compute-phase word pairs: the `micro` values of microtile `m`
    /// at k-step `k` are read as `micro/2` aligned LDS.64 pairs; pair
    /// `j` holds tracks `(2j, 2j+1)` and starts at the returned word.
    #[inline]
    #[must_use]
    pub fn pair_base(&self, layout: SmemLayout, m: usize, k: usize, j: usize) -> u32 {
        debug_assert!(j < self.micro / 2);
        match layout {
            SmemLayout::Swizzled => {
                let g = self.group();
                let c = 2 * j;
                (((c / g) * self.tile_k + k) * 32 + g * m + (c % g)) as u32
            }
            SmemLayout::NaiveRowMajor => (k * self.block + m * self.micro + 2 * j) as u32,
        }
    }

    /// Number of LDS.64 pairs per microtile read.
    #[must_use]
    pub fn pairs(&self) -> usize {
        self.micro / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ks_gpu_sim::smem::warp_transactions;

    fn dev() -> DeviceConfig {
        DeviceConfig::gtx970()
    }

    #[test]
    fn paper_default_matches_legacy_constants() {
        let g = TileGeometry::paper_default();
        assert_eq!(g.threads_x(), 16);
        assert_eq!(g.threads_y(), 16);
        assert_eq!(g.threads_per_block(), 256);
        assert_eq!(g.warps_per_block(), 8);
        assert_eq!(g.loader_warps(), 4);
        assert_eq!(g.rows_per_warp(), 2);
        assert_eq!(g.a_tile_words(), 1024);
        assert_eq!(g.smem_words(), 4096);
        assert_eq!(g.smem_bytes(), 16 * 1024);
        assert_eq!(g.regs_per_thread(), 128);
        assert_eq!(g.regs_per_thread_multi(1), 128);
        assert_eq!(g.regs_per_thread_multi(4), 128 + 16 * 3);
        assert_eq!(g.drain_phases(), 4);
        assert_eq!(g.audit_phases(g.a_tile_words()), 4);
        assert_eq!(g.grid_for(1024, 1024), (8, 8));
        assert!(g.feasibility(&dev()).is_ok());
    }

    #[test]
    fn paper_default_side_maps_match_fig5() {
        let g = TileGeometry::paper_default();
        let side = g.side_a();
        assert_eq!(side.group(), 2);
        for m in 0..16 {
            for c in 0..8 {
                for k in 0..8 {
                    let want = ((8 * (c / 2) + k) * 32 + 2 * m + c % 2) as u32;
                    assert_eq!(side.word(SmemLayout::Swizzled, m, c, k), want);
                }
            }
        }
        for w in 0..4 {
            for u in 0..32 {
                assert_eq!(side.loader_track(w, u), (u / 2, 2 * w + u % 2));
            }
        }
        for m in 0..16 {
            for k in 0..8 {
                for j in 0..4 {
                    assert_eq!(
                        side.pair_base(SmemLayout::Swizzled, m, k, j),
                        ((8 * j + k) * 32 + 2 * m) as u32
                    );
                }
            }
        }
    }

    #[test]
    fn lattice_contains_default_and_only_feasible_points() {
        let lattice = TileGeometry::lattice(&dev());
        assert!(lattice.contains(&TileGeometry::paper_default()));
        assert!(lattice.len() >= 8, "lattice too sparse: {}", lattice.len());
        for g in &lattice {
            g.feasibility(&dev()).unwrap();
        }
    }

    #[test]
    fn every_lattice_word_map_is_a_conflict_free_bijection() {
        // The generalized Fig 5 invariants, for every feasible
        // geometry and both operand sides: (1) (m, c, k) ↦ word is a
        // bijection onto the tile; (2) every loader store phase hits
        // 32 distinct banks; (3) loader slots cover every track once;
        // (4) compute pairs agree with the word map.
        for g in TileGeometry::lattice(&dev()) {
            for side in [g.side_a(), g.side_b()] {
                for layout in [SmemLayout::Swizzled, SmemLayout::NaiveRowMajor] {
                    let mut seen = vec![false; side.words()];
                    for m in 0..side.microtiles() {
                        for c in 0..side.micro {
                            for k in 0..side.tile_k {
                                let w = side.word(layout, m, c, k) as usize;
                                assert!(!seen[w], "{g} {layout:?}: word {w} twice");
                                seen[w] = true;
                            }
                        }
                    }
                    assert!(seen.iter().all(|&s| s), "{g} {layout:?}: uncovered");
                }
                let mut tracks = vec![false; side.block];
                for s in 0..side.loader_slots() {
                    for u in 0..32 {
                        let (m, c) = side.loader_track(s, u);
                        let t = m * side.micro + c;
                        assert!(!tracks[t], "{g}: track {t} loaded twice");
                        tracks[t] = true;
                        for k in 0..side.tile_k {
                            let word = side.word(SmemLayout::Swizzled, m, c, k);
                            assert_eq!(word % 32, u as u32, "{g}: store bank != lane");
                            assert_eq!(word / 32, (s * side.tile_k + k) as u32);
                        }
                    }
                    for k in 0..side.tile_k {
                        let addrs: [Option<u32>; 32] = std::array::from_fn(|u| {
                            let (m, c) = side.loader_track(s, u);
                            Some(side.word(SmemLayout::Swizzled, m, c, k))
                        });
                        assert_eq!(warp_transactions(&addrs, 32), 1, "{g}: store conflict");
                    }
                }
                assert!(tracks.iter().all(|&t| t), "{g}: uncovered tracks");
                for m in 0..side.microtiles() {
                    for k in 0..side.tile_k {
                        for j in 0..side.pairs() {
                            let base = side.pair_base(SmemLayout::Swizzled, m, k, j);
                            assert_eq!(base, side.word(SmemLayout::Swizzled, m, 2 * j, k));
                            assert_eq!(base + 1, side.word(SmemLayout::Swizzled, m, 2 * j + 1, k));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn lattice_compute_loads_are_conflict_free() {
        // B-operand reads: the tx lanes of one warp touch distinct
        // bank groups; A-operand reads broadcast over tx. One
        // transaction per LDS.64 phase either way.
        for g in TileGeometry::lattice(&dev()) {
            let (a, b) = (g.side_a(), g.side_b());
            let tx_n = g.threads_x();
            for w in 0..g.warps_per_block() {
                for k in 0..g.tile_k {
                    for j in 0..b.pairs() {
                        for phase in 0..2u32 {
                            let addrs: [Option<u32>; 32] = std::array::from_fn(|lane| {
                                let tx = lane % tx_n;
                                Some(b.pair_base(SmemLayout::Swizzled, tx, k, j) + phase)
                            });
                            assert_eq!(warp_transactions(&addrs, 32), 1, "{g}: B load");
                        }
                    }
                    for j in 0..a.pairs() {
                        for phase in 0..2u32 {
                            let addrs: [Option<u32>; 32] = std::array::from_fn(|lane| {
                                let ty = g.rows_per_warp() * w + lane / tx_n;
                                Some(a.pair_base(SmemLayout::Swizzled, ty, k, j) + phase)
                            });
                            assert_eq!(warp_transactions(&addrs, 32), 1, "{g}: A load");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn t_park_stores_are_conflict_free_on_the_lattice() {
        // The intra-block reduction parks one word per block row:
        // lane (tx == 0, ty) of warp w writes word ty·micro_m + r.
        for g in TileGeometry::lattice(&dev()) {
            for w in 0..g.warps_per_block() {
                for r in 0..g.micro_m {
                    let addrs: [Option<u32>; 32] = std::array::from_fn(|lane| {
                        let tx = lane % g.threads_x();
                        let ty = g.rows_per_warp() * w + lane / g.threads_x();
                        (tx == 0).then(|| (ty * g.micro_m + r) as u32)
                    });
                    assert_eq!(warp_transactions(&addrs, 32), 1, "{g}: T park conflict");
                }
            }
        }
    }

    #[test]
    fn infeasible_points_are_rejected_with_reasons() {
        let d = dev();
        let cases = [
            (
                TileGeometry {
                    block_m: 96,
                    ..TileGeometry::paper_default()
                },
                "powers of two",
            ),
            (
                TileGeometry {
                    micro_m: 2,
                    ..TileGeometry::paper_default()
                },
                ">= 4",
            ),
            (
                TileGeometry {
                    block_m: 256,
                    micro_m: 8,
                    ..TileGeometry::paper_default()
                },
                "threads_y",
            ),
            (
                TileGeometry {
                    double_buffer_depth: 3,
                    ..TileGeometry::paper_default()
                },
                "depth",
            ),
            (
                TileGeometry {
                    micro_m: 16,
                    micro_n: 16,
                    block_m: 256,
                    block_n: 256,
                    ..TileGeometry::paper_default()
                },
                "regs",
            ),
        ];
        for (g, needle) in cases {
            let err = g.feasibility(&d).unwrap_err();
            assert!(err.contains(needle), "{g}: expected '{needle}' in '{err}'");
        }
    }

    #[test]
    fn bit_compatibility_is_n_side_only() {
        let d = TileGeometry::paper_default();
        let m_side = TileGeometry {
            block_m: 64,
            tile_k: 4,
            double_buffer_depth: 1,
            ..d
        };
        assert!(d.bit_compatible(&m_side));
        let n_side = TileGeometry { block_n: 64, ..d };
        assert!(!d.bit_compatible(&n_side));
    }

    #[test]
    fn geometry_serde_round_trip() {
        let g = TileGeometry::paper_default();
        let s = serde_json::to_string(&g).unwrap();
        assert_eq!(serde_json::from_str::<TileGeometry>(&s).unwrap(), g);
    }
}
