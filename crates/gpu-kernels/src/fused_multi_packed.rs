//! Horizontally-fused packed kernel: many unrelated small fused-multi
//! queries in **one** launch.
//!
//! At serving scale traffic is dominated by small `(source, target, h)`
//! queries that each underfill the grid — a 256×256 query at the paper
//! geometry launches 4 blocks onto a 13-SM device that seats 26 blocks
//! per wave, so every back-to-back launch pays a near-empty tail wave
//! plus a full launch overhead. Horizontal fusion (Li et al.,
//! "Automatic Horizontal Fusion for GPU Kernels") remaps thread blocks
//! instead: a single 1-D grid covers the **concatenation** of the
//! segments' 2-D grids and a per-block routing table maps each linear
//! block index back to (segment, local block), so each block executes
//! the *existing* fused microkernel against its own segment's buffers.
//!
//! ## Routing table
//! Segment `i` owns the half-open linear block range
//! `prefix[i]..prefix[i+1]` where `prefix` is the running sum of
//! per-segment grid sizes `gx·gy`. Inside a range the local block is
//! recovered exactly as CUDA linearizes a 2-D grid (x fastest):
//! `bx = (linear − prefix[i]) % gx`, `by = (linear − prefix[i]) / gx`.
//! The ranges partition `0..total` by construction — every block is
//! assigned to exactly one segment and every segment block is covered.
//!
//! ## Bit-exactness
//! A packed launch is bit-identical to running the segments back to
//! back: each block runs [`FusedMultiWeight::body`] with the same local
//! coordinates and the same buffer contents it would see unpacked, the
//! segments write disjoint output buffers, and the atomic-reduction
//! envelope *within* a segment (how many blocks fold into each `V`
//! element) is unchanged by packing. The serve layer keeps the same
//! determinism envelope it already documents for the unpacked kernel
//! (≤ 2 atomic contributors per output element).
//!
//! ## Admission
//! The packed kernel deliberately returns `access_spec() = None` — an
//! honest dynamic-lint downgrade. Each segment's access pattern is
//! affine in its *own* 2-D grid, but the packed launch is a 1-D grid
//! whose block → offset map is piecewise (one piece per segment), which
//! the single-affine `AccessSpec` language cannot express. Static
//! admission still gates packed serving: the serve layer admits every
//! segment *individually* (same `AdmissionKey` as unpacked) before it
//! is eligible for packing, so no un-admitted shape can ride in.

use std::collections::HashMap;

use ks_gpu_sim::access::AccessSpec;
use ks_gpu_sim::buffer::BufId;
use ks_gpu_sim::config::DeviceConfig;
use ks_gpu_sim::device::GpuDevice;
use ks_gpu_sim::dim::{Dim3, LaunchConfig};
use ks_gpu_sim::exec::BlockCtx;
use ks_gpu_sim::kernel::{
    AnalysisBudget, BlockClass, BufferUse, Kernel, KernelResources, LaunchError, TimingHints,
};
use ks_gpu_sim::profiler::PipelineProfile;
use ks_gpu_sim::traffic::TrafficSink;

use crate::aux_kernels::{Bandwidth, NormsKernel};
use crate::fused::{VerifyBufs, VerifyReport, CHECKSUM_SLOT_WORDS};
use crate::fused_multi::{FusedMultiWeight, MAX_WEIGHT_COLUMNS};
use crate::gemm_engine::{GemmOperands, GemmShape, SmemMap};
use crate::geometry::TileGeometry;
use crate::machine::{FunctionalMachine, TrafficMachine};

/// Block-index → segment routing for a packed launch.
///
/// Public (and separate from the kernel) so the partition property —
/// every linear block maps to exactly one segment with in-range local
/// coordinates — can be property-tested directly.
#[derive(Debug, Clone)]
pub struct RoutingTable {
    grids: Vec<(u32, u32)>,
    /// `prefix[i]` = first linear block of segment `i`;
    /// `prefix[len]` = total blocks.
    prefix: Vec<u32>,
}

impl RoutingTable {
    /// Builds the table from per-segment `(gx, gy)` grids.
    ///
    /// # Panics
    /// Panics on an empty segment list or a zero-sized grid.
    #[must_use]
    pub fn new(grids: &[(u32, u32)]) -> Self {
        assert!(
            !grids.is_empty(),
            "packed launch needs at least one segment"
        );
        let mut prefix = Vec::with_capacity(grids.len() + 1);
        let mut total = 0u32;
        prefix.push(0);
        for &(gx, gy) in grids {
            assert!(gx > 0 && gy > 0, "segment grid must be non-empty");
            total = total
                .checked_add(gx.checked_mul(gy).expect("grid size overflow"))
                .expect("packed grid overflow");
            prefix.push(total);
        }
        Self {
            grids: grids.to_vec(),
            prefix,
        }
    }

    /// Total linear blocks in the packed grid.
    #[must_use]
    pub fn total_blocks(&self) -> u32 {
        *self.prefix.last().expect("prefix never empty")
    }

    /// Number of segments.
    #[must_use]
    pub fn segments(&self) -> usize {
        self.grids.len()
    }

    /// The `(gx, gy)` grid of segment `seg`.
    #[must_use]
    pub fn grid(&self, seg: usize) -> (u32, u32) {
        self.grids[seg]
    }

    /// First linear block of segment `seg` (its block-range start).
    #[must_use]
    pub fn segment_start(&self, seg: usize) -> u32 {
        self.prefix[seg]
    }

    /// Maps a linear block index to `(segment, local 2-D block)`.
    ///
    /// # Panics
    /// Panics when `linear` is outside the packed grid.
    #[must_use]
    pub fn route(&self, linear: u32) -> (usize, Dim3) {
        assert!(
            linear < self.total_blocks(),
            "block {linear} outside packed grid of {}",
            self.total_blocks()
        );
        // prefix is strictly increasing; find the owning range.
        let seg = self.prefix.partition_point(|&p| p <= linear) - 1;
        let local = linear - self.prefix[seg];
        let (gx, _) = self.grids[seg];
        (seg, Dim3::new_2d(local % gx, local / gx))
    }
}

/// The horizontally-fused packed kernel: one 1-D launch over the
/// concatenated grids of many [`FusedMultiWeight`] segments (see the
/// module docs for routing and bit-exactness).
pub struct FusedMultiPacked {
    segments: Vec<FusedMultiWeight>,
    table: RoutingTable,
    geometry: TileGeometry,
    max_r: usize,
    verified: bool,
}

impl FusedMultiPacked {
    /// Packs `segments` into one launch.
    ///
    /// # Panics
    /// Panics when `segments` is empty, the segments do not share one
    /// tile geometry (one launch has one block shape / smem footprint),
    /// or ABFT verification is not uniform across segments.
    #[must_use]
    pub fn new(segments: Vec<FusedMultiWeight>) -> Self {
        assert!(!segments.is_empty(), "packed launch needs segments");
        let geometry = segments[0].geometry;
        let verified = segments[0].verify.is_some();
        for seg in &segments {
            assert_eq!(
                seg.geometry, geometry,
                "packed segments must share one tile geometry"
            );
            assert_eq!(
                seg.verify.is_some(),
                verified,
                "packed segments must uniformly enable or disable ABFT"
            );
        }
        let grids: Vec<(u32, u32)> = segments
            .iter()
            .map(|s| s.shape.grid_for(&geometry))
            .collect();
        let max_r = segments.iter().map(|s| s.r).max().expect("non-empty");
        Self {
            segments,
            table: RoutingTable::new(&grids),
            geometry,
            max_r,
            verified,
        }
    }

    /// The per-block routing table.
    #[must_use]
    pub fn table(&self) -> &RoutingTable {
        &self.table
    }

    /// The shared tile geometry.
    #[must_use]
    pub fn geometry(&self) -> &TileGeometry {
        &self.geometry
    }
}

impl Kernel for FusedMultiPacked {
    fn name(&self) -> String {
        let tag = if self.verified { "_abft" } else { "" };
        let gtag = if self.geometry == TileGeometry::paper_default() {
            String::new()
        } else {
            let g = &self.geometry;
            format!(
                "_g{}x{}u{}x{}k{}d{}",
                g.block_m, g.block_n, g.micro_m, g.micro_n, g.tile_k, g.double_buffer_depth
            )
        };
        format!(
            "fused_multi_packed{}w{}{tag}{gtag}_{}b",
            self.segments.len(),
            self.max_r,
            self.table.total_blocks()
        )
    }

    fn launch_config(&self) -> LaunchConfig {
        LaunchConfig::new(
            Dim3::new_1d(self.table.total_blocks()),
            Dim3::new_2d(
                self.geometry.threads_x() as u32,
                self.geometry.threads_y() as u32,
            ),
        )
    }

    fn resources(&self) -> KernelResources {
        // One launch, one register/smem budget: the occupancy cost is
        // set by the widest segment (max column count).
        KernelResources {
            threads_per_block: self.geometry.threads_per_block() as u32,
            regs_per_thread: self.geometry.regs_per_thread_multi(self.max_r).min(255),
            smem_bytes_per_block: SmemMap::for_geometry(&self.geometry).bytes(),
        }
    }

    fn timing_hints(&self) -> TimingHints {
        // Same execution model as the segments it hosts.
        self.segments[0].timing_hints()
    }

    fn execute_block(&self, block: Dim3, ctx: &mut BlockCtx) {
        let (seg, local) = self.table.route(block.x);
        self.segments[seg].body(local, &mut FunctionalMachine::new(ctx));
    }

    fn block_traffic(&self, block: Dim3, sink: &mut TrafficSink) {
        let (seg, local) = self.table.route(block.x);
        self.segments[seg].body(local, &mut TrafficMachine::new(sink));
    }

    fn traffic_homogeneous(&self) -> bool {
        // Blocks of different segments run different shapes/column
        // counts — never scale one block's counters by the grid.
        false
    }

    fn access_spec(&self) -> Option<AccessSpec> {
        // Honest dynamic-lint downgrade (see module docs): per-segment
        // patterns are affine in the segment-local grid, not in the
        // packed linear grid, so no single AccessSpec describes this
        // launch. Serve-side admission gates each segment individually
        // before it may be packed.
        None
    }

    fn block_class(&self, block: Dim3) -> Option<BlockClass> {
        // Within a segment all blocks share one instruction stream and
        // differ only by the segment's own per-buffer anchors (the
        // unpacked kernel's class, key 0). Across segments streams
        // differ, so the class key is the segment index.
        let (seg, local) = self.table.route(block.x);
        let inner = self.segments[seg]
            .block_class(local)
            .expect("segment kernels always classify");
        Some(BlockClass {
            key: seg as u64,
            anchors: inner.anchors,
        })
    }

    fn analysis_budget(&self) -> AnalysisBudget {
        // Merge the per-segment buffer inventories; shared buffers
        // (deduplicated corpora uploads) keep their widest extent.
        let mut merged: Vec<BufferUse> = Vec::new();
        let mut index: HashMap<BufId, usize> = HashMap::new();
        for seg in &self.segments {
            for us in seg.analysis_budget().buffers {
                match index.get(&us.buf) {
                    Some(&i) => {
                        let slot: &mut BufferUse = &mut merged[i];
                        slot.len = slot.len.max(us.len);
                        slot.writes |= us.writes;
                    }
                    None => {
                        index.insert(us.buf, merged.len());
                        merged.push(us);
                    }
                }
            }
        }
        let occ = ks_gpu_sim::occupancy::occupancy(&DeviceConfig::gtx970(), &self.resources());
        AnalysisBudget {
            smem_conflict_budget: 0,
            expected_blocks_per_sm: Some(occ.blocks_per_sm),
            expected_limiter: Some(occ.limiter),
            buffers: merged,
        }
    }
}

/// Label under which packed batches appear in profiles and metrics.
pub const FUSED_MULTI_PACKED_PIPELINE: &str = "Fused-Multi-Packed";

/// Pipeline label of the ABFT-verified packed path.
pub const FUSED_MULTI_PACKED_VERIFIED_PIPELINE: &str = "Fused-Multi-Packed-ABFT";

/// One query's slice of a packed launch, as the host sees it.
///
/// `a_key`/`b_key` enable plan-cache-aware upload deduplication:
/// segments carrying equal keys promise **byte-identical** `a` (resp.
/// `b`) slices and share one uploaded buffer. Norms sharing splits by
/// warmth — cold sharers share one norms pass, warm sharers share the
/// first uploaded `a2` (equal keys promise byte-identical norms too)
/// — but warmth never migrates between sharers: host-precomputed
/// norms are not bit-identical to the kernel's, so upgrading a cold
/// segment would break the bit-identity contract. `None` keys never
/// share.
pub struct PackedSegmentSpec<'a> {
    /// Padded GEMM shape of this segment (must divide the geometry).
    pub shape: GemmShape,
    /// Gaussian bandwidth.
    pub h: f32,
    /// `M×K` row-major source corpus.
    pub a: &'a [f32],
    /// `N×K` row-major target points (stored `K×N` GEMM-wise).
    pub b: &'a [f32],
    /// `N×R` column-major weights.
    pub w_cols: &'a [f32],
    /// Precomputed `‖aᵢ‖²` row norms (plan-cache hit): skips norms(A).
    pub a2: Option<&'a [f32]>,
    /// Upload-dedup key for `a` (e.g. the plan's identity).
    pub a_key: Option<u64>,
    /// Upload-dedup key for `b` (e.g. the target set's identity).
    pub b_key: Option<u64>,
}

/// Per-corpus upload slot shared by all segments with one dedup key.
///
/// The *data* upload is shared unconditionally (equal keys promise
/// byte-identical slices), but norms are split by warmth: precomputed
/// norms are **not** bit-identical to the norms kernel's output (the
/// host accumulates in f64, the kernel in f32), so a warm segment's
/// upload must never serve a cold sharer — each class keeps its own
/// buffer and a mixed slot carries both.
struct CorpusSlot {
    buf: BufId,
    /// Uploaded precomputed norms, shared by the slot's warm segments.
    sq_warm: Option<BufId>,
    /// Kernel-computed norms, shared by the slot's cold segments; a
    /// norms kernel fills this before the packed launch.
    sq_cold: Option<BufId>,
    points: usize,
    dim: usize,
    /// Norms-kernel label ("a" or "b"), matching the unpacked pipeline.
    label: &'static str,
}

/// Resolves the slot for `(key, data)` and the norms buffer this
/// segment reads, uploading data/norms or allocating the cold norms
/// buffer on first use.
#[allow(clippy::too_many_arguments)]
fn corpus_slot(
    dev: &mut GpuDevice,
    slots: &mut Vec<CorpusSlot>,
    index: &mut HashMap<u64, usize>,
    key: Option<u64>,
    data: &[f32],
    norms: Option<&[f32]>,
    points: usize,
    dim: usize,
    label: &'static str,
) -> (usize, BufId) {
    let i = match key.and_then(|k| index.get(&k).copied()) {
        Some(i) => {
            assert_eq!(
                (slots[i].points, slots[i].dim),
                (points, dim),
                "segments sharing an upload key must share the padded corpus shape"
            );
            i
        }
        None => {
            let buf = dev.upload(data);
            let i = slots.len();
            slots.push(CorpusSlot {
                buf,
                sq_warm: None,
                sq_cold: None,
                points,
                dim,
                label,
            });
            if let Some(k) = key {
                index.insert(k, i);
            }
            i
        }
    };
    let slot = &mut slots[i];
    let sq = match norms {
        Some(nm) => {
            assert_eq!(nm.len(), points, "row norms must match the corpus rows");
            *slot.sq_warm.get_or_insert_with(|| dev.upload(nm))
        }
        None => *slot.sq_cold.get_or_insert_with(|| dev.alloc(points)),
    };
    (i, sq)
}

/// Runs a horizontally-fused packed wave end to end on `dev`: one
/// norms pass per **unique** cold corpus slot (warm segments upload
/// their precomputed norms exactly as the unpacked plan-hit path
/// does, and never lend them to cold sharers — see
/// [`PackedSegmentSpec`]), then **one** packed fused launch over
/// every segment. Returns
/// each segment's `M×R` column-major result, the pipeline profile, and
/// (when `verify`) one [`VerifyReport`] per segment so a corrupted
/// launch degrades only the affected segments.
///
/// Results are bit-identical to running each segment through
/// [`crate::fused_multi::execute_fused_multi_with`] on its own: every
/// block executes the same body at the same local coordinates against
/// the same data, and segments write disjoint outputs.
///
/// # Errors
/// Propagates launch-validation failures and injected launch-level
/// faults from any kernel.
///
/// What a packed wave hands back: per-segment `M×R` column-major
/// results, the wave's single pipeline profile, and (when verified)
/// one report per segment.
pub type PackedWaveOutput = (Vec<Vec<f32>>, PipelineProfile, Option<Vec<VerifyReport>>);

/// # Panics
/// Panics on shape/geometry violations, buffer-length mismatches,
/// column counts outside `1..=MAX_WEIGHT_COLUMNS`, or segments that
/// share a dedup key but disagree on the padded corpus shape.
pub fn execute_fused_multi_packed_with(
    dev: &mut GpuDevice,
    geometry: &TileGeometry,
    segs: &[PackedSegmentSpec],
    verify: bool,
) -> Result<PackedWaveOutput, LaunchError> {
    assert!(!segs.is_empty(), "packed wave needs segments");
    let mut slots: Vec<CorpusSlot> = Vec::new();
    let mut a_index: HashMap<u64, usize> = HashMap::new();
    let mut b_index: HashMap<u64, usize> = HashMap::new();
    let mut kernels: Vec<FusedMultiWeight> = Vec::with_capacity(segs.len());
    let mut v_bufs = Vec::with_capacity(segs.len());
    let mut verify_bufs: Vec<VerifyBufs> = Vec::new();

    for seg in segs {
        seg.shape.validate_for(geometry);
        let (m, n, k) = (seg.shape.m, seg.shape.n, seg.shape.k);
        assert_eq!(seg.a.len(), m * k, "A must be M·K elements");
        assert_eq!(seg.b.len(), k * n, "B must be K·N elements");
        assert_eq!(
            seg.w_cols.len() % n,
            0,
            "W must be a whole number of columns"
        );
        let r = seg.w_cols.len() / n;
        assert!(
            (1..=MAX_WEIGHT_COLUMNS).contains(&r),
            "weight columns {r} out of range 1..={MAX_WEIGHT_COLUMNS}"
        );
        let bw = Bandwidth { h: seg.h };
        let _ = bw.inv_2h2(); // validates h

        let (ai, a2_buf) = corpus_slot(
            dev,
            &mut slots,
            &mut a_index,
            seg.a_key,
            seg.a,
            seg.a2,
            m,
            k,
            "a",
        );
        let (bi, b2_buf) = corpus_slot(
            dev,
            &mut slots,
            &mut b_index,
            seg.b_key,
            seg.b,
            None,
            n,
            k,
            "b",
        );
        let ops = GemmOperands {
            a: slots[ai].buf,
            b: slots[bi].buf,
        };
        let w_buf = dev.upload(seg.w_cols);
        let v_buf = dev.alloc(m * r);
        v_bufs.push((v_buf, m, r));
        let mut kern = FusedMultiWeight::new(ops, a2_buf, b2_buf, w_buf, v_buf, seg.shape, bw, r)
            .with_geometry(*geometry);
        if verify {
            let vb = VerifyBufs {
                checksum: dev.alloc(r * (m / geometry.block_m) * CHECKSUM_SLOT_WORDS),
                flag: dev.alloc(CHECKSUM_SLOT_WORDS),
            };
            verify_bufs.push(vb);
            kern = kern.with_verify(vb);
        }
        kernels.push(kern);
    }

    // One cold-cache point per packed wave — the whole point of the
    // fusion: segments sharing corpora hit L2 instead of re-reading
    // DRAM between back-to-back launches.
    dev.invalidate_l2();
    for &(v_buf, _, _) in &v_bufs {
        dev.memset_zero(v_buf);
    }
    for vb in &verify_bufs {
        dev.memset_zero(vb.checksum);
        dev.memset_zero(vb.flag);
    }

    let mut prof = PipelineProfile::new(if verify {
        FUSED_MULTI_PACKED_VERIFIED_PIPELINE
    } else {
        FUSED_MULTI_PACKED_PIPELINE
    });
    let launch_run = |dev: &mut GpuDevice,
                      kern: &dyn Kernel,
                      prof: &mut PipelineProfile|
     -> Result<(), LaunchError> {
        let mut kp = dev.launch(kern)?;
        dev.run(kern)?;
        kp.faults.merge(&dev.take_fault_counters());
        prof.kernels.push(kp);
        Ok(())
    };
    for slot in &slots {
        if let Some(sq) = slot.sq_cold {
            let norms = NormsKernel::new(slot.buf, sq, slot.points, slot.dim, slot.label);
            launch_run(dev, &norms, &mut prof)?;
        }
    }
    let packed = FusedMultiPacked::new(kernels);
    launch_run(dev, &packed, &mut prof)?;

    let mut outputs = Vec::with_capacity(v_bufs.len());
    for &(v_buf, _, _) in &v_bufs {
        outputs.push(dev.download(v_buf));
    }
    let reports = verify.then(|| {
        verify_bufs
            .iter()
            .zip(outputs.iter())
            .zip(v_bufs.iter())
            .map(|((vb, v), &(_, m, r))| {
                VerifyReport::from_outputs(
                    v,
                    &dev.download(vb.checksum),
                    &dev.download(vb.flag),
                    m,
                    r,
                    geometry.block_m,
                )
            })
            .collect::<Vec<_>>()
    });
    Ok((outputs, prof, reports))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fused_multi::{execute_fused_multi_verified_with, execute_fused_multi_with};

    fn lcg(seed: u64) -> impl FnMut() -> f32 {
        let mut state = seed | 1;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) * 0.5
        }
    }

    struct SegData {
        shape: GemmShape,
        h: f32,
        a: Vec<f32>,
        b: Vec<f32>,
        w: Vec<f32>,
    }

    fn seg(shape: GemmShape, r: usize, h: f32, seed: u64) -> SegData {
        let mut next = lcg(seed);
        SegData {
            shape,
            h,
            a: (0..shape.m * shape.k).map(|_| next()).collect(),
            b: (0..shape.k * shape.n).map(|_| next()).collect(),
            w: (0..shape.n * r).map(|_| next()).collect(),
        }
    }

    fn spec(s: &SegData) -> PackedSegmentSpec<'_> {
        PackedSegmentSpec {
            shape: s.shape,
            h: s.h,
            a: &s.a,
            b: &s.b,
            w_cols: &s.w,
            a2: None,
            a_key: None,
            b_key: None,
        }
    }

    #[test]
    fn routing_table_partitions_and_routes_boundaries() {
        let t = RoutingTable::new(&[(2, 2), (1, 3), (2, 1)]);
        assert_eq!(t.total_blocks(), 9);
        assert_eq!(t.route(0), (0, Dim3::new_2d(0, 0)));
        assert_eq!(t.route(3), (0, Dim3::new_2d(1, 1)));
        assert_eq!(t.route(4), (1, Dim3::new_2d(0, 0)));
        assert_eq!(t.route(6), (1, Dim3::new_2d(0, 2)));
        assert_eq!(t.route(7), (2, Dim3::new_2d(0, 0)));
        assert_eq!(t.route(8), (2, Dim3::new_2d(1, 0)));
    }

    #[test]
    #[should_panic(expected = "outside packed grid")]
    fn routing_table_rejects_out_of_range_blocks() {
        let _ = RoutingTable::new(&[(2, 2)]).route(4);
    }

    /// The tentpole invariant: a heterogeneous packed wave (distinct
    /// shapes, bandwidths, and column counts) is bit-identical to
    /// serving each segment through the unpacked entry. All segments
    /// keep `n ≤ 2·block_n`, the documented determinism envelope.
    #[test]
    fn packed_wave_is_bit_identical_to_unpacked_segments() {
        let geo = TileGeometry::paper_default();
        let segs = [
            seg(
                GemmShape {
                    m: 128,
                    n: 128,
                    k: 16,
                },
                1,
                1.0,
                11,
            ),
            seg(
                GemmShape {
                    m: 256,
                    n: 256,
                    k: 32,
                },
                2,
                0.7,
                12,
            ),
            seg(
                GemmShape {
                    m: 128,
                    n: 256,
                    k: 16,
                },
                3,
                1.3,
                13,
            ),
        ];
        let specs: Vec<_> = segs.iter().map(spec).collect();
        let mut dev = GpuDevice::gtx970();
        let (packed, prof, _) =
            execute_fused_multi_packed_with(&mut dev, &geo, &specs, false).unwrap();
        assert_eq!(prof.name, FUSED_MULTI_PACKED_PIPELINE);
        // 2 norms per segment (all cold, no shared keys) + 1 packed.
        assert_eq!(prof.kernels.len(), 2 * segs.len() + 1);
        for (i, s) in segs.iter().enumerate() {
            let mut solo = GpuDevice::gtx970();
            let (want, _) =
                execute_fused_multi_with(&mut solo, &geo, s.shape, s.h, &s.a, &s.b, &s.w, None)
                    .unwrap();
            assert_eq!(packed[i].len(), want.len());
            for (j, (g, x)) in packed[i].iter().zip(want.iter()).enumerate() {
                assert_eq!(g.to_bits(), x.to_bits(), "seg {i} idx {j}: {g} vs {x}");
            }
        }
    }

    #[test]
    fn verified_packed_wave_matches_unpacked_and_reports_per_segment() {
        let geo = TileGeometry::paper_default();
        let segs = [
            seg(
                GemmShape {
                    m: 256,
                    n: 256,
                    k: 32,
                },
                2,
                1.0,
                21,
            ),
            seg(
                GemmShape {
                    m: 128,
                    n: 128,
                    k: 32,
                },
                1,
                0.9,
                22,
            ),
        ];
        let specs: Vec<_> = segs.iter().map(spec).collect();
        let mut dev = GpuDevice::gtx970();
        let (packed, prof, reports) =
            execute_fused_multi_packed_with(&mut dev, &geo, &specs, true).unwrap();
        assert_eq!(prof.name, FUSED_MULTI_PACKED_VERIFIED_PIPELINE);
        let reports = reports.expect("verified path builds reports");
        assert_eq!(reports.len(), segs.len());
        for (i, s) in segs.iter().enumerate() {
            assert!(
                !reports[i].corruption_detected(),
                "seg {i}: {:?}",
                reports[i]
            );
            let mut solo = GpuDevice::gtx970();
            let (want, _, rep) = execute_fused_multi_verified_with(
                &mut solo, &geo, s.shape, s.h, &s.a, &s.b, &s.w, None,
            )
            .unwrap();
            assert!(!rep.corruption_detected());
            for (j, (g, x)) in packed[i].iter().zip(want.iter()).enumerate() {
                assert_eq!(g.to_bits(), x.to_bits(), "seg {i} idx {j}");
            }
        }
    }

    /// Plan-cache-aware packing: segments sharing a corpus key share
    /// one upload, cold sharers share one norms pass, and a warm
    /// sharer keeps its own uploaded norms (warmth never migrates:
    /// host norms are f64-accumulated, kernel norms f32, so lending
    /// them to a cold segment would move its bits).
    #[test]
    fn shared_corpus_segments_dedup_uploads_and_norms() {
        let geo = TileGeometry::paper_default();
        let shape = GemmShape {
            m: 256,
            n: 256,
            k: 32,
        };
        let base = seg(shape, 1, 1.0, 31);
        let other = seg(shape, 1, 1.0, 32);
        let a2: Vec<f32> = (0..shape.m)
            .map(|i| {
                base.a[i * shape.k..(i + 1) * shape.k]
                    .iter()
                    .map(|v| v * v)
                    .sum()
            })
            .collect();
        // Segments 0 and 2 share the corpus (key 7); 1 is unrelated.
        // Segment 2 arrives warm; segment 0 stays cold on the shared
        // slot, so both norms variants coexist.
        let specs = vec![
            PackedSegmentSpec {
                a_key: Some(7),
                ..spec(&base)
            },
            spec(&other),
            PackedSegmentSpec {
                a_key: Some(7),
                a2: Some(&a2),
                b: &other.b,
                w_cols: &other.w,
                ..spec(&base)
            },
        ];
        let mut dev = GpuDevice::gtx970();
        let (packed, prof, _) =
            execute_fused_multi_packed_with(&mut dev, &geo, &specs, false).unwrap();
        // Norms: the shared A slot runs one cold pass for segment 0
        // (segment 2's warm upload does not serve it), segment 1's A
        // runs its own, and the three distinct B slots (no b_key) run
        // one each: 5 norms + 1 packed.
        let names: Vec<&str> = prof.kernels.iter().map(|k| k.name.as_str()).collect();
        assert_eq!(prof.kernels.len(), 6, "{names:?}");
        for (i, (s, my_b, my_w, my_a2)) in [
            (&base, &base.b, &base.w, None),
            (&other, &other.b, &other.w, None),
            (&base, &other.b, &other.w, Some(a2.as_slice())),
        ]
        .iter()
        .enumerate()
        {
            let mut solo = GpuDevice::gtx970();
            let (want, _) =
                execute_fused_multi_with(&mut solo, &geo, s.shape, s.h, &s.a, my_b, my_w, *my_a2)
                    .unwrap();
            for (j, (g, x)) in packed[i].iter().zip(want.iter()).enumerate() {
                assert_eq!(g.to_bits(), x.to_bits(), "seg {i} idx {j}");
            }
        }
    }

    /// The perf claim at the launch level: 16 small heterogeneous
    /// queries packed into one launch beat 16 back-to-back launches on
    /// simulated time, and corpus sharing saves DRAM transactions.
    #[test]
    fn packed_wave_beats_back_to_back_small_launches() {
        let geo = TileGeometry::paper_default();
        let shape = GemmShape {
            m: 256,
            n: 256,
            k: 32,
        };
        // 4 distinct corpora × 4 target sets = 16 queries.
        let corpora: Vec<SegData> = (0..4).map(|i| seg(shape, 1, 1.0, 41 + i)).collect();
        let targets: Vec<SegData> = (0..4).map(|i| seg(shape, 1, 1.0, 51 + i)).collect();
        let mut specs = Vec::new();
        for (ci, c) in corpora.iter().enumerate() {
            for (ti, t) in targets.iter().enumerate() {
                specs.push(PackedSegmentSpec {
                    a_key: Some(ci as u64),
                    b_key: Some(1000 + ti as u64),
                    b: &t.b,
                    w_cols: &t.w,
                    ..spec(c)
                });
            }
        }
        let mut dev = GpuDevice::gtx970();
        let (_, packed_prof, _) =
            execute_fused_multi_packed_with(&mut dev, &geo, &specs, false).unwrap();
        let packed_time: f64 = packed_prof.kernels.iter().map(|k| k.timing.time_s).sum();
        let packed_dram: u64 = packed_prof
            .kernels
            .iter()
            .map(|k| k.mem.dram_transactions())
            .sum();

        let mut solo_time = 0.0f64;
        let mut solo_dram = 0u64;
        for sp in &specs {
            let mut solo = GpuDevice::gtx970();
            let (_, p) = execute_fused_multi_with(
                &mut solo, &geo, sp.shape, sp.h, sp.a, sp.b, sp.w_cols, None,
            )
            .unwrap();
            solo_time += p.kernels.iter().map(|k| k.timing.time_s).sum::<f64>();
            solo_dram += p
                .kernels
                .iter()
                .map(|k| k.mem.dram_transactions())
                .sum::<u64>();
        }
        assert!(
            solo_time >= 2.0 * packed_time,
            "packed wave must be ≥2× faster: packed {packed_time}s vs solo {solo_time}s"
        );
        assert!(
            packed_dram < solo_dram,
            "corpus sharing must save DRAM: packed {packed_dram} vs solo {solo_dram}"
        );
    }
}
