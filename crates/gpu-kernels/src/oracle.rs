//! The bit-exact CPU replay of the fused kernel (the differential-
//! test oracle).
//!
//! [`fused_oracle`] recomputes `V = Σ_j exp(−‖αᵢ−βⱼ‖²/2h²)·wⱼ` in
//! **exactly** the floating-point association order the simulated
//! fused kernel uses on the deterministic sequential schedule
//! (`GpuDevice::run_counted`, blocks in launch order — `bx` fastest):
//!
//! 1. the GEMM dot product folds over `k` sequentially (one FMUL +
//!    FADD rounding per step, as `compute_ktile` accumulates);
//! 2. each thread's γ row partial folds its `micro_n` weighted
//!    Gaussian terms in ascending column order (line 16 of
//!    Algorithm 2);
//! 3. the intra-block reduction sums the `threads_x` thread partials
//!    in ascending `tx` order (the shuffle-tree model);
//! 4. the inter-block atomics land in ascending `bx` order.
//!
//! Steps 2–4 depend only on the **N-side** of the tile geometry
//! (`block_n`, `micro_n`) — the M-side merely re-partitions rows and
//! step 1 is the same sequential k-fold for every `tile_k` and
//! buffering depth. That is the [`TileGeometry::bit_compatible`]
//! contract: the oracle takes the geometry and the differential suite
//! checks every feasible lattice point against it bit for bit.

use crate::aux_kernels::{gaussian, Bandwidth};
use crate::geometry::TileGeometry;

/// Bit-exact replay of the single-weight fused kernel at `geo`.
///
/// `a` is `M×K` row-major, `b` is `K×N` column-major (point-
/// contiguous), `a2`/`b2` are the squared norms the kernel loaded
/// (bit-exact — pass the same values the device saw), `w` has `N`
/// weights. Returns `V` of length `M`.
///
/// # Panics
/// Panics if the shape does not divide `geo` or a slice length is
/// inconsistent.
#[allow(clippy::too_many_arguments)] // mirrors the kernel's operand list
#[must_use]
pub fn fused_oracle(
    geo: &TileGeometry,
    a: &[f32],
    b: &[f32],
    a2: &[f32],
    b2: &[f32],
    w: &[f32],
    m: usize,
    n: usize,
    k: usize,
    h: f32,
) -> Vec<f32> {
    fused_multi_oracle(geo, a, b, a2, b2, w, m, n, k, h, 1)
}

/// Bit-exact replay of the multi-weight fused kernel: `w_cols` is
/// `N×R` column-major, the result is `M×R` column-major. Each column
/// folds independently in the same order as [`fused_oracle`], which
/// is why a served batch is bit-identical to `R` single-shot runs.
///
/// # Panics
/// Panics if the shape does not divide `geo` or a slice length is
/// inconsistent.
#[allow(clippy::too_many_arguments)] // mirrors the kernel's operand list
#[must_use]
pub fn fused_multi_oracle(
    geo: &TileGeometry,
    a: &[f32],
    b: &[f32],
    a2: &[f32],
    b2: &[f32],
    w_cols: &[f32],
    m: usize,
    n: usize,
    k: usize,
    h: f32,
    r: usize,
) -> Vec<f32> {
    assert!(geo.divides(m, n, k), "shape {m}x{n}x{k} must divide {geo}");
    assert_eq!(a.len(), m * k, "A must be M*K elements");
    assert_eq!(b.len(), k * n, "B must be K*N elements");
    assert_eq!(a2.len(), m, "a2 must be M elements");
    assert_eq!(b2.len(), n, "b2 must be N elements");
    assert_eq!(w_cols.len(), n * r, "W must be N*R elements");
    let s = Bandwidth { h }.inv_2h2();
    let blocks_x = n / geo.block_n;
    let txn = geo.threads_x();
    let mut v = vec![0.0f32; m * r];
    for c in 0..r {
        let w = &w_cols[c * n..(c + 1) * n];
        for i in 0..m {
            let ai = &a[i * k..(i + 1) * k];
            let mut vi = 0.0f32;
            // Ascending bx: the sequential schedule's atomic order.
            for bxi in 0..blocks_x {
                // Intra-block: thread partials in ascending tx.
                let mut part = 0.0f32;
                for tx in 0..txn {
                    // Intra-thread: the thread's micro_n columns in
                    // ascending order, one FFMA-shaped fold per term.
                    let mut g = 0.0f32;
                    for cc in 0..geo.micro_n {
                        let j = bxi * geo.block_n + tx * geo.micro_n + cc;
                        let bj = &b[j * k..(j + 1) * k];
                        // The GEMM k-fold: sequential in global k
                        // order regardless of tile_k / buffering.
                        let mut dot = 0.0f32;
                        for t in 0..k {
                            dot += ai[t] * bj[t];
                        }
                        let d = a2[i] + b2[j] - 2.0 * dot;
                        g += gaussian(d, s) * w[j];
                    }
                    part += g;
                }
                vi += part;
            }
            v[c * m + i] = vi;
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(seed: u64) -> impl FnMut() -> f32 {
        let mut state = seed | 1;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) * 0.5
        }
    }

    #[test]
    fn oracle_is_close_to_the_f64_reference() {
        // Sanity: the replay is a correct summation, not just *some*
        // deterministic fold. (Bit-identity to the device is covered
        // by the differential lattice suite.)
        let (m, n, k) = (128, 128, 16);
        let mut next = lcg(3);
        let a: Vec<f32> = (0..m * k).map(|_| next()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| next()).collect();
        let w: Vec<f32> = (0..n).map(|_| next()).collect();
        let a2: Vec<f32> = (0..m)
            .map(|i| a[i * k..(i + 1) * k].iter().map(|x| x * x).sum())
            .collect();
        let b2: Vec<f32> = (0..n)
            .map(|j| b[j * k..(j + 1) * k].iter().map(|x| x * x).sum())
            .collect();
        let geo = TileGeometry::paper_default();
        let got = fused_oracle(&geo, &a, &b, &a2, &b2, &w, m, n, k, 1.0);
        for i in 0..m {
            let mut want = 0.0f64;
            for j in 0..n {
                let d: f64 = (0..k)
                    .map(|t| (a[i * k + t] as f64 - b[j * k + t] as f64).powi(2))
                    .sum();
                want += (-d * 0.5).exp() * w[j] as f64;
            }
            let g = got[i] as f64;
            assert!(
                (g - want).abs() < 2e-3 * want.abs().max(1.0),
                "row {i}: {g} vs {want}"
            );
        }
    }

    #[test]
    fn multi_columns_are_bit_identical_to_single_runs() {
        let (m, n, k, r) = (128, 256, 8, 3);
        let mut next = lcg(9);
        let a: Vec<f32> = (0..m * k).map(|_| next()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| next()).collect();
        let w: Vec<f32> = (0..n * r).map(|_| next()).collect();
        let a2: Vec<f32> = (0..m)
            .map(|i| a[i * k..(i + 1) * k].iter().map(|x| x * x).sum())
            .collect();
        let b2: Vec<f32> = (0..n)
            .map(|j| b[j * k..(j + 1) * k].iter().map(|x| x * x).sum())
            .collect();
        let geo = TileGeometry::paper_default();
        let multi = fused_multi_oracle(&geo, &a, &b, &a2, &b2, &w, m, n, k, 1.0, r);
        for c in 0..r {
            let single = fused_oracle(&geo, &a, &b, &a2, &b2, &w[c * n..(c + 1) * n], m, n, k, 1.0);
            for i in 0..m {
                assert_eq!(multi[c * m + i].to_bits(), single[i].to_bits());
            }
        }
    }

    #[test]
    fn bit_compatible_geometries_agree_bit_for_bit() {
        let (m, n, k) = (256, 128, 16);
        let mut next = lcg(17);
        let a: Vec<f32> = (0..m * k).map(|_| next()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| next()).collect();
        let w: Vec<f32> = (0..n).map(|_| next()).collect();
        let a2: Vec<f32> = (0..m)
            .map(|i| a[i * k..(i + 1) * k].iter().map(|x| x * x).sum())
            .collect();
        let b2: Vec<f32> = (0..n)
            .map(|j| b[j * k..(j + 1) * k].iter().map(|x| x * x).sum())
            .collect();
        let base = TileGeometry::paper_default();
        let alt = TileGeometry {
            block_m: 64,
            tile_k: 4,
            double_buffer_depth: 1,
            ..base
        };
        assert!(base.bit_compatible(&alt));
        let x = fused_oracle(&base, &a, &b, &a2, &b2, &w, m, n, k, 0.8);
        let y = fused_oracle(&alt, &a, &b, &a2, &b2, &w, m, n, k, 0.8);
        for i in 0..m {
            assert_eq!(x[i].to_bits(), y[i].to_bits(), "row {i}");
        }
        let n_side = TileGeometry {
            block_n: 64,
            ..base
        };
        assert!(!base.bit_compatible(&n_side));
        let z = fused_oracle(&n_side, &a, &b, &a2, &b2, &w, m, n, k, 0.8);
        assert!(
            x.iter()
                .zip(z.iter())
                .any(|(p, q)| p.to_bits() != q.to_bits()),
            "different N-side geometry should change at least one bit"
        );
    }
}
