//! The 4×4-microtile GEMM alternative of §III-A.
//!
//! The paper weighs microtile sizes: *"if 128×128 elements of
//! submatrixC are computed by one thread block and 4×4 C elements per
//! thread, it would then require 1024 threads per block. Occupancy is
//! still two thread blocks per SM due to the device limit of 2048
//! threads per SM"* — but *"computing fewer C elements will transfer
//! the bottleneck to other parts"*. This module implements that
//! alternative for the ablation bench so the claim is measured, not
//! asserted:
//!
//! * 32×32 threads per block; thread `(tx, ty)` owns a 4×4 microtile.
//!   A warp is one full `ty` row (32 `tx` lanes).
//! * Per k-step a thread does 16 FFMAs against 4+4 operand words —
//!   a compute-to-shared-load ratio of 2 FLOP-pairs per word versus
//!   the 8×8 kernel's 4, so the LSU and issue pipes carry twice the
//!   relative load.
//! * Shared placement `word(k, p) = 128k + 32·(p mod 4) + p div 4`
//!   keeps both stores and compute loads conflict-free, but makes each
//!   lane's 4 operand words bank-strided — they must be loaded as four
//!   LDS.32 instead of one LDS.128 (vector loads and conflict freedom
//!   are mutually exclusive here; another hidden cost of the small
//!   microtile).
//! * The tile loaders cover 128 tracks with 512 threads each using
//!   LDG.64 — twice the global-load instruction count of the 8×8
//!   loader's LDG.128s.

use ks_gpu_sim::access::{affine_lanes, AccessSpec, BarrierSpec, GlobalPattern, SharedPattern};
use ks_gpu_sim::buffer::BufId;
use ks_gpu_sim::dim::{Dim3, LaunchConfig};
use ks_gpu_sim::exec::BlockCtx;
use ks_gpu_sim::kernel::VecWidth;
use ks_gpu_sim::kernel::{
    AnalysisBudget, BufferUse, ExecModel, Kernel, KernelResources, TimingHints,
};
use ks_gpu_sim::occupancy::OccupancyLimiter;
use ks_gpu_sim::trace::AccessDir;
use ks_gpu_sim::traffic::{TrafficSink, WarpIdx};

use crate::gemm_engine::{GemmOperands, GemmShape};
use crate::machine::{FunctionalMachine, TrafficMachine, WarpMachine};
use crate::{BLOCK_TILE, K_TILE, TILE_WORDS};

/// Microtile edge of this variant.
pub const SMALL_MICRO: usize = 4;
/// Threads per block dimension (32×32).
pub const SMALL_THREADS_XY: usize = BLOCK_TILE / SMALL_MICRO;
/// Threads per block (1024 — the device maximum).
pub const SMALL_THREADS: usize = SMALL_THREADS_XY * SMALL_THREADS_XY;
/// Warps per block.
pub const SMALL_WARPS: usize = SMALL_THREADS / 32;

/// Shared word of element `(k, point)` in the transposed placement.
#[inline]
#[must_use]
pub fn small_tile_word(k: usize, p: usize) -> u32 {
    debug_assert!(k < K_TILE && p < BLOCK_TILE);
    (k * BLOCK_TILE + (p % 4) * 32 + p / 4) as u32
}

/// The 4×4-microtile SGEMM (`C = A·B`, C row-major).
pub struct Sgemm4x4 {
    ops: GemmOperands,
    c: BufId,
    shape: GemmShape,
}

impl Sgemm4x4 {
    /// Creates the kernel.
    ///
    /// # Panics
    /// Panics if the shape violates the tiling constraints.
    #[must_use]
    pub fn new(ops: GemmOperands, c: BufId, shape: GemmShape) -> Self {
        shape.validate();
        Self { ops, c, shape }
    }

    /// Loads one 128×8 tile pair into shared memory.
    ///
    /// 16 warps per operand: warp `wa` covers quarter `q = wa / 4` of
    /// tracks `p = 4·lane + (wa mod 4)`; each lane issues one LDG.64.
    fn load_tiles<M: WarpMachine>(
        &self,
        mach: &mut M,
        bx: usize,
        by: usize,
        kt: usize,
        smem_a: u32,
        smem_b: u32,
    ) {
        let k = self.shape.k;
        for half in 0..2 {
            let (buf, point0, dst) = if half == 0 {
                (self.ops.a, by * BLOCK_TILE, smem_a)
            } else {
                (self.ops.b, bx * BLOCK_TILE, smem_b)
            };
            for wa in 0..16 {
                mach.begin_warp((half * 16 + wa) as u32);
                let c_off = wa % 4;
                let q = wa / 4;
                mach.alu(2);
                let idx: WarpIdx = std::array::from_fn(|l| {
                    let p = 4 * l + c_off;
                    Some((point0 + p) * k + kt * K_TILE + 2 * q)
                });
                let vals = mach.ld_global(buf, &idx, VecWidth::V2);
                for e in 0..2 {
                    let kk = 2 * q + e;
                    let words: [Option<u32>; 32] =
                        std::array::from_fn(|l| Some(dst + small_tile_word(kk, 4 * l + c_off)));
                    let out: [[f32; 4]; 32] = std::array::from_fn(|l| [vals[l][e], 0.0, 0.0, 0.0]);
                    mach.st_shared(&words, VecWidth::V1, &out);
                }
            }
        }
    }

    /// One rank-8 update with 4×4 microtiles.
    fn compute_ktile<M: WarpMachine>(
        &self,
        mach: &mut M,
        smem_a: u32,
        smem_b: u32,
        acc: &mut [[[f32; 4]; 4]],
    ) {
        for w in 0..SMALL_WARPS {
            mach.begin_warp(w as u32);
            mach.alu(2);
            let ty = w; // a warp is one full row of tx lanes
            for kk in 0..K_TILE {
                // A operand: rows 4ty..4ty+4, broadcast to all lanes.
                let mut a_vals = [0.0f32; 4];
                for j in 0..4 {
                    let words: [Option<u32>; 32] =
                        std::array::from_fn(|_| Some(smem_a + small_tile_word(kk, 4 * ty + j)));
                    let v = mach.ld_shared(&words, VecWidth::V1);
                    if M::FUNCTIONAL {
                        a_vals[j] = v[0][0];
                    }
                }
                // B operand: lane tx reads columns 4tx..4tx+4 — four
                // bank-strided LDS.32 (no vector load possible).
                let mut b_vals = [[0.0f32; 4]; 32];
                for j in 0..4 {
                    let words: [Option<u32>; 32] =
                        std::array::from_fn(|tx| Some(smem_b + small_tile_word(kk, 4 * tx + j)));
                    let v = mach.ld_shared(&words, VecWidth::V1);
                    if M::FUNCTIONAL {
                        for tx in 0..32 {
                            b_vals[tx][j] = v[tx][0];
                        }
                    }
                }
                mach.ffma((SMALL_MICRO * SMALL_MICRO) as u64);
                if M::FUNCTIONAL {
                    for tx in 0..32 {
                        let mt = &mut acc[w * 32 + tx];
                        for (r, av) in a_vals.iter().enumerate() {
                            for (cc, bv) in b_vals[tx].iter().enumerate() {
                                mt[r][cc] += av * bv;
                            }
                        }
                    }
                }
            }
        }
    }

    fn body<M: WarpMachine>(&self, block: Dim3, mach: &mut M) {
        let (bx, by) = (block.x as usize, block.y as usize);
        let mut acc = if M::FUNCTIONAL {
            vec![[[0.0f32; 4]; 4]; SMALL_THREADS]
        } else {
            Vec::new()
        };
        let tiles = self.shape.k / K_TILE;
        let (a0, a1) = (0u32, TILE_WORDS as u32);
        let (b0, b1) = (2 * TILE_WORDS as u32, 3 * TILE_WORDS as u32);
        let bufs = [(a0, b0), (a1, b1)];
        let mut j = 0usize;
        self.load_tiles(mach, bx, by, 0, bufs[j].0, bufs[j].1);
        mach.syncthreads(SMALL_WARPS as u64);
        for i in 1..tiles {
            let prev = j;
            j ^= 1;
            self.load_tiles(mach, bx, by, i, bufs[j].0, bufs[j].1);
            self.compute_ktile(mach, bufs[prev].0, bufs[prev].1, &mut acc);
            mach.syncthreads(SMALL_WARPS as u64);
        }
        self.compute_ktile(mach, bufs[j].0, bufs[j].1, &mut acc);

        // Write back: thread (tx, ty) stores 4 rows × one STG.128.
        let n = self.shape.n;
        for w in 0..SMALL_WARPS {
            mach.begin_warp(w as u32);
            mach.alu(1);
            let ty = w;
            for r in 0..SMALL_MICRO {
                let idx: WarpIdx = std::array::from_fn(|tx| {
                    let row = by * BLOCK_TILE + ty * SMALL_MICRO + r;
                    let col = bx * BLOCK_TILE + tx * SMALL_MICRO;
                    Some(row * n + col)
                });
                let vals: [[f32; 4]; 32] = if M::FUNCTIONAL {
                    std::array::from_fn(|tx| acc[w * 32 + tx][r])
                } else {
                    [[0.0; 4]; 32]
                };
                mach.st_global(self.c, &idx, VecWidth::V4, &vals);
            }
        }
    }
}

impl Kernel for Sgemm4x4 {
    fn name(&self) -> String {
        format!(
            "sgemm_4x4micro_{}x{}x{}",
            self.shape.m, self.shape.n, self.shape.k
        )
    }

    fn launch_config(&self) -> LaunchConfig {
        let (gx, gy) = self.shape.grid();
        LaunchConfig::new(
            Dim3::new_2d(gx, gy),
            Dim3::new_2d(SMALL_THREADS_XY as u32, SMALL_THREADS_XY as u32),
        )
    }

    fn resources(&self) -> KernelResources {
        KernelResources {
            threads_per_block: SMALL_THREADS as u32,
            // 16 accumulators + 8 operands + control fits in 32
            // registers — exactly the budget that lets two 1024-thread
            // blocks share an SM's 64K registers.
            regs_per_thread: 32,
            smem_bytes_per_block: (4 * TILE_WORDS * 4) as u32,
        }
    }

    fn timing_hints(&self) -> TimingHints {
        TimingHints {
            exec_model: ExecModel::CudaC,
            mlp: 8.0,
        }
    }

    fn execute_block(&self, block: Dim3, ctx: &mut BlockCtx) {
        self.body(block, &mut FunctionalMachine::new(ctx));
    }

    fn block_traffic(&self, block: Dim3, sink: &mut TrafficSink) {
        self.body(block, &mut TrafficMachine::new(sink));
    }

    fn traffic_homogeneous(&self) -> bool {
        true
    }

    fn access_spec(&self) -> Option<AccessSpec> {
        let mut spec = AccessSpec::default();
        let (n, k) = (self.shape.n, self.shape.k);
        let tiles = (k / K_TILE) as u64;
        // Tile loaders: 16 warps per operand, one LDG.64 + two
        // single-word shared stores each, once per k-tile. Canonical
        // parity-0 bases (the toggle is a 1024-word, bank-invariant
        // shift).
        for half in 0..2usize {
            let (buf, label, dst, step_is_by) = if half == 0 {
                (self.ops.a, "a", 0u32, true)
            } else {
                (self.ops.b, "b", 2 * TILE_WORDS as u32, false)
            };
            for wa in 0..16usize {
                let c_off = wa % 4;
                let q = wa / 4;
                let mut p = GlobalPattern::new(
                    buf,
                    label,
                    AccessDir::Read,
                    VecWidth::V2,
                    affine_lanes(|l| ((4 * l + c_off) * k + 2 * q) as i64),
                )
                .with_loop(tiles, K_TILE as i64);
                p = if step_is_by {
                    p.with_by((BLOCK_TILE * k) as i64)
                } else {
                    p.with_bx((BLOCK_TILE * k) as i64)
                };
                spec.global.push(p);
                for e in 0..2 {
                    let kk = 2 * q + e;
                    let words: [Option<u32>; 32] =
                        std::array::from_fn(|l| Some(dst + small_tile_word(kk, 4 * l + c_off)));
                    spec.shared.push(
                        SharedPattern::new(words, VecWidth::V1, AccessDir::Write).times(tiles),
                    );
                }
            }
        }
        // Compute loads: per warp (= ty row), per k-step, 4 broadcast
        // A words and 4 bank-strided B words, once per k-tile.
        for ty in 0..SMALL_WARPS {
            for kk in 0..K_TILE {
                for j in 0..4 {
                    let a_words: [Option<u32>; 32] =
                        std::array::from_fn(|_| Some(small_tile_word(kk, 4 * ty + j)));
                    spec.shared.push(
                        SharedPattern::new(a_words, VecWidth::V1, AccessDir::Read).times(tiles),
                    );
                    let b_words: [Option<u32>; 32] = std::array::from_fn(|tx| {
                        Some(2 * TILE_WORDS as u32 + small_tile_word(kk, 4 * tx + j))
                    });
                    spec.shared.push(
                        SharedPattern::new(b_words, VecWidth::V1, AccessDir::Read).times(tiles),
                    );
                }
            }
        }
        // Write-back: 4 STG.128 rows per warp.
        for ty in 0..SMALL_WARPS {
            for r in 0..SMALL_MICRO {
                spec.global.push(
                    GlobalPattern::new(
                        self.c,
                        "c",
                        AccessDir::Write,
                        VecWidth::V4,
                        affine_lanes(|tx| ((ty * SMALL_MICRO + r) * n + tx * SMALL_MICRO) as i64),
                    )
                    .with_by((BLOCK_TILE * n) as i64)
                    .with_bx(BLOCK_TILE as i64),
                );
            }
        }
        spec.barriers = Some(BarrierSpec {
            count: tiles,
            warps: SMALL_WARPS as u64,
        });
        Some(spec)
    }

    fn analysis_budget(&self) -> AnalysisBudget {
        let (m, n, k) = (self.shape.m, self.shape.n, self.shape.k);
        AnalysisBudget {
            smem_conflict_budget: 0,
            // §III-A: two 1024-thread blocks hit the 2048-threads/SM
            // device limit before any other resource.
            expected_blocks_per_sm: Some(2),
            expected_limiter: Some(OccupancyLimiter::Threads),
            buffers: vec![
                BufferUse {
                    buf: self.ops.a,
                    len: m * k,
                    writes: false,
                    label: "a",
                },
                BufferUse {
                    buf: self.ops.b,
                    len: k * n,
                    writes: false,
                    label: "b",
                },
                BufferUse {
                    buf: self.c,
                    len: m * n,
                    writes: true,
                    label: "c",
                },
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ks_gpu_sim::smem::warp_transactions;
    use ks_gpu_sim::GpuDevice;

    #[test]
    fn placement_covers_tile_exactly_once() {
        let mut seen = vec![false; TILE_WORDS];
        for k in 0..K_TILE {
            for p in 0..BLOCK_TILE {
                let w = small_tile_word(k, p) as usize;
                assert!(!seen[w]);
                seen[w] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn compute_loads_are_conflict_free() {
        for k in 0..K_TILE {
            for j in 0..4 {
                let words: [Option<u32>; 32] =
                    std::array::from_fn(|tx| Some(small_tile_word(k, 4 * tx + j)));
                assert_eq!(warp_transactions(&words, 32), 1, "k={k} j={j}");
            }
        }
    }

    #[test]
    fn loader_stores_are_conflict_free() {
        for c_off in 0..4 {
            for k in 0..K_TILE {
                let words: [Option<u32>; 32] =
                    std::array::from_fn(|l| Some(small_tile_word(k, 4 * l + c_off)));
                assert_eq!(warp_transactions(&words, 32), 1, "c={c_off} k={k}");
            }
        }
    }

    #[test]
    fn functional_matches_cpu() {
        let shape = GemmShape {
            m: 128,
            n: 256,
            k: 24,
        };
        let mut state = 9u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        };
        let a: Vec<f32> = (0..shape.m * shape.k).map(|_| next()).collect();
        let b: Vec<f32> = (0..shape.k * shape.n).map(|_| next()).collect();
        let mut dev = GpuDevice::gtx970();
        let ops = GemmOperands {
            a: dev.upload(&a),
            b: dev.upload(&b),
        };
        let c = dev.alloc(shape.m * shape.n);
        dev.run(&Sgemm4x4::new(ops, c, shape)).unwrap();
        let got = dev.download(c);
        for i in 0..shape.m {
            for j in (0..shape.n).step_by(17) {
                let want: f64 = (0..shape.k)
                    .map(|p| a[i * shape.k + p] as f64 * b[j * shape.k + p] as f64)
                    .sum();
                let g = got[i * shape.n + j] as f64;
                assert!(
                    (g - want).abs() < 1e-3 * want.abs().max(1.0),
                    "({i},{j}): {g} vs {want}"
                );
            }
        }
    }

    #[test]
    fn occupancy_is_two_blocks_thread_limited() {
        // §III-A: "Occupancy is still two thread blocks per SM due to
        // the device limit of 2048 threads per SM."
        let mut dev = GpuDevice::gtx970();
        let shape = GemmShape {
            m: 128,
            n: 128,
            k: 8,
        };
        let ops = GemmOperands {
            a: dev.alloc_virtual(128 * 8),
            b: dev.alloc_virtual(8 * 128),
        };
        let c = dev.alloc_virtual(128 * 128);
        let p = dev.launch(&Sgemm4x4::new(ops, c, shape)).unwrap();
        assert_eq!(p.occupancy.blocks_per_sm, 2);
        assert_eq!(p.occupancy.threads_per_sm, 2048);
    }

    #[test]
    fn small_microtile_shifts_the_bottleneck_to_lsu_or_issue() {
        // The measured version of §III-A's warning: same FLOPs, but
        // the 4×4 kernel runs slower because its LSU/issue load per
        // FLOP doubles.
        let shape = GemmShape {
            m: 1024,
            n: 1024,
            k: 64,
        };
        let profile = |small: bool| {
            let mut dev = GpuDevice::gtx970();
            let ops = GemmOperands {
                a: dev.alloc_virtual(shape.m * shape.k),
                b: dev.alloc_virtual(shape.k * shape.n),
            };
            let c = dev.alloc_virtual(shape.m * shape.n);
            if small {
                dev.launch(&Sgemm4x4::new(ops, c, shape)).unwrap()
            } else {
                dev.launch(&crate::sgemm::CudaSgemm::new(ops, c, shape))
                    .unwrap()
            }
        };
        let p4 = profile(true);
        let p8 = profile(false);
        assert_eq!(p4.counters.flops, p8.counters.flops, "identical arithmetic");
        assert!(
            p4.timing.time_s > p8.timing.time_s,
            "4x4 {} vs 8x8 {}",
            p4.timing.time_s,
            p8.timing.time_s
        );
        // Twice the shared-load instructions per FLOP.
        let per_flop4 = p4.counters.smem.load_instructions as f64 / p4.counters.flops as f64;
        let per_flop8 = p8.counters.smem.load_instructions as f64 / p8.counters.flops as f64;
        assert!(per_flop4 > 1.8 * per_flop8, "{per_flop4} vs {per_flop8}");
    }
}
