//! Algorithm 2: fused kernel summation.
//!
//! One thread block runs the whole chain for its `block_m × block_n`
//! interaction tile: GEMM (rank-`tile_k` updates from shared memory)
//! → Gaussian evaluation on the register-resident `microtileC` →
//! three-level reduction:
//!
//! 1. **intra-thread** (line 16): each thread folds its
//!    `micro_m × micro_n` microtile against its `micro_n` weights,
//!    leaving `micro_m` row partials in registers;
//! 2. **intra-block** (line 20): the `threads_x` lanes of each row
//!    group combine via warp shuffles, and the per-`ty` results land
//!    in the shared scratch `T` (which reuses an idle GEMM tile
//!    buffer, as the paper notes, to keep occupancy up);
//! 3. **inter-block** (line 21): the block drains the `block_m` row
//!    partials and `atomicAdd`s them into `V` — blocks never wait for
//!    each other ("a thread block immediately retires after it
//!    updates the final result").
//!
//! The only global stores of the entire kernel are those atomics: the
//! `M×N` intermediate never exists in memory. That is the paper's
//! whole point.
//!
//! The kernel is parameterized over [`TileGeometry`]
//! ([`FusedKernelSummation::with_geometry`]); the paper's hand-tuned
//! configuration is [`TileGeometry::paper_default`] and every formula
//! below reduces to the seed implementation at that point.

use ks_gpu_sim::access::{
    affine_lanes, masked_lanes, AccessSpec, BarrierSpec, GlobalPattern, SharedPattern,
};
use ks_gpu_sim::buffer::BufId;
use ks_gpu_sim::config::DeviceConfig;
use ks_gpu_sim::dim::{Dim3, LaunchConfig};
use ks_gpu_sim::exec::BlockCtx;
use ks_gpu_sim::kernel::VecWidth;
use ks_gpu_sim::kernel::{
    AnalysisBudget, BlockClass, BufferUse, ExecModel, Kernel, KernelResources, TimingHints,
};
use ks_gpu_sim::trace::AccessDir;
use ks_gpu_sim::traffic::{TrafficSink, WarpIdx};

use ks_gpu_sim::smem::flip_bit;

use crate::aux_kernels::{gaussian, Bandwidth};
use crate::gemm_engine::{
    gemm_access_spec, gemm_block, gemm_block_verified, syncs_per_block, AccGrid, GemmOperands,
    GemmShape, SmemMap, MAX_MICRO,
};
use crate::geometry::TileGeometry;
use crate::layout::SmemLayout;
use crate::machine::{FunctionalMachine, TrafficMachine, WarpMachine};

/// Words per checksum slot: one full 32-byte DRAM sector per
/// `(column, row group)` so block-class replay deltas stay
/// sector-aligned and concurrent atomics never share a sector.
pub const CHECKSUM_SLOT_WORDS: usize = 8;

/// Device buffers of the ABFT verification scheme (DESIGN.md §11).
#[derive(Debug, Clone, Copy)]
pub struct VerifyBufs {
    /// Checksum column: slot `(c·(M/block_m) + by)·CHECKSUM_SLOT_WORDS`
    /// accumulates `σ = Σ_i T_i` of every block in row group `by` of
    /// weight column `c` — the same partials the block drains into
    /// `V`, folded in a second association order.
    pub checksum: BufId,
    /// Corruption flag (`CHECKSUM_SLOT_WORDS` words): every block that
    /// detects an internal mismatch atomically adds 1.0 to word 0.
    /// Clean blocks add 0.0 so traffic stays homogeneous.
    pub flag: BufId,
}

/// Host-side outcome of one verified execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VerifyReport {
    /// Blocks that flagged an internal mismatch (shared-memory audit,
    /// γ re-fold, or `T` drain digest).
    pub blocks_flagged: u64,
    /// Row-group checksums compared on the host.
    pub checksum_groups: usize,
    /// Row groups whose `Σ V` disagreed with the checksum column
    /// beyond the analytic float tolerance.
    pub checksum_mismatches: usize,
}

impl VerifyReport {
    /// Builds the report from downloaded `V` (`M×R` column-major),
    /// checksum and flag buffers. `group` is the kernel's row-group
    /// size (its geometry's `block_m`).
    ///
    /// # Panics
    /// Panics unless `group` divides `m`.
    #[must_use]
    pub fn from_outputs(
        v: &[f32],
        checksum: &[f32],
        flag: &[f32],
        m: usize,
        r: usize,
        group: usize,
    ) -> Self {
        assert!(
            group > 0 && m.is_multiple_of(group),
            "row group {group} must divide M {m}"
        );
        let gy = m / group;
        let mut mismatches = 0;
        for c in 0..r {
            for g in 0..gy {
                let got = f64::from(checksum[(c * gy + g) * CHECKSUM_SLOT_WORDS]);
                let seg = &v[c * m + g * group..c * m + (g + 1) * group];
                let sum: f64 = seg.iter().map(|&x| f64::from(x)).sum();
                // Tolerance: the two sides sum the same f32 partials in
                // different association orders, so they agree to a few
                // ULPs scaled by the absolute mass; injected DRAM
                // flips target exponent/sign bits and move a value by
                // at least half its own magnitude — far above this.
                let abs: f64 = seg.iter().map(|&x| f64::from(x.abs())).sum::<f64>() + got.abs();
                if (sum - got).abs() > 1e-3 * abs + 1e-4 {
                    mismatches += 1;
                }
            }
        }
        let flagged = if flag[0] == 0.0 {
            0
        } else {
            (flag[0].round() as u64).max(1)
        };
        Self {
            blocks_flagged: flagged,
            checksum_groups: r * gy,
            checksum_mismatches: mismatches,
        }
    }

    /// True iff any check tripped — the result must not be trusted.
    #[must_use]
    pub fn corruption_detected(&self) -> bool {
        self.blocks_flagged > 0 || self.checksum_mismatches > 0
    }

    /// Accumulates another report (per-batch aggregation).
    pub fn merge(&mut self, o: &VerifyReport) {
        self.blocks_flagged += o.blocks_flagged;
        self.checksum_groups += o.checksum_groups;
        self.checksum_mismatches += o.checksum_mismatches;
    }
}

/// How partial block results reach the final `V`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reduction {
    /// The paper's scheme: `atomicAdd` straight into `V` (§III-C).
    Atomic,
    /// Ablation: store per-block partials to a `(N/block_n)×M` buffer
    /// and reduce with a second kernel ([`ReducePartialsKernel`]) —
    /// the "store and reload partialV" alternative the paper rejects.
    TwoPass {
        /// Partial buffer, `(n/block_n) · m` elements, column-major by
        /// block (`partial[bx·m + i]`).
        partials: BufId,
    },
}

/// The fused kernel-summation kernel (Algorithm 2).
pub struct FusedKernelSummation {
    ops: GemmOperands,
    a2: BufId,
    b2: BufId,
    w: BufId,
    v: BufId,
    shape: GemmShape,
    bw: Bandwidth,
    layout: SmemLayout,
    geometry: TileGeometry,
    reduction: Reduction,
    exec_model: ExecModel,
    verify: Option<VerifyBufs>,
}

impl FusedKernelSummation {
    /// Creates the kernel at the paper-default geometry. `v` must be
    /// zeroed before launch (atomic reduction accumulates into it).
    ///
    /// # Panics
    /// Panics if the shape violates the tiling constraints.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        ops: GemmOperands,
        a2: BufId,
        b2: BufId,
        w: BufId,
        v: BufId,
        shape: GemmShape,
        bw: Bandwidth,
    ) -> Self {
        shape.validate();
        Self {
            ops,
            a2,
            b2,
            w,
            v,
            shape,
            bw,
            layout: SmemLayout::default(),
            geometry: TileGeometry::paper_default(),
            reduction: Reduction::Atomic,
            exec_model: ExecModel::CudaC,
            verify: None,
        }
    }

    /// Selects the tile geometry (the autotuner's knob). The shape
    /// must divide the new geometry.
    ///
    /// # Panics
    /// Panics if the shape violates the geometry's tiling constraints.
    #[must_use]
    pub fn with_geometry(mut self, geometry: TileGeometry) -> Self {
        self.shape.validate_for(&geometry);
        self.geometry = geometry;
        self
    }

    /// The kernel's tile geometry.
    #[must_use]
    pub fn geometry(&self) -> &TileGeometry {
        &self.geometry
    }

    /// Enables ABFT verification: the shared-memory audit, the γ
    /// re-fold, the `T` drain digest, and the checksum column /
    /// corruption flag in `bufs`. The checksum buffer must hold
    /// `(M/block_m)·CHECKSUM_SLOT_WORDS` zeroed words and the flag
    /// buffer `CHECKSUM_SLOT_WORDS` zeroed words.
    #[must_use]
    pub fn with_verify(mut self, bufs: VerifyBufs) -> Self {
        self.verify = Some(bufs);
        self
    }

    /// Switches the timing-model execution class. `Vendor` models the
    /// paper's §V projection: "if an SGEMM as good as cuBLAS is
    /// applied, fused implementation is able to achieve up to 3.7X" —
    /// i.e. the same fused kernel hand-scheduled to cuBLAS quality.
    #[must_use]
    pub fn with_exec_model(mut self, exec_model: ExecModel) -> Self {
        self.exec_model = exec_model;
        self
    }

    /// Selects the shared-memory placement (ablation).
    #[must_use]
    pub fn with_layout(mut self, layout: SmemLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Enables/disables double buffering (ablation; shorthand for the
    /// geometry's `double_buffer_depth`).
    #[must_use]
    pub fn with_double_buffer(mut self, on: bool) -> Self {
        self.geometry.double_buffer_depth = if on { 2 } else { 1 };
        self
    }

    /// Selects the inter-block reduction scheme (ablation).
    #[must_use]
    pub fn with_reduction(mut self, reduction: Reduction) -> Self {
        self.reduction = reduction;
        self
    }

    fn body<M: WarpMachine>(&self, block: Dim3, mach: &mut M) {
        let (bx, by) = (block.x as usize, block.y as usize);
        let s = self.bw.inv_2h2();
        let geo = &self.geometry;
        let warps = geo.warps_per_block();
        let (mm, mn) = (geo.micro_m, geo.micro_n);
        let txn = geo.threads_x();
        let rpw = geo.rows_per_warp();
        let threads = geo.threads_per_block();

        // --- GEMM phase (Algorithm 2 lines 5–13) -----------------------
        let mut acc = if M::FUNCTIONAL {
            AccGrid::for_geometry(geo)
        } else {
            AccGrid::empty(geo)
        };
        let mut corrupt = if self.verify.is_some() {
            gemm_block_verified(
                mach,
                geo,
                &self.ops,
                &self.shape,
                self.layout,
                bx,
                by,
                &mut acc,
            )
        } else {
            gemm_block(
                mach,
                geo,
                &self.ops,
                &self.shape,
                self.layout,
                bx,
                by,
                &mut acc,
            );
            false
        };

        // Accumulator-register upsets scheduled against this block land
        // on the γ row partials (data only — no instructions, so the
        // unverified kernel's counters are untouched and the fault
        // surfaces as a silently wrong result).
        let mut reg_flips: Vec<(usize, usize, u8)> = Vec::new();
        if M::FUNCTIONAL {
            for (pick, bit) in mach.accumulator_faults() {
                let elem = (pick % (threads * mm) as u64) as usize;
                reg_flips.push((elem / mm, elem % mm, bit));
            }
        }

        // --- Gaussian evaluation + intra-thread reduction (lines 14–16)
        // Row partials per (warp, lane): γ[r] = Σ_c K[r][c]·W[c].
        //
        // T reuses a GEMM tile buffer (the paper reuses sharedA0 to keep
        // occupancy at 2 blocks/SM). It must be the A buffer the final
        // `compute_ktile` is NOT still reading in this epoch — with
        // double buffering that compute reads `a[(tiles−1) % 2]`, so T
        // parks in `a[tiles % 2]`; single-buffered, both map to word 0
        // and the extra barrier before the eval loop orders them.
        let tiles = geo.tiles(self.shape.k);
        let t_base = SmemMap::for_geometry(geo).a[tiles % 2];
        // gamma[tid·micro_m + r]
        let mut gamma = vec![0.0f32; if M::FUNCTIONAL { threads * mm } else { 0 }];
        // ABFT digests: γ before/after the register-fault window (the
        // re-fold comparison), and T at store vs drain time.
        let mut gamma_clean_xor = 0u32;
        let mut gamma_parked_xor = 0u32;
        let mut t_store_xor = 0u32;
        let (cm, cn) = (mm / 4, mn / 4);
        for wp in 0..warps {
            mach.begin_warp(wp as u32);
            mach.alu(2);
            // Row norms for the warp's ty groups: micro_m/4 LDG.128.
            let row0 = |lane: usize| (rpw * wp + lane / txn) * mm;
            let col0 = |lane: usize| (lane % txn) * mn;
            let mut a2_chunks = vec![[[0.0f32; 4]; 32]; cm];
            for (chunk, dst) in a2_chunks.iter_mut().enumerate() {
                let idx: WarpIdx =
                    std::array::from_fn(|lane| Some(by * geo.block_m + row0(lane) + 4 * chunk));
                let v = mach.ld_global(self.a2, &idx, VecWidth::V4);
                if M::FUNCTIONAL {
                    *dst = v;
                }
            }
            // Column norms and weights: micro_n/4 LDG.128 each.
            let mut b2_chunks = vec![[[0.0f32; 4]; 32]; cn];
            for (chunk, dst) in b2_chunks.iter_mut().enumerate() {
                let idx: WarpIdx =
                    std::array::from_fn(|lane| Some(bx * geo.block_n + col0(lane) + 4 * chunk));
                let v = mach.ld_global(self.b2, &idx, VecWidth::V4);
                if M::FUNCTIONAL {
                    *dst = v;
                }
            }
            let mut w_chunks = vec![[[0.0f32; 4]; 32]; cn];
            for (chunk, dst) in w_chunks.iter_mut().enumerate() {
                let idx: WarpIdx =
                    std::array::from_fn(|lane| Some(bx * geo.block_n + col0(lane) + 4 * chunk));
                let v = mach.ld_global(self.w, &idx, VecWidth::V4);
                if M::FUNCTIONAL {
                    *dst = v;
                }
            }

            // Per element: FADD (‖α‖²+‖β‖²), 2 FFMA (argument fold),
            // MUFU.EX2 (exp); then FFMA against W for the reduction.
            let elems = (mm * mn) as u64;
            mach.falu(elems);
            mach.ffma(2 * elems);
            mach.sfu(elems);
            mach.ffma(elems);
            if M::FUNCTIONAL {
                for lane in 0..32 {
                    let tid = wp * 32 + lane;
                    let a2row: [f32; MAX_MICRO] = std::array::from_fn(|r| {
                        if r < mm {
                            a2_chunks[r / 4][lane][r % 4]
                        } else {
                            0.0
                        }
                    });
                    let b2col: [f32; MAX_MICRO] = std::array::from_fn(|c| {
                        if c < mn {
                            b2_chunks[c / 4][lane][c % 4]
                        } else {
                            0.0
                        }
                    });
                    let wcol: [f32; MAX_MICRO] = std::array::from_fn(|c| {
                        if c < mn {
                            w_chunks[c / 4][lane][c % 4]
                        } else {
                            0.0
                        }
                    });
                    for r in 0..mm {
                        let mut g = 0.0f32;
                        for c in 0..mn {
                            let d = a2row[r] + b2col[c] - 2.0 * acc.at(tid, r, c);
                            g += gaussian(d, s) * wcol[c];
                        }
                        gamma[tid * mm + r] = g;
                    }
                }
            }

            if self.verify.is_some() {
                // DMR on the fold: re-evaluate γ from the (ECC-clean)
                // Gaussian values and compare. The simulator's
                // recompute is bit-identical, so the comparison is
                // modelled as an exact digest of the clean γ.
                mach.ffma(elems);
                mach.falu(mm as u64);
                if M::FUNCTIONAL {
                    for lane in 0..32 {
                        let tid = wp * 32 + lane;
                        for g in &gamma[tid * mm..(tid + 1) * mm] {
                            gamma_clean_xor ^= g.to_bits();
                        }
                    }
                }
            }
            if M::FUNCTIONAL {
                for &(tid, row, bit) in reg_flips.iter().filter(|f| f.0 / 32 == wp) {
                    gamma[tid * mm + row] = flip_bit(gamma[tid * mm + row], bit);
                }
                if self.verify.is_some() {
                    for lane in 0..32 {
                        let tid = wp * 32 + lane;
                        for g in &gamma[tid * mm..(tid + 1) * mm] {
                            gamma_parked_xor ^= g.to_bits();
                        }
                    }
                }
            }

            // --- Intra-block reduction: log2(threads_x) shuffle
            //     rounds over the tx lanes of each ty group. ----------
            let shuffle_ops = (txn.trailing_zeros() as u64) * mm as u64;
            mach.alu(shuffle_ops);
            mach.falu(shuffle_ops);
            // Lanes with tx == 0 (rows_per_warp per warp) park the
            // per-ty row sums in T (the idle A tile buffer above).
            let t_words: [Option<u32>; 32] =
                std::array::from_fn(|lane| (lane % txn == 0).then_some(t_base + row0(lane) as u32));
            // micro_m phases: one word per microtile row.
            for r in 0..mm {
                let words: [Option<u32>; 32] =
                    std::array::from_fn(|lane| t_words[lane].map(|b| b + r as u32));
                let mut vals = [[0.0f32; 4]; 32];
                if M::FUNCTIONAL {
                    for h in 0..rpw {
                        let mut sum = 0.0f32;
                        for tx in 0..txn {
                            let tid = wp * 32 + h * txn + tx;
                            // After the shuffle rounds lane tx==0 holds
                            // the tx-sum; we model its value directly.
                            sum += gamma[tid * mm + r];
                        }
                        vals[h * txn][0] = sum;
                        if self.verify.is_some() {
                            t_store_xor ^= sum.to_bits();
                        }
                    }
                }
                mach.st_shared(&words, VecWidth::V1, &vals);
            }
        }
        mach.syncthreads(warps as u64);

        // --- Inter-block reduction (lines 18–22): the leading warps
        //     drain T (32 words per phase) and atomically update V. --
        let mut t_drain_xor = 0u32;
        let mut sigma = 0.0f32;
        for p in 0..geo.drain_phases() {
            mach.begin_warp((p % warps) as u32);
            let words: [Option<u32>; 32] =
                std::array::from_fn(|lane| Some(t_base + (p * 32 + lane) as u32));
            let t_vals = mach.ld_shared(&words, VecWidth::V1);
            let vidx: WarpIdx = std::array::from_fn(|lane| Some(by * geo.block_m + p * 32 + lane));
            let lane_vals: [f32; 32] = std::array::from_fn(|lane| t_vals[lane][0]);
            if M::FUNCTIONAL && self.verify.is_some() {
                for v in &lane_vals {
                    t_drain_xor ^= v.to_bits();
                    sigma += v;
                }
            }
            match self.reduction {
                Reduction::Atomic => {
                    mach.atomic_add(self.v, &vidx, &lane_vals);
                }
                Reduction::TwoPass { partials } => {
                    let pidx: WarpIdx = std::array::from_fn(|lane| {
                        Some(bx * self.shape.m + by * geo.block_m + p * 32 + lane)
                    });
                    let vals: [[f32; 4]; 32] =
                        std::array::from_fn(|lane| [lane_vals[lane], 0.0, 0.0, 0.0]);
                    mach.st_global(partials, &pidx, VecWidth::V1, &vals);
                }
            }
        }

        // --- ABFT epilogue: checksum column + corruption flag ---------
        if let Some(vb) = self.verify {
            corrupt |= gamma_clean_xor != gamma_parked_xor;
            corrupt |= t_store_xor != t_drain_xor;
            mach.begin_warp(0);
            mach.falu(2); // fold σ; combine the corruption predicate
            let cidx: WarpIdx =
                std::array::from_fn(|lane| (lane == 0).then_some(by * CHECKSUM_SLOT_WORDS));
            let mut cvals = [0.0f32; 32];
            cvals[0] = sigma;
            mach.atomic_add(vb.checksum, &cidx, &cvals);
            // Unconditional: clean blocks add 0.0, so every block
            // issues the identical instruction stream.
            let fidx: WarpIdx = std::array::from_fn(|lane| (lane == 0).then_some(0));
            let mut fvals = [0.0f32; 32];
            fvals[0] = if corrupt { 1.0 } else { 0.0 };
            mach.atomic_add(vb.flag, &fidx, &fvals);
        }
    }
}

impl Kernel for FusedKernelSummation {
    fn name(&self) -> String {
        let tag = if self.verify.is_some() { "_abft" } else { "" };
        let gtag = if self.geometry == TileGeometry::paper_default() {
            String::new()
        } else {
            let g = &self.geometry;
            format!(
                "_g{}x{}u{}x{}k{}d{}",
                g.block_m, g.block_n, g.micro_m, g.micro_n, g.tile_k, g.double_buffer_depth
            )
        };
        format!(
            "fused_ks{tag}{gtag}_{}x{}x{}",
            self.shape.m, self.shape.n, self.shape.k
        )
    }

    fn launch_config(&self) -> LaunchConfig {
        let (gx, gy) = self.shape.grid_for(&self.geometry);
        LaunchConfig::new(
            Dim3::new_2d(gx, gy),
            Dim3::new_2d(
                self.geometry.threads_x() as u32,
                self.geometry.threads_y() as u32,
            ),
        )
    }

    fn resources(&self) -> KernelResources {
        let mut res = self.geometry.resources();
        res.smem_bytes_per_block = SmemMap::for_geometry(&self.geometry).bytes();
        res
    }

    fn timing_hints(&self) -> TimingHints {
        TimingHints {
            exec_model: self.exec_model,
            mlp: if self.geometry.double_buffer_depth == 2 {
                8.0
            } else {
                3.0
            },
        }
    }

    fn execute_block(&self, block: Dim3, ctx: &mut BlockCtx) {
        self.body(block, &mut FunctionalMachine::new(ctx));
    }

    fn block_traffic(&self, block: Dim3, sink: &mut TrafficSink) {
        self.body(block, &mut TrafficMachine::new(sink));
    }

    fn traffic_homogeneous(&self) -> bool {
        true
    }

    fn access_spec(&self) -> Option<AccessSpec> {
        let geo = &self.geometry;
        let (mm, mn) = (geo.micro_m, geo.micro_n);
        let txn = geo.threads_x();
        let rpw = geo.rows_per_warp();
        let warps = geo.warps_per_block();
        let mut spec = AccessSpec::default();
        gemm_access_spec(
            &mut spec,
            geo,
            &self.ops,
            &self.shape,
            self.layout,
            self.verify.is_some(),
        );
        let tiles = geo.tiles(self.shape.k);
        let t_base = SmemMap::for_geometry(geo).a[tiles % 2];
        // Evaluation phase: per warp, norm/weight vector loads and the
        // micro_m T-park store phases (tx == 0 lanes only).
        let (cm, cn) = (mm / 4, mn / 4);
        for wp in 0..warps {
            let row = |lane: usize| ((rpw * wp + lane / txn) * mm) as i64;
            let col = |lane: usize| ((lane % txn) * mn) as i64;
            for chunk in 0..cm.max(cn) {
                if chunk < cm {
                    spec.global.push(
                        GlobalPattern::new(
                            self.a2,
                            "a2",
                            AccessDir::Read,
                            VecWidth::V4,
                            affine_lanes(|lane| row(lane) + 4 * chunk as i64),
                        )
                        .with_by(geo.block_m as i64),
                    );
                }
                if chunk < cn {
                    for (buf, label) in [(self.b2, "b2"), (self.w, "w")] {
                        spec.global.push(
                            GlobalPattern::new(
                                buf,
                                label,
                                AccessDir::Read,
                                VecWidth::V4,
                                affine_lanes(|lane| col(lane) + 4 * chunk as i64),
                            )
                            .with_bx(geo.block_n as i64),
                        );
                    }
                }
            }
            for r in 0..mm {
                let words: [Option<u32>; 32] = std::array::from_fn(|lane| {
                    (lane % txn == 0).then_some(t_base + row(lane) as u32 + r as u32)
                });
                spec.shared
                    .push(SharedPattern::new(words, VecWidth::V1, AccessDir::Write));
            }
        }
        // Drain: 32-word phases over T, reduced into V.
        for p in 0..geo.drain_phases() {
            let words: [Option<u32>; 32] =
                std::array::from_fn(|lane| Some(t_base + (p * 32 + lane) as u32));
            spec.shared
                .push(SharedPattern::new(words, VecWidth::V1, AccessDir::Read));
            match self.reduction {
                Reduction::Atomic => spec.global.push(
                    GlobalPattern::new(
                        self.v,
                        "v",
                        AccessDir::Atomic,
                        VecWidth::V1,
                        affine_lanes(|lane| (p * 32 + lane) as i64),
                    )
                    .with_by(geo.block_m as i64),
                ),
                Reduction::TwoPass { partials } => spec.global.push(
                    GlobalPattern::new(
                        partials,
                        "partials",
                        AccessDir::Write,
                        VecWidth::V1,
                        affine_lanes(|lane| (p * 32 + lane) as i64),
                    )
                    .with_bx(self.shape.m as i64)
                    .with_by(geo.block_m as i64),
                ),
            }
        }
        // ABFT epilogue: lane-0 checksum and flag atomics.
        if let Some(vb) = self.verify {
            spec.global.push(
                GlobalPattern::new(
                    vb.checksum,
                    "chk",
                    AccessDir::Atomic,
                    VecWidth::V1,
                    masked_lanes(|lane| (lane == 0).then_some(0)),
                )
                .with_by(CHECKSUM_SLOT_WORDS as i64),
            );
            spec.global.push(GlobalPattern::new(
                vb.flag,
                "flag",
                AccessDir::Atomic,
                VecWidth::V1,
                masked_lanes(|lane| (lane == 0).then_some(0)),
            ));
        }
        spec.barriers = Some(BarrierSpec {
            count: syncs_per_block(geo, self.shape.k) + 1,
            warps: warps as u64,
        });
        Some(spec)
    }

    fn block_class(&self, block: Dim3) -> Option<BlockClass> {
        // Every block runs the identical tile schedule; only the tile
        // origin moves. All global accesses are affine in (bx, by):
        // A rows start at by·block_m·k, B columns at bx·block_n·k, the
        // norm / weight vectors at by·block_m / bx·block_n, and the
        // reduction target at by·block_m (atomic) or bx·m + by·block_m
        // (two-pass partials).
        let (bx, by) = (block.x as usize, block.y as usize);
        let geo = &self.geometry;
        let mut anchors = vec![
            (self.ops.a, by * geo.block_m * self.shape.k),
            (self.ops.b, bx * geo.block_n * self.shape.k),
            (self.a2, by * geo.block_m),
            (self.b2, bx * geo.block_n),
            (self.w, bx * geo.block_n),
        ];
        match self.reduction {
            Reduction::Atomic => anchors.push((self.v, by * geo.block_m)),
            Reduction::TwoPass { partials } => {
                anchors.push((partials, bx * self.shape.m + by * geo.block_m));
            }
        }
        if let Some(vb) = self.verify {
            // Checksum atomics shift by one sector-aligned slot per
            // row group; the flag is block-invariant (zero delta).
            anchors.push((vb.checksum, by * CHECKSUM_SLOT_WORDS));
            anchors.push((vb.flag, 0));
        }
        Some(BlockClass { key: 0, anchors })
    }

    fn analysis_budget(&self) -> AnalysisBudget {
        let (m, n, k) = (self.shape.m, self.shape.n, self.shape.k);
        let geo = &self.geometry;
        let mut buffers = vec![
            BufferUse {
                buf: self.ops.a,
                len: m * k,
                writes: false,
                label: "a",
            },
            BufferUse {
                buf: self.ops.b,
                len: k * n,
                writes: false,
                label: "b",
            },
            BufferUse {
                buf: self.a2,
                len: m,
                writes: false,
                label: "a2",
            },
            BufferUse {
                buf: self.b2,
                len: n,
                writes: false,
                label: "b2",
            },
            BufferUse {
                buf: self.w,
                len: n,
                writes: false,
                label: "w",
            },
        ];
        match self.reduction {
            Reduction::Atomic => buffers.push(BufferUse {
                buf: self.v,
                len: m,
                writes: true,
                label: "v",
            }),
            Reduction::TwoPass { partials } => buffers.push(BufferUse {
                buf: partials,
                len: (n / geo.block_n) * m,
                writes: true,
                label: "partials",
            }),
        }
        if let Some(vb) = self.verify {
            buffers.push(BufferUse {
                buf: vb.checksum,
                len: (m / geo.block_m) * CHECKSUM_SLOT_WORDS,
                writes: true,
                label: "chk",
            });
            buffers.push(BufferUse {
                buf: vb.flag,
                len: CHECKSUM_SLOT_WORDS,
                writes: true,
                label: "flag",
            });
        }
        // Occupancy expectation: the reference device this repo's
        // analysis fixtures run on (the paper point lands on its
        // measured 2 blocks/SM, register-limited).
        let occ = ks_gpu_sim::occupancy::occupancy(&DeviceConfig::gtx970(), &self.resources());
        AnalysisBudget {
            // Fig. 5's swizzle is conflict-free; the naive row-major
            // ablation's compute loads are 4-way conflicted (degree 3).
            smem_conflict_budget: match self.layout {
                SmemLayout::Swizzled => 0,
                SmemLayout::NaiveRowMajor => 3,
            },
            expected_blocks_per_sm: Some(occ.blocks_per_sm),
            expected_limiter: Some(occ.limiter),
            buffers,
        }
    }
}

/// Second pass of the [`Reduction::TwoPass`] ablation:
/// `V_i = Σ_bx partial[bx·m + i]`.
pub struct ReducePartialsKernel {
    partials: BufId,
    v: BufId,
    m: usize,
    n_blocks_x: usize,
}

impl ReducePartialsKernel {
    /// Creates the kernel.
    ///
    /// # Panics
    /// Panics unless `m % 256 == 0`.
    #[must_use]
    pub fn new(partials: BufId, v: BufId, m: usize, n_blocks_x: usize) -> Self {
        assert_eq!(m % 256, 0, "M {m} must be a multiple of 256");
        assert!(n_blocks_x > 0);
        Self {
            partials,
            v,
            m,
            n_blocks_x,
        }
    }

    fn body<M: WarpMachine>(&self, block: Dim3, mach: &mut M) {
        for wp in 0..8 {
            mach.begin_warp(wp as u32);
            mach.alu(2);
            let base = block.x as usize * 256 + wp * 32;
            let mut acc = [0.0f32; 32];
            for bx in 0..self.n_blocks_x {
                let idx: WarpIdx = std::array::from_fn(|lane| Some(bx * self.m + base + lane));
                let v = mach.ld_global(self.partials, &idx, VecWidth::V1);
                mach.falu(1);
                if M::FUNCTIONAL {
                    for lane in 0..32 {
                        acc[lane] += v[lane][0];
                    }
                }
            }
            let idx: WarpIdx = std::array::from_fn(|lane| Some(base + lane));
            let vals: [[f32; 4]; 32] = std::array::from_fn(|lane| [acc[lane], 0.0, 0.0, 0.0]);
            mach.st_global(self.v, &idx, VecWidth::V1, &vals);
        }
    }
}

impl Kernel for ReducePartialsKernel {
    fn name(&self) -> String {
        format!("reduce_partials_{}x{}", self.m, self.n_blocks_x)
    }

    fn launch_config(&self) -> LaunchConfig {
        LaunchConfig::new(Dim3::new_1d((self.m / 256) as u32), 256u32)
    }

    fn resources(&self) -> KernelResources {
        KernelResources {
            threads_per_block: 256,
            regs_per_thread: 24,
            smem_bytes_per_block: 0,
        }
    }

    fn timing_hints(&self) -> TimingHints {
        TimingHints {
            exec_model: ExecModel::CudaC,
            mlp: 8.0,
        }
    }

    fn execute_block(&self, block: Dim3, ctx: &mut BlockCtx) {
        self.body(block, &mut FunctionalMachine::new(ctx));
    }

    fn block_traffic(&self, block: Dim3, sink: &mut TrafficSink) {
        self.body(block, &mut TrafficMachine::new(sink));
    }

    fn traffic_homogeneous(&self) -> bool {
        true
    }

    fn access_spec(&self) -> Option<AccessSpec> {
        let mut spec = AccessSpec::default();
        for wp in 0..8usize {
            spec.global.push(
                GlobalPattern::new(
                    self.partials,
                    "partials",
                    AccessDir::Read,
                    VecWidth::V1,
                    affine_lanes(|lane| (wp * 32 + lane) as i64),
                )
                .with_bx(256)
                .with_loop(self.n_blocks_x as u64, self.m as i64),
            );
            spec.global.push(
                GlobalPattern::new(
                    self.v,
                    "v",
                    AccessDir::Write,
                    VecWidth::V1,
                    affine_lanes(|lane| (wp * 32 + lane) as i64),
                )
                .with_bx(256),
            );
        }
        Some(spec)
    }

    fn block_class(&self, block: Dim3) -> Option<BlockClass> {
        // Block x reduces rows [x·256, x·256+256): every partials read
        // (bx·m + x·256 + …) and the final store shift by 256 elements
        // per block.
        let base = block.x as usize * 256;
        Some(BlockClass {
            key: 0,
            anchors: vec![(self.partials, base), (self.v, base)],
        })
    }

    fn analysis_budget(&self) -> AnalysisBudget {
        AnalysisBudget {
            smem_conflict_budget: 0,
            expected_blocks_per_sm: None,
            expected_limiter: None,
            buffers: vec![
                BufferUse {
                    buf: self.partials,
                    len: self.n_blocks_x * self.m,
                    writes: false,
                    label: "partials",
                },
                BufferUse {
                    buf: self.v,
                    len: self.m,
                    writes: true,
                    label: "v",
                },
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ks_gpu_sim::device::GpuDevice;

    fn lcg(seed: u64) -> impl FnMut() -> f32 {
        let mut state = seed | 1;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        }
    }

    struct Problem {
        a: Vec<f32>,
        b: Vec<f32>,
        w: Vec<f32>,
        shape: GemmShape,
        bw: Bandwidth,
    }

    fn make_problem(shape: GemmShape, seed: u64) -> Problem {
        let mut next = lcg(seed);
        Problem {
            a: (0..shape.m * shape.k).map(|_| next() * 0.5).collect(),
            b: (0..shape.k * shape.n).map(|_| next() * 0.5).collect(),
            w: (0..shape.n).map(|_| next()).collect(),
            shape,
            bw: Bandwidth { h: 1.0 },
        }
    }

    fn cpu_reference(p: &Problem) -> Vec<f32> {
        let s = p.bw.inv_2h2();
        let (m, n, k) = (p.shape.m, p.shape.n, p.shape.k);
        (0..m)
            .map(|i| {
                let mut acc = 0.0f64;
                for j in 0..n {
                    let mut d = 0.0f64;
                    for t in 0..k {
                        let diff = p.a[i * k + t] as f64 - p.b[j * k + t] as f64;
                        d += diff * diff;
                    }
                    acc += (-d * s as f64).exp() * p.w[j] as f64;
                }
                acc as f32
            })
            .collect()
    }

    fn host_norms(points: &[f32], count: usize, k: usize) -> Vec<f32> {
        (0..count)
            .map(|i| points[i * k..(i + 1) * k].iter().map(|v| v * v).sum())
            .collect()
    }

    fn gpu_setup(dev: &mut GpuDevice, p: &Problem) -> (GemmOperands, BufId, BufId, BufId, BufId) {
        let a2 = host_norms(&p.a, p.shape.m, p.shape.k);
        let b2 = host_norms(&p.b, p.shape.n, p.shape.k);
        let ops = GemmOperands {
            a: dev.upload(&p.a),
            b: dev.upload(&p.b),
        };
        let (ba2, bb2, bw_buf) = (dev.upload(&a2), dev.upload(&b2), dev.upload(&p.w));
        let bv = dev.alloc(p.shape.m);
        (ops, ba2, bb2, bw_buf, bv)
    }

    #[test]
    fn fused_matches_cpu_reference() {
        let p = make_problem(
            GemmShape {
                m: 256,
                n: 256,
                k: 16,
            },
            42,
        );
        let mut dev = GpuDevice::gtx970();
        let (ops, a2, b2, w, v) = gpu_setup(&mut dev, &p);
        let k = FusedKernelSummation::new(ops, a2, b2, w, v, p.shape, p.bw);
        dev.run(&k).unwrap();
        let got = dev.download(v);
        let want = cpu_reference(&p);
        for (i, (g, wv)) in got.iter().zip(want.iter()).enumerate() {
            assert!(
                (g - wv).abs() < 2e-3 * wv.abs().max(1.0),
                "row {i}: {g} vs {wv}"
            );
        }
    }

    #[test]
    fn non_default_geometries_match_the_oracle_bit_for_bit() {
        // The differential contract at kernel level: the sequential
        // schedule's bits equal the geometry-aware CPU replay for
        // non-paper points (the full lattice sweep lives in the
        // crate's integration tests).
        let p = make_problem(
            GemmShape {
                m: 256,
                n: 256,
                k: 16,
            },
            48,
        );
        let a2 = host_norms(&p.a, p.shape.m, p.shape.k);
        let b2 = host_norms(&p.b, p.shape.n, p.shape.k);
        for geo in [
            TileGeometry {
                block_m: 64,
                block_n: 64,
                ..TileGeometry::paper_default()
            },
            TileGeometry {
                block_m: 64,
                block_n: 64,
                tile_k: 4,
                double_buffer_depth: 1,
                ..TileGeometry::paper_default()
            },
        ] {
            let mut dev = GpuDevice::gtx970();
            let (ops, ba2, bb2, bw_buf, bv) = gpu_setup(&mut dev, &p);
            dev.run_counted(
                &FusedKernelSummation::new(ops, ba2, bb2, bw_buf, bv, p.shape, p.bw)
                    .with_geometry(geo),
            )
            .unwrap();
            let got = dev.download(bv);
            let want = crate::oracle::fused_oracle(
                &geo, &p.a, &p.b, &a2, &b2, &p.w, p.shape.m, p.shape.n, p.shape.k, p.bw.h,
            );
            for (i, (g, x)) in got.iter().zip(want.iter()).enumerate() {
                assert_eq!(g.to_bits(), x.to_bits(), "{geo} row {i}: {g} vs {x}");
            }
        }
    }

    #[test]
    fn two_pass_reduction_matches_atomic() {
        let p = make_problem(
            GemmShape {
                m: 256,
                n: 256,
                k: 16,
            },
            43,
        );
        let mut dev = GpuDevice::gtx970();
        let (ops, a2, b2, w, v1) = gpu_setup(&mut dev, &p);
        dev.run(&FusedKernelSummation::new(
            ops, a2, b2, w, v1, p.shape, p.bw,
        ))
        .unwrap();

        let nbx = p.shape.n / 128;
        let partials = dev.alloc(nbx * p.shape.m);
        let v2 = dev.alloc(p.shape.m);
        dev.run(
            &FusedKernelSummation::new(ops, a2, b2, w, v2, p.shape, p.bw)
                .with_reduction(Reduction::TwoPass { partials }),
        )
        .unwrap();
        dev.run(&ReducePartialsKernel::new(partials, v2, p.shape.m, nbx))
            .unwrap();

        let one = dev.download(v1);
        let two = dev.download(v2);
        for (a, b) in one.iter().zip(two.iter()) {
            assert!((a - b).abs() < 1e-4 * a.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn fused_writes_no_intermediate_matrix() {
        let p = make_problem(
            GemmShape {
                m: 256,
                n: 256,
                k: 16,
            },
            44,
        );
        let mut dev = GpuDevice::gtx970();
        let (ops, a2, b2, w, v) = gpu_setup(&mut dev, &p);
        let prof = dev
            .launch(&FusedKernelSummation::new(ops, a2, b2, w, v, p.shape, p.bw))
            .unwrap();
        // The only stores are atomics; global_store_insts must be zero
        // and DRAM writes bounded by |V| (plus nothing else).
        assert_eq!(prof.counters.global_store_insts, 0);
        assert!(
            prof.mem.dram_writes <= (p.shape.m / 8) as u64 + 8,
            "dram writes {}",
            prof.mem.dram_writes
        );
        assert!(prof.counters.atomic_insts > 0);
    }

    #[test]
    fn fused_profile_fast_path_matches_counted() {
        let p = make_problem(
            GemmShape {
                m: 256,
                n: 256,
                k: 16,
            },
            45,
        );
        let mut d1 = GpuDevice::gtx970();
        let (ops, a2, b2, w, v) = gpu_setup(&mut d1, &p);
        let fast = d1
            .launch(&FusedKernelSummation::new(ops, a2, b2, w, v, p.shape, p.bw))
            .unwrap();

        let mut d2 = GpuDevice::gtx970();
        let (ops2, a22, b22, w2, v2) = gpu_setup(&mut d2, &p);
        let slow = d2
            .run_counted(&FusedKernelSummation::new(
                ops2, a22, b22, w2, v2, p.shape, p.bw,
            ))
            .unwrap();
        assert_eq!(fast.counters, slow.counters);
        assert_eq!(fast.mem, slow.mem);
        // The counted functional run must also produce correct values.
        let got = d2.download(v2);
        let want = cpu_reference(&p);
        for (g, wv) in got.iter().zip(want.iter()) {
            assert!((g - wv).abs() < 2e-3 * wv.abs().max(1.0));
        }
    }

    /// Extension of the gpu-sim `run_counted_agrees_with_launch_on_
    /// memory_counters` test to the fused kernel's two-pass mode: the
    /// sequential functional-counting path and the (parallel,
    /// memoized) replay path must agree on every counter for both
    /// reduction ablations, not just the atomic default covered by
    /// `fused_profile_fast_path_matches_counted`.
    #[test]
    fn run_counted_agrees_with_launch_on_fused_two_pass() {
        let p = make_problem(
            GemmShape {
                m: 256,
                n: 256,
                k: 16,
            },
            46,
        );
        let nbx = p.shape.n / 128;
        let build = |dev: &mut GpuDevice| {
            let (ops, a2, b2, w, v) = gpu_setup(dev, &p);
            let partials = dev.alloc(nbx * p.shape.m);
            (
                FusedKernelSummation::new(ops, a2, b2, w, v, p.shape, p.bw)
                    .with_reduction(Reduction::TwoPass { partials }),
                ReducePartialsKernel::new(partials, v, p.shape.m, nbx),
            )
        };
        let mut d1 = GpuDevice::gtx970();
        let (k1, r1) = build(&mut d1);
        let fast = d1.launch(&k1).unwrap();
        let fast_r = d1.launch(&r1).unwrap();

        let mut d2 = GpuDevice::gtx970();
        let (k2, r2) = build(&mut d2);
        let slow = d2.run_counted(&k2).unwrap();
        let slow_r = d2.run_counted(&r2).unwrap();

        assert_eq!(fast.counters, slow.counters);
        assert_eq!(fast.mem, slow.mem);
        assert_eq!(fast_r.counters, slow_r.counters);
        assert_eq!(fast_r.mem, slow_r.mem);
    }

    #[test]
    fn layout_and_buffering_do_not_change_results() {
        let p = make_problem(
            GemmShape {
                m: 128,
                n: 128,
                k: 32,
            },
            46,
        );
        let mut outs = Vec::new();
        for (layout, db) in [
            (SmemLayout::Swizzled, true),
            (SmemLayout::Swizzled, false),
            (SmemLayout::NaiveRowMajor, true),
        ] {
            let mut dev = GpuDevice::gtx970();
            let (ops, a2, b2, w, v) = gpu_setup(&mut dev, &p);
            dev.run(
                &FusedKernelSummation::new(ops, a2, b2, w, v, p.shape, p.bw)
                    .with_layout(layout)
                    .with_double_buffer(db),
            )
            .unwrap();
            outs.push(dev.download(v));
        }
        for o in &outs[1..] {
            for (a, b) in outs[0].iter().zip(o.iter()) {
                assert!((a - b).abs() < 1e-4 * a.abs().max(1.0));
            }
        }
    }

    #[test]
    fn occupancy_is_two_blocks_per_sm() {
        let p = make_problem(
            GemmShape {
                m: 128,
                n: 128,
                k: 8,
            },
            47,
        );
        let mut dev = GpuDevice::gtx970();
        let (ops, a2, b2, w, v) = gpu_setup(&mut dev, &p);
        let prof = dev
            .launch(&FusedKernelSummation::new(ops, a2, b2, w, v, p.shape, p.bw))
            .unwrap();
        assert_eq!(prof.occupancy.blocks_per_sm, 2);
    }

    // ---- ABFT verification -------------------------------------------

    use ks_gpu_sim::FaultSpec;

    /// A GTX 970 with fault injection enabled at the given spec+seed.
    fn faulty_device(spec: &str, seed: u64) -> GpuDevice {
        let mut fs = FaultSpec::parse(spec).expect("valid fault spec");
        fs.seed = seed;
        let mut cfg = DeviceConfig::gtx970();
        cfg.fault = Some(fs);
        GpuDevice::new(cfg)
    }

    /// Runs the ABFT-verified fused kernel (norms precomputed on the
    /// host, so the only launch — and the only DRAM fault targets —
    /// are the fused kernel's own outputs) via the deterministic
    /// sequential `run_counted` path. Returns `(V, report)`.
    fn verified_run(dev: &mut GpuDevice, p: &Problem) -> (Vec<f32>, VerifyReport) {
        let (ops, a2, b2, w, v) = gpu_setup(dev, p);
        let vb = VerifyBufs {
            checksum: dev.alloc((p.shape.m / 128) * CHECKSUM_SLOT_WORDS),
            flag: dev.alloc(CHECKSUM_SLOT_WORDS),
        };
        dev.run_counted(
            &FusedKernelSummation::new(ops, a2, b2, w, v, p.shape, p.bw).with_verify(vb),
        )
        .unwrap();
        let out = dev.download(v);
        let report = VerifyReport::from_outputs(
            &out,
            &dev.download(vb.checksum),
            &dev.download(vb.flag),
            p.shape.m,
            1,
            128,
        );
        (out, report)
    }

    #[test]
    fn verified_clean_run_is_bit_identical_and_unflagged() {
        let p = make_problem(
            GemmShape {
                m: 256,
                n: 256,
                k: 32,
            },
            50,
        );
        let mut d1 = GpuDevice::gtx970();
        let (ops, a2, b2, w, v) = gpu_setup(&mut d1, &p);
        d1.run_counted(&FusedKernelSummation::new(ops, a2, b2, w, v, p.shape, p.bw))
            .unwrap();
        let base = d1.download(v);

        let mut d2 = GpuDevice::gtx970();
        let (got, report) = verified_run(&mut d2, &p);
        // Verification must be a pure observer: same V bits as the
        // unverified kernel on the same sequential schedule.
        for (g, b) in got.iter().zip(base.iter()) {
            assert_eq!(g.to_bits(), b.to_bits());
        }
        assert!(!report.corruption_detected(), "{report:?}");
        assert_eq!(report.checksum_groups, p.shape.m / 128);
        assert_eq!(report.checksum_mismatches, 0);
        assert_eq!(report.blocks_flagged, 0);
    }

    /// Shared oracle for the in-flight fault surfaces: every run whose
    /// output differs bit-for-bit from the clean baseline must be
    /// flagged — no silent corruption — and at least one seed must
    /// actually corrupt, so the sweep cannot pass vacuously.
    fn detection_sweep(spec: &str, surface: &str) {
        let p = make_problem(
            GemmShape {
                m: 256,
                n: 256,
                k: 32,
            },
            51,
        );
        let mut clean = GpuDevice::gtx970();
        let (base, clean_report) = verified_run(&mut clean, &p);
        assert!(!clean_report.corruption_detected());

        let mut corrupted = 0u32;
        let mut injected_total = 0u64;
        for seed in 0..12u64 {
            let mut dev = faulty_device(spec, seed);
            let (got, report) = verified_run(&mut dev, &p);
            let injected = dev.take_fault_counters();
            injected_total += injected.smem_flips + injected.reg_flips;
            let changed = got
                .iter()
                .zip(base.iter())
                .any(|(g, b)| g.to_bits() != b.to_bits());
            if changed {
                corrupted += 1;
                assert!(
                    report.blocks_flagged > 0,
                    "{surface} seed {seed}: silent corruption ({injected:?})"
                );
            }
        }
        assert!(injected_total > 0, "{surface}: no faults were injected");
        assert!(
            corrupted >= 1,
            "{surface}: no seed corrupted V — the sweep is vacuous"
        );
    }

    #[test]
    fn verified_flags_every_effective_smem_flip() {
        detection_sweep("smem=3", "smem");
    }

    #[test]
    fn verified_flags_every_effective_reg_flip() {
        detection_sweep("reg=2", "reg");
    }

    #[test]
    fn host_checksum_catches_tampered_outputs() {
        let p = make_problem(
            GemmShape {
                m: 256,
                n: 256,
                k: 32,
            },
            52,
        );
        let mut dev = GpuDevice::gtx970();
        let (ops, a2, b2, w, v) = gpu_setup(&mut dev, &p);
        let vb = VerifyBufs {
            checksum: dev.alloc((p.shape.m / 128) * CHECKSUM_SLOT_WORDS),
            flag: dev.alloc(CHECKSUM_SLOT_WORDS),
        };
        dev.run_counted(
            &FusedKernelSummation::new(ops, a2, b2, w, v, p.shape, p.bw).with_verify(vb),
        )
        .unwrap();
        let out = dev.download(v);
        let chk = dev.download(vb.checksum);
        let flag = dev.download(vb.flag);

        // An exponent flip on a V element shifts its row-group sum off
        // the checksum column.
        let mut tampered = out.clone();
        tampered[3] = f32::from_bits(tampered[3].to_bits() ^ (1 << 30));
        let r = VerifyReport::from_outputs(&tampered, &chk, &flag, p.shape.m, 1, 128);
        assert!(r.checksum_mismatches >= 1, "{r:?}");

        // Same for a flip on the checksum column itself.
        let mut bad_chk = chk.clone();
        bad_chk[CHECKSUM_SLOT_WORDS] =
            f32::from_bits(bad_chk[CHECKSUM_SLOT_WORDS].to_bits() ^ (1 << 31));
        let r = VerifyReport::from_outputs(&out, &bad_chk, &flag, p.shape.m, 1, 128);
        assert!(r.checksum_mismatches >= 1, "{r:?}");

        // And a flipped device flag surfaces as blocks_flagged.
        let mut bad_flag = flag.clone();
        bad_flag[0] = 1.0;
        let r = VerifyReport::from_outputs(&out, &chk, &bad_flag, p.shape.m, 1, 128);
        assert!(r.blocks_flagged >= 1 && r.corruption_detected());
    }

    /// DRAM upsets land *after* the kernel, on its writable buffers
    /// (V, checksum, flag). The model injects exponent/sign flips; the
    /// FP checksum has a noise floor, so the contract is weaker than
    /// for the in-flight surfaces: no row group may deviate beyond the
    /// checksum tolerance without the report noticing (DESIGN.md §11).
    #[test]
    fn verified_bounds_dram_flip_escapes() {
        let p = make_problem(
            GemmShape {
                m: 256,
                n: 256,
                k: 32,
            },
            53,
        );
        let mut clean = GpuDevice::gtx970();
        let (base, _) = verified_run(&mut clean, &p);

        let gy = p.shape.m / 128;
        let mut detected = 0u32;
        for seed in 0..12u64 {
            let mut dev = faulty_device("dram=2", seed);
            let (got, report) = verified_run(&mut dev, &p);
            if report.corruption_detected() {
                detected += 1;
            }
            for g in 0..gy {
                let gs: f64 = got[g * 128..(g + 1) * 128]
                    .iter()
                    .map(|&x| f64::from(x))
                    .sum();
                let bs: f64 = base[g * 128..(g + 1) * 128]
                    .iter()
                    .map(|&x| f64::from(x))
                    .sum();
                let abs: f64 = got[g * 128..(g + 1) * 128]
                    .iter()
                    .map(|&x| f64::from(x.abs()))
                    .sum();
                if (gs - bs).abs() > 2.0 * (1e-3 * abs + 1e-4) {
                    assert!(
                        report.checksum_mismatches >= 1,
                        "dram seed {seed}: group {g} drifted silently"
                    );
                }
            }
        }
        assert!(detected >= 1, "no DRAM seed tripped the checksum");
    }

    /// The verified kernel must keep the traffic/functional counter
    /// equivalence the unverified kernel has: launch (memoized replay)
    /// and run_counted (sequential functional) agree on every counter.
    #[test]
    fn verified_profile_fast_path_matches_counted() {
        let p = make_problem(
            GemmShape {
                m: 256,
                n: 256,
                k: 16,
            },
            54,
        );
        let build = |dev: &mut GpuDevice| {
            let (ops, a2, b2, w, v) = gpu_setup(dev, &p);
            let vb = VerifyBufs {
                checksum: dev.alloc((p.shape.m / 128) * CHECKSUM_SLOT_WORDS),
                flag: dev.alloc(CHECKSUM_SLOT_WORDS),
            };
            FusedKernelSummation::new(ops, a2, b2, w, v, p.shape, p.bw).with_verify(vb)
        };
        let mut d1 = GpuDevice::gtx970();
        let k1 = build(&mut d1);
        let fast = d1.launch(&k1).unwrap();

        let mut d2 = GpuDevice::gtx970();
        let k2 = build(&mut d2);
        let slow = d2.run_counted(&k2).unwrap();
        assert_eq!(fast.counters, slow.counters);
        assert_eq!(fast.mem, slow.mem);
    }

    /// Fault injection must never perturb performance counters: a
    /// faulty run's profile equals the clean profile except for the
    /// `faults` tally (the goldens therefore stay valid).
    #[test]
    fn faults_leave_performance_counters_untouched() {
        let p = make_problem(
            GemmShape {
                m: 256,
                n: 256,
                k: 16,
            },
            55,
        );
        let run = |dev: &mut GpuDevice| {
            let (ops, a2, b2, w, v) = gpu_setup(dev, &p);
            dev.run_counted(&FusedKernelSummation::new(ops, a2, b2, w, v, p.shape, p.bw))
                .unwrap()
        };
        let mut clean = GpuDevice::gtx970();
        let clean_prof = run(&mut clean);
        let mut faulty = faulty_device("smem=4,reg=4,dram=2", 9);
        let faulty_prof = run(&mut faulty);
        assert_eq!(clean_prof.counters, faulty_prof.counters);
        assert_eq!(clean_prof.mem, faulty_prof.mem);
        assert!(clean_prof.faults.is_empty());
        assert!(!faulty_prof.faults.is_empty());
    }
}
