//! Algorithm 2: fused kernel summation.
//!
//! One thread block runs the whole chain for its 128×128 interaction
//! tile: GEMM (rank-8 updates from shared memory) → Gaussian
//! evaluation on the register-resident `microtileC` → three-level
//! reduction:
//!
//! 1. **intra-thread** (line 16): each thread folds its 8×8 microtile
//!    against its 8 weights, leaving 8 row partials in registers;
//! 2. **intra-block** (line 20): the 16 `tx` lanes of each row group
//!    combine via warp shuffles, and the per-`ty` results land in the
//!    shared scratch `T` (which reuses an idle GEMM tile buffer, as the
//!    paper notes, to keep occupancy at 2 blocks/SM);
//! 3. **inter-block** (line 21): the first half of the block
//!    `atomicAdd`s the 128 row partials into `V` — blocks never wait
//!    for each other ("a thread block immediately retires after it
//!    updates the final result").
//!
//! The only global stores of the entire kernel are those atomics: the
//! `M×N` intermediate never exists in memory. That is the paper's
//! whole point.

use ks_gpu_sim::buffer::BufId;
use ks_gpu_sim::dim::{Dim3, LaunchConfig};
use ks_gpu_sim::exec::BlockCtx;
use ks_gpu_sim::kernel::VecWidth;
use ks_gpu_sim::kernel::{
    AnalysisBudget, BlockClass, BufferUse, ExecModel, Kernel, KernelResources, TimingHints,
};
use ks_gpu_sim::occupancy::OccupancyLimiter;
use ks_gpu_sim::traffic::{TrafficSink, WarpIdx};

use crate::aux_kernels::{gaussian, Bandwidth};
use crate::gemm_engine::{fresh_acc, gemm_block, GemmOperands, GemmShape, Microtile, SmemMap};
use crate::layout::SmemLayout;
use crate::machine::{FunctionalMachine, TrafficMachine, WarpMachine};
use crate::sgemm::GEMM_REGS_PER_THREAD;
use crate::{BLOCK_TILE, K_TILE, MICRO_TILE, THREADS_XY, WARPS_PER_BLOCK};

/// How partial block results reach the final `V`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reduction {
    /// The paper's scheme: `atomicAdd` straight into `V` (§III-C).
    Atomic,
    /// Ablation: store per-block partials to a `(N/128)×M` buffer and
    /// reduce with a second kernel ([`ReducePartialsKernel`]) — the
    /// "store and reload partialV" alternative the paper rejects.
    TwoPass {
        /// Partial buffer, `(n/128) · m` elements, column-major by
        /// block (`partial[bx·m + i]`).
        partials: BufId,
    },
}

/// The fused kernel-summation kernel (Algorithm 2).
pub struct FusedKernelSummation {
    ops: GemmOperands,
    a2: BufId,
    b2: BufId,
    w: BufId,
    v: BufId,
    shape: GemmShape,
    bw: Bandwidth,
    layout: SmemLayout,
    double_buffer: bool,
    reduction: Reduction,
    exec_model: ExecModel,
}

impl FusedKernelSummation {
    /// Creates the kernel. `v` must be zeroed before launch (atomic
    /// reduction accumulates into it).
    ///
    /// # Panics
    /// Panics if the shape violates the tiling constraints.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        ops: GemmOperands,
        a2: BufId,
        b2: BufId,
        w: BufId,
        v: BufId,
        shape: GemmShape,
        bw: Bandwidth,
    ) -> Self {
        shape.validate();
        Self {
            ops,
            a2,
            b2,
            w,
            v,
            shape,
            bw,
            layout: SmemLayout::default(),
            double_buffer: true,
            reduction: Reduction::Atomic,
            exec_model: ExecModel::CudaC,
        }
    }

    /// Switches the timing-model execution class. `Vendor` models the
    /// paper's §V projection: "if an SGEMM as good as cuBLAS is
    /// applied, fused implementation is able to achieve up to 3.7X" —
    /// i.e. the same fused kernel hand-scheduled to cuBLAS quality.
    #[must_use]
    pub fn with_exec_model(mut self, exec_model: ExecModel) -> Self {
        self.exec_model = exec_model;
        self
    }

    /// Selects the shared-memory placement (ablation).
    #[must_use]
    pub fn with_layout(mut self, layout: SmemLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Enables/disables double buffering (ablation).
    #[must_use]
    pub fn with_double_buffer(mut self, on: bool) -> Self {
        self.double_buffer = on;
        self
    }

    /// Selects the inter-block reduction scheme (ablation).
    #[must_use]
    pub fn with_reduction(mut self, reduction: Reduction) -> Self {
        self.reduction = reduction;
        self
    }

    fn body<M: WarpMachine>(&self, block: Dim3, mach: &mut M) {
        let (bx, by) = (block.x as usize, block.y as usize);
        let s = self.bw.inv_2h2();
        let warps = WARPS_PER_BLOCK as u64;

        // --- GEMM phase (Algorithm 2 lines 5–13) -----------------------
        let mut acc: Vec<Microtile> = if M::FUNCTIONAL {
            fresh_acc()
        } else {
            Vec::new()
        };
        gemm_block(
            mach,
            &self.ops,
            &self.shape,
            self.layout,
            self.double_buffer,
            bx,
            by,
            &mut acc,
        );

        // --- Gaussian evaluation + intra-thread reduction (lines 14–16)
        // Row partials per (warp, lane): γ[r] = Σ_c K[r][c]·W[c].
        //
        // T reuses a GEMM tile buffer (the paper reuses sharedA0 to keep
        // occupancy at 2 blocks/SM). It must be the A buffer the final
        // `compute_ktile` is NOT still reading in this epoch — with
        // double buffering that compute reads `a[(tiles−1) % 2]`, so T
        // parks in `a[tiles % 2]`; single-buffered, both map to word 0
        // and the extra barrier before the eval loop orders them.
        let tiles = self.shape.k / K_TILE;
        let t_base = SmemMap::new(self.double_buffer).a[tiles % 2];
        let mut gamma = vec![[0.0f32; MICRO_TILE]; if M::FUNCTIONAL { 256 } else { 0 }];
        for wp in 0..WARPS_PER_BLOCK {
            mach.begin_warp(wp as u32);
            mach.alu(2);
            // Row norms for the warp's two ty groups: 2 LDG.128.
            let mut a2v = [[0.0f32; 4]; 32];
            let mut a2w = [[0.0f32; 4]; 32];
            {
                let idx_lo: WarpIdx = std::array::from_fn(|lane| {
                    let ty = 2 * wp + lane / THREADS_XY;
                    Some(by * BLOCK_TILE + ty * MICRO_TILE)
                });
                let idx_hi: WarpIdx = std::array::from_fn(|lane| idx_lo[lane].map(|i| i + 4));
                let lo = mach.ld_global(self.a2, &idx_lo, VecWidth::V4);
                let hi = mach.ld_global(self.a2, &idx_hi, VecWidth::V4);
                if M::FUNCTIONAL {
                    a2v = lo;
                    a2w = hi;
                }
            }
            // Column norms and weights: 2 LDG.128 each, lane = tx.
            let col_idx_lo: WarpIdx = std::array::from_fn(|lane| {
                let tx = lane % THREADS_XY;
                Some(bx * BLOCK_TILE + tx * MICRO_TILE)
            });
            let col_idx_hi: WarpIdx = std::array::from_fn(|lane| col_idx_lo[lane].map(|i| i + 4));
            let b2_lo = mach.ld_global(self.b2, &col_idx_lo, VecWidth::V4);
            let b2_hi = mach.ld_global(self.b2, &col_idx_hi, VecWidth::V4);
            let w_lo = mach.ld_global(self.w, &col_idx_lo, VecWidth::V4);
            let w_hi = mach.ld_global(self.w, &col_idx_hi, VecWidth::V4);

            // Per element: FADD (‖α‖²+‖β‖²), 2 FFMA (argument fold),
            // MUFU.EX2 (exp); then FFMA against W for the reduction.
            mach.falu(64);
            mach.ffma(128);
            mach.sfu(64);
            mach.ffma(64);
            if M::FUNCTIONAL {
                for lane in 0..32 {
                    let tid = wp * 32 + lane;
                    let a2row: [f32; 8] = std::array::from_fn(|r| {
                        if r < 4 {
                            a2v[lane][r]
                        } else {
                            a2w[lane][r - 4]
                        }
                    });
                    let b2col: [f32; 8] = std::array::from_fn(|c| {
                        if c < 4 {
                            b2_lo[lane][c]
                        } else {
                            b2_hi[lane][c - 4]
                        }
                    });
                    let wcol: [f32; 8] = std::array::from_fn(|c| {
                        if c < 4 {
                            w_lo[lane][c]
                        } else {
                            w_hi[lane][c - 4]
                        }
                    });
                    for r in 0..MICRO_TILE {
                        let mut g = 0.0f32;
                        for c in 0..MICRO_TILE {
                            let d = a2row[r] + b2col[c] - 2.0 * acc[tid][r][c];
                            g += gaussian(d, s) * wcol[c];
                        }
                        gamma[tid][r] = g;
                    }
                }
            }

            // --- Intra-block reduction: 4 shuffle rounds over the 16
            //     tx lanes of each ty group (lines 16–20). ------------
            mach.alu(32);
            mach.falu(32);
            // Lanes with tx == 0 (two per warp) park the per-ty row
            // sums in T (the idle A tile buffer, see `t_base` above).
            let t_words: [Option<u32>; 32] = std::array::from_fn(|lane| {
                let tx = lane % THREADS_XY;
                let ty = 2 * wp + lane / THREADS_XY;
                (tx == 0).then_some(t_base + (ty * MICRO_TILE) as u32)
            });
            // Eight phases: one word per microtile row.
            for r in 0..MICRO_TILE {
                let words: [Option<u32>; 32] =
                    std::array::from_fn(|lane| t_words[lane].map(|b| b + r as u32));
                let mut vals = [[0.0f32; 4]; 32];
                if M::FUNCTIONAL {
                    for half in 0..2 {
                        let mut sum = 0.0f32;
                        for tx in 0..THREADS_XY {
                            let tid = wp * 32 + half * THREADS_XY + tx;
                            // After the shuffle rounds lane tx==0 holds
                            // the tx-sum; we model its value directly.
                            sum += gamma[tid][r];
                        }
                        vals[half * THREADS_XY][0] = sum;
                    }
                }
                mach.st_shared(&words, VecWidth::V1, &vals);
            }
        }
        mach.syncthreads(warps);

        // --- Inter-block reduction (lines 18–22): first half of the
        //     block drains T and atomically updates V. ----------------
        for wp in 0..WARPS_PER_BLOCK / 2 {
            mach.begin_warp(wp as u32);
            let words: [Option<u32>; 32] =
                std::array::from_fn(|lane| Some(t_base + (wp * 32 + lane) as u32));
            let t_vals = mach.ld_shared(&words, VecWidth::V1);
            let vidx: WarpIdx = std::array::from_fn(|lane| Some(by * BLOCK_TILE + wp * 32 + lane));
            let lane_vals: [f32; 32] = std::array::from_fn(|lane| t_vals[lane][0]);
            match self.reduction {
                Reduction::Atomic => {
                    mach.atomic_add(self.v, &vidx, &lane_vals);
                }
                Reduction::TwoPass { partials } => {
                    let pidx: WarpIdx = std::array::from_fn(|lane| {
                        Some(bx * self.shape.m + by * BLOCK_TILE + wp * 32 + lane)
                    });
                    let vals: [[f32; 4]; 32] =
                        std::array::from_fn(|lane| [lane_vals[lane], 0.0, 0.0, 0.0]);
                    mach.st_global(partials, &pidx, VecWidth::V1, &vals);
                }
            }
        }
    }
}

impl Kernel for FusedKernelSummation {
    fn name(&self) -> String {
        format!(
            "fused_ks_{}x{}x{}",
            self.shape.m, self.shape.n, self.shape.k
        )
    }

    fn launch_config(&self) -> LaunchConfig {
        let (gx, gy) = self.shape.grid();
        LaunchConfig::new(
            Dim3::new_2d(gx, gy),
            Dim3::new_2d(THREADS_XY as u32, THREADS_XY as u32),
        )
    }

    fn resources(&self) -> KernelResources {
        KernelResources {
            threads_per_block: (THREADS_XY * THREADS_XY) as u32,
            regs_per_thread: GEMM_REGS_PER_THREAD,
            smem_bytes_per_block: SmemMap::new(self.double_buffer).bytes(),
        }
    }

    fn timing_hints(&self) -> TimingHints {
        TimingHints {
            exec_model: self.exec_model,
            mlp: if self.double_buffer { 8.0 } else { 3.0 },
        }
    }

    fn execute_block(&self, block: Dim3, ctx: &mut BlockCtx) {
        self.body(block, &mut FunctionalMachine::new(ctx));
    }

    fn block_traffic(&self, block: Dim3, sink: &mut TrafficSink) {
        self.body(block, &mut TrafficMachine::new(sink));
    }

    fn traffic_homogeneous(&self) -> bool {
        true
    }

    fn block_class(&self, block: Dim3) -> Option<BlockClass> {
        // Every block runs the identical tile schedule; only the tile
        // origin moves. All global accesses are affine in (bx, by):
        // A rows start at by·128·k, B columns at bx·128·k, the norm /
        // weight vectors at by·128 / bx·128, and the reduction target
        // at by·128 (atomic) or bx·m + by·128 (two-pass partials).
        let (bx, by) = (block.x as usize, block.y as usize);
        let mut anchors = vec![
            (self.ops.a, by * BLOCK_TILE * self.shape.k),
            (self.ops.b, bx * BLOCK_TILE * self.shape.k),
            (self.a2, by * BLOCK_TILE),
            (self.b2, bx * BLOCK_TILE),
            (self.w, bx * BLOCK_TILE),
        ];
        match self.reduction {
            Reduction::Atomic => anchors.push((self.v, by * BLOCK_TILE)),
            Reduction::TwoPass { partials } => {
                anchors.push((partials, bx * self.shape.m + by * BLOCK_TILE));
            }
        }
        Some(BlockClass { key: 0, anchors })
    }

    fn analysis_budget(&self) -> AnalysisBudget {
        let (m, n, k) = (self.shape.m, self.shape.n, self.shape.k);
        let mut buffers = vec![
            BufferUse {
                buf: self.ops.a,
                len: m * k,
                writes: false,
                label: "a",
            },
            BufferUse {
                buf: self.ops.b,
                len: k * n,
                writes: false,
                label: "b",
            },
            BufferUse {
                buf: self.a2,
                len: m,
                writes: false,
                label: "a2",
            },
            BufferUse {
                buf: self.b2,
                len: n,
                writes: false,
                label: "b2",
            },
            BufferUse {
                buf: self.w,
                len: n,
                writes: false,
                label: "w",
            },
        ];
        match self.reduction {
            Reduction::Atomic => buffers.push(BufferUse {
                buf: self.v,
                len: m,
                writes: true,
                label: "v",
            }),
            Reduction::TwoPass { partials } => buffers.push(BufferUse {
                buf: partials,
                len: (n / BLOCK_TILE) * m,
                writes: true,
                label: "partials",
            }),
        }
        AnalysisBudget {
            // Fig. 5's swizzle is conflict-free; the naive row-major
            // ablation's compute loads are 4-way conflicted (degree 3).
            smem_conflict_budget: match self.layout {
                SmemLayout::Swizzled => 0,
                SmemLayout::NaiveRowMajor => 3,
            },
            expected_blocks_per_sm: Some(2),
            expected_limiter: Some(OccupancyLimiter::Registers),
            buffers,
        }
    }
}

/// Second pass of the [`Reduction::TwoPass`] ablation:
/// `V_i = Σ_bx partial[bx·m + i]`.
pub struct ReducePartialsKernel {
    partials: BufId,
    v: BufId,
    m: usize,
    n_blocks_x: usize,
}

impl ReducePartialsKernel {
    /// Creates the kernel.
    ///
    /// # Panics
    /// Panics unless `m % 256 == 0`.
    #[must_use]
    pub fn new(partials: BufId, v: BufId, m: usize, n_blocks_x: usize) -> Self {
        assert_eq!(m % 256, 0, "M {m} must be a multiple of 256");
        assert!(n_blocks_x > 0);
        Self {
            partials,
            v,
            m,
            n_blocks_x,
        }
    }

    fn body<M: WarpMachine>(&self, block: Dim3, mach: &mut M) {
        for wp in 0..8 {
            mach.begin_warp(wp as u32);
            mach.alu(2);
            let base = block.x as usize * 256 + wp * 32;
            let mut acc = [0.0f32; 32];
            for bx in 0..self.n_blocks_x {
                let idx: WarpIdx = std::array::from_fn(|lane| Some(bx * self.m + base + lane));
                let v = mach.ld_global(self.partials, &idx, VecWidth::V1);
                mach.falu(1);
                if M::FUNCTIONAL {
                    for lane in 0..32 {
                        acc[lane] += v[lane][0];
                    }
                }
            }
            let idx: WarpIdx = std::array::from_fn(|lane| Some(base + lane));
            let vals: [[f32; 4]; 32] = std::array::from_fn(|lane| [acc[lane], 0.0, 0.0, 0.0]);
            mach.st_global(self.v, &idx, VecWidth::V1, &vals);
        }
    }
}

impl Kernel for ReducePartialsKernel {
    fn name(&self) -> String {
        format!("reduce_partials_{}x{}", self.m, self.n_blocks_x)
    }

    fn launch_config(&self) -> LaunchConfig {
        LaunchConfig::new(Dim3::new_1d((self.m / 256) as u32), 256u32)
    }

    fn resources(&self) -> KernelResources {
        KernelResources {
            threads_per_block: 256,
            regs_per_thread: 24,
            smem_bytes_per_block: 0,
        }
    }

    fn timing_hints(&self) -> TimingHints {
        TimingHints {
            exec_model: ExecModel::CudaC,
            mlp: 8.0,
        }
    }

    fn execute_block(&self, block: Dim3, ctx: &mut BlockCtx) {
        self.body(block, &mut FunctionalMachine::new(ctx));
    }

    fn block_traffic(&self, block: Dim3, sink: &mut TrafficSink) {
        self.body(block, &mut TrafficMachine::new(sink));
    }

    fn traffic_homogeneous(&self) -> bool {
        true
    }

    fn block_class(&self, block: Dim3) -> Option<BlockClass> {
        // Block x reduces rows [x·256, x·256+256): every partials read
        // (bx·m + x·256 + …) and the final store shift by 256 elements
        // per block.
        let base = block.x as usize * 256;
        Some(BlockClass {
            key: 0,
            anchors: vec![(self.partials, base), (self.v, base)],
        })
    }

    fn analysis_budget(&self) -> AnalysisBudget {
        AnalysisBudget {
            smem_conflict_budget: 0,
            expected_blocks_per_sm: None,
            expected_limiter: None,
            buffers: vec![
                BufferUse {
                    buf: self.partials,
                    len: self.n_blocks_x * self.m,
                    writes: false,
                    label: "partials",
                },
                BufferUse {
                    buf: self.v,
                    len: self.m,
                    writes: true,
                    label: "v",
                },
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ks_gpu_sim::device::GpuDevice;

    fn lcg(seed: u64) -> impl FnMut() -> f32 {
        let mut state = seed | 1;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        }
    }

    struct Problem {
        a: Vec<f32>,
        b: Vec<f32>,
        w: Vec<f32>,
        shape: GemmShape,
        bw: Bandwidth,
    }

    fn make_problem(shape: GemmShape, seed: u64) -> Problem {
        let mut next = lcg(seed);
        Problem {
            a: (0..shape.m * shape.k).map(|_| next() * 0.5).collect(),
            b: (0..shape.k * shape.n).map(|_| next() * 0.5).collect(),
            w: (0..shape.n).map(|_| next()).collect(),
            shape,
            bw: Bandwidth { h: 1.0 },
        }
    }

    fn cpu_reference(p: &Problem) -> Vec<f32> {
        let s = p.bw.inv_2h2();
        let (m, n, k) = (p.shape.m, p.shape.n, p.shape.k);
        (0..m)
            .map(|i| {
                let mut acc = 0.0f64;
                for j in 0..n {
                    let mut d = 0.0f64;
                    for t in 0..k {
                        let diff = p.a[i * k + t] as f64 - p.b[j * k + t] as f64;
                        d += diff * diff;
                    }
                    acc += (-d * s as f64).exp() * p.w[j] as f64;
                }
                acc as f32
            })
            .collect()
    }

    fn gpu_setup(dev: &mut GpuDevice, p: &Problem) -> (GemmOperands, BufId, BufId, BufId, BufId) {
        let a2: Vec<f32> = (0..p.shape.m)
            .map(|i| {
                p.a[i * p.shape.k..(i + 1) * p.shape.k]
                    .iter()
                    .map(|v| v * v)
                    .sum()
            })
            .collect();
        let b2: Vec<f32> = (0..p.shape.n)
            .map(|j| {
                p.b[j * p.shape.k..(j + 1) * p.shape.k]
                    .iter()
                    .map(|v| v * v)
                    .sum()
            })
            .collect();
        let ops = GemmOperands {
            a: dev.upload(&p.a),
            b: dev.upload(&p.b),
        };
        let (ba2, bb2, bw_buf) = (dev.upload(&a2), dev.upload(&b2), dev.upload(&p.w));
        let bv = dev.alloc(p.shape.m);
        (ops, ba2, bb2, bw_buf, bv)
    }

    #[test]
    fn fused_matches_cpu_reference() {
        let p = make_problem(
            GemmShape {
                m: 256,
                n: 256,
                k: 16,
            },
            42,
        );
        let mut dev = GpuDevice::gtx970();
        let (ops, a2, b2, w, v) = gpu_setup(&mut dev, &p);
        let k = FusedKernelSummation::new(ops, a2, b2, w, v, p.shape, p.bw);
        dev.run(&k).unwrap();
        let got = dev.download(v);
        let want = cpu_reference(&p);
        for (i, (g, wv)) in got.iter().zip(want.iter()).enumerate() {
            assert!(
                (g - wv).abs() < 2e-3 * wv.abs().max(1.0),
                "row {i}: {g} vs {wv}"
            );
        }
    }

    #[test]
    fn two_pass_reduction_matches_atomic() {
        let p = make_problem(
            GemmShape {
                m: 256,
                n: 256,
                k: 16,
            },
            43,
        );
        let mut dev = GpuDevice::gtx970();
        let (ops, a2, b2, w, v1) = gpu_setup(&mut dev, &p);
        dev.run(&FusedKernelSummation::new(
            ops, a2, b2, w, v1, p.shape, p.bw,
        ))
        .unwrap();

        let nbx = p.shape.n / BLOCK_TILE;
        let partials = dev.alloc(nbx * p.shape.m);
        let v2 = dev.alloc(p.shape.m);
        dev.run(
            &FusedKernelSummation::new(ops, a2, b2, w, v2, p.shape, p.bw)
                .with_reduction(Reduction::TwoPass { partials }),
        )
        .unwrap();
        dev.run(&ReducePartialsKernel::new(partials, v2, p.shape.m, nbx))
            .unwrap();

        let one = dev.download(v1);
        let two = dev.download(v2);
        for (a, b) in one.iter().zip(two.iter()) {
            assert!((a - b).abs() < 1e-4 * a.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn fused_writes_no_intermediate_matrix() {
        let p = make_problem(
            GemmShape {
                m: 256,
                n: 256,
                k: 16,
            },
            44,
        );
        let mut dev = GpuDevice::gtx970();
        let (ops, a2, b2, w, v) = gpu_setup(&mut dev, &p);
        let prof = dev
            .launch(&FusedKernelSummation::new(ops, a2, b2, w, v, p.shape, p.bw))
            .unwrap();
        // The only stores are atomics; global_store_insts must be zero
        // and DRAM writes bounded by |V| (plus nothing else).
        assert_eq!(prof.counters.global_store_insts, 0);
        assert!(
            prof.mem.dram_writes <= (p.shape.m / 8) as u64 + 8,
            "dram writes {}",
            prof.mem.dram_writes
        );
        assert!(prof.counters.atomic_insts > 0);
    }

    #[test]
    fn fused_profile_fast_path_matches_counted() {
        let p = make_problem(
            GemmShape {
                m: 256,
                n: 256,
                k: 16,
            },
            45,
        );
        let mut d1 = GpuDevice::gtx970();
        let (ops, a2, b2, w, v) = gpu_setup(&mut d1, &p);
        let fast = d1
            .launch(&FusedKernelSummation::new(ops, a2, b2, w, v, p.shape, p.bw))
            .unwrap();

        let mut d2 = GpuDevice::gtx970();
        let (ops2, a22, b22, w2, v2) = gpu_setup(&mut d2, &p);
        let slow = d2
            .run_counted(&FusedKernelSummation::new(
                ops2, a22, b22, w2, v2, p.shape, p.bw,
            ))
            .unwrap();
        assert_eq!(fast.counters, slow.counters);
        assert_eq!(fast.mem, slow.mem);
        // The counted functional run must also produce correct values.
        let got = d2.download(v2);
        let want = cpu_reference(&p);
        for (g, wv) in got.iter().zip(want.iter()) {
            assert!((g - wv).abs() < 2e-3 * wv.abs().max(1.0));
        }
    }

    /// Extension of the gpu-sim `run_counted_agrees_with_launch_on_
    /// memory_counters` test to the fused kernel's two-pass mode: the
    /// sequential functional-counting path and the (parallel,
    /// memoized) replay path must agree on every counter for both
    /// reduction ablations, not just the atomic default covered by
    /// `fused_profile_fast_path_matches_counted`.
    #[test]
    fn run_counted_agrees_with_launch_on_fused_two_pass() {
        let p = make_problem(
            GemmShape {
                m: 256,
                n: 256,
                k: 16,
            },
            46,
        );
        let nbx = p.shape.n / BLOCK_TILE;
        let build = |dev: &mut GpuDevice| {
            let (ops, a2, b2, w, v) = gpu_setup(dev, &p);
            let partials = dev.alloc(nbx * p.shape.m);
            (
                FusedKernelSummation::new(ops, a2, b2, w, v, p.shape, p.bw)
                    .with_reduction(Reduction::TwoPass { partials }),
                ReducePartialsKernel::new(partials, v, p.shape.m, nbx),
            )
        };
        let mut d1 = GpuDevice::gtx970();
        let (k1, r1) = build(&mut d1);
        let fast = d1.launch(&k1).unwrap();
        let fast_r = d1.launch(&r1).unwrap();

        let mut d2 = GpuDevice::gtx970();
        let (k2, r2) = build(&mut d2);
        let slow = d2.run_counted(&k2).unwrap();
        let slow_r = d2.run_counted(&r2).unwrap();

        assert_eq!(fast.counters, slow.counters);
        assert_eq!(fast.mem, slow.mem);
        assert_eq!(fast_r.counters, slow_r.counters);
        assert_eq!(fast_r.mem, slow_r.mem);
    }

    #[test]
    fn layout_and_buffering_do_not_change_results() {
        let p = make_problem(
            GemmShape {
                m: 128,
                n: 128,
                k: 32,
            },
            46,
        );
        let mut outs = Vec::new();
        for (layout, db) in [
            (SmemLayout::Swizzled, true),
            (SmemLayout::Swizzled, false),
            (SmemLayout::NaiveRowMajor, true),
        ] {
            let mut dev = GpuDevice::gtx970();
            let (ops, a2, b2, w, v) = gpu_setup(&mut dev, &p);
            dev.run(
                &FusedKernelSummation::new(ops, a2, b2, w, v, p.shape, p.bw)
                    .with_layout(layout)
                    .with_double_buffer(db),
            )
            .unwrap();
            outs.push(dev.download(v));
        }
        for o in &outs[1..] {
            for (a, b) in outs[0].iter().zip(o.iter()) {
                assert!((a - b).abs() < 1e-4 * a.abs().max(1.0));
            }
        }
    }

    #[test]
    fn occupancy_is_two_blocks_per_sm() {
        let p = make_problem(
            GemmShape {
                m: 128,
                n: 128,
                k: 8,
            },
            47,
        );
        let mut dev = GpuDevice::gtx970();
        let (ops, a2, b2, w, v) = gpu_setup(&mut dev, &p);
        let prof = dev
            .launch(&FusedKernelSummation::new(ops, a2, b2, w, v, p.shape, p.bw))
            .unwrap();
        assert_eq!(prof.occupancy.blocks_per_sm, 2);
    }
}
