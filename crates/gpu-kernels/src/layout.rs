//! Shared-memory data mapping (paper §III-B, Fig 5) — the *paper
//! point* of the generalized mapping in [`crate::geometry`].
//!
//! A `tile` is 128 points × 8 k-values (tileA: 128 rows of A; tileB:
//! 128 columns of B — both are stored point-contiguous in global
//! memory, so a *track* — the 8 k-values of one point — is 8
//! consecutive floats).
//!
//! The tile is viewed as 16 microtiles of 8 points × 8 k. To let every
//! warp read all 16 microtiles without load bank conflicts, each 8×8
//! microtile is **reshaped to 32×2**: track `c` of microtile `m` lives
//! in bank `2m + (c mod 2)`, rows `8·(c div 2) + k` (Fig 5). The 16
//! microtiles then tile the 32 banks exactly.
//!
//! These free functions are retained for the paper-default call sites
//! and the ablation tests; the geometry-parameterized engine uses
//! [`crate::geometry::TileSide`] directly, of which this module is the
//! `128/8/8` specialization (a property the tests below pin).

use crate::geometry::{TileGeometry, TileSide};

/// How a tile is placed in shared memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SmemLayout {
    /// Fig 5 swizzle: store and load conflict-free.
    #[default]
    Swizzled,
    /// Tile stored `[k][point]` row-major: conflicted loads (ablation).
    NaiveRowMajor,
}

/// The paper-default operand side (both sides coincide at the paper
/// point: 128-point tiles of 8×8 microtiles).
#[must_use]
fn paper_side() -> TileSide {
    TileGeometry::paper_default().side_a()
}

/// Number of microtiles in a paper-default tile.
pub const MICROTILES: usize = 16;

/// Word offset (within a tile's 1024-word shared array) of element
/// `k` of track `c` of microtile `m` (see module docs).
#[inline]
#[must_use]
pub fn tile_word(layout: SmemLayout, m: usize, c: usize, k: usize) -> u32 {
    paper_side().word(layout, m, c, k)
}

/// Store-side mapping: which (microtile, track) thread `u` (0..32) of
/// warp `w` (0..4, within the half-block assigned to this tile) fetches
/// and stores. Each of the 4 warps contributes 2 tracks per microtile.
#[inline]
#[must_use]
pub fn loader_assignment(w: usize, u: usize) -> (usize, usize) {
    paper_side().loader_track(w, u)
}

/// Global element index (within the tile's source region) of track
/// `(m, c)`: the tile covers 128 consecutive points, each
/// point-contiguous with `k_stride` elements between points; element
/// `k` of the track is `point · k_stride + k`.
#[inline]
#[must_use]
pub fn track_global_offset(m: usize, c: usize, k_stride: usize) -> usize {
    paper_side().track_global_offset(m, c, k_stride)
}

/// Word indices (pairs) read at compute time: the 8 values of
/// microtile `m` at k-step `k` as 4 aligned word pairs (LDS.64 each).
/// `pair_base(j)` is the first word; the second is `+1`.
#[inline]
#[must_use]
pub fn compute_read_pairs(layout: SmemLayout, m: usize, k: usize) -> [u32; 4] {
    let side = paper_side();
    std::array::from_fn(|j| side.pair_base(layout, m, k, j))
}

/// The track value order produced by [`compute_read_pairs`]: pair `j`
/// holds tracks `(2j, 2j+1)` in the swizzled layout and `(2j, 2j+1)`
/// in the naive layout too (contiguity), so consumers can use one
/// ordering.
#[inline]
#[must_use]
pub fn pair_tracks(j: usize) -> (usize, usize) {
    (2 * j, 2 * j + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ks_gpu_sim::smem::warp_transactions;

    const MICRO_TILE: usize = 8;
    const K_TILE: usize = 8;
    const TILE_WORDS: usize = 1024;

    #[test]
    fn legacy_formulas_are_the_paper_point_of_the_general_map() {
        // The hand-derived Fig 5 formulas, pinned against TileSide.
        for m in 0..MICROTILES {
            for c in 0..MICRO_TILE {
                for k in 0..K_TILE {
                    let want = ((8 * (c / 2) + k) * 32 + 2 * m + c % 2) as u32;
                    assert_eq!(tile_word(SmemLayout::Swizzled, m, c, k), want);
                    let naive = (k * 128 + m * MICRO_TILE + c) as u32;
                    assert_eq!(tile_word(SmemLayout::NaiveRowMajor, m, c, k), naive);
                }
            }
        }
        for w in 0..4 {
            for u in 0..32 {
                assert_eq!(loader_assignment(w, u), (u / 2, 2 * w + u % 2));
            }
        }
    }

    #[test]
    fn every_tile_word_is_covered_exactly_once() {
        for layout in [SmemLayout::Swizzled, SmemLayout::NaiveRowMajor] {
            let mut seen = vec![false; TILE_WORDS];
            for m in 0..MICROTILES {
                for c in 0..MICRO_TILE {
                    for k in 0..K_TILE {
                        let w = tile_word(layout, m, c, k) as usize;
                        assert!(!seen[w], "{layout:?}: word {w} covered twice");
                        seen[w] = true;
                    }
                }
            }
            assert!(seen.iter().all(|&s| s), "{layout:?}: uncovered words");
        }
    }

    #[test]
    fn loader_assignment_covers_all_tracks_once() {
        let mut seen = [[false; MICRO_TILE]; MICROTILES];
        for w in 0..4 {
            for u in 0..32 {
                let (m, c) = loader_assignment(w, u);
                assert!(!seen[m][c], "track ({m},{c}) loaded twice");
                seen[m][c] = true;
            }
        }
        assert!(seen.iter().all(|row| row.iter().all(|&s| s)));
    }

    #[test]
    fn swizzled_stores_are_conflict_free_exhaustively() {
        // §III-B: "the 32 threads in the same warp are writing to 32
        // different banks". Check every warp, every k-phase.
        for w in 0..4 {
            for k in 0..K_TILE {
                let addrs: [Option<u32>; 32] = std::array::from_fn(|u| {
                    let (m, c) = loader_assignment(w, u);
                    Some(tile_word(SmemLayout::Swizzled, m, c, k))
                });
                assert_eq!(
                    warp_transactions(&addrs, 32),
                    1,
                    "store conflict at w={w} k={k}"
                );
            }
        }
    }

    #[test]
    fn swizzled_compute_loads_are_conflict_free_exhaustively() {
        // During compute, warp lanes are (tx, ty): lane = ty*16+tx with
        // ty ∈ {2q, 2q+1}. The B-operand read of lane (tx, ty) at
        // k-step k is pair j of microtile tx. Check all warps, k, j and
        // both pair phases.
        for q in 0..8 {
            for k in 0..K_TILE {
                for j in 0..4 {
                    for phase in 0..2u32 {
                        let addrs: [Option<u32>; 32] = std::array::from_fn(|lane| {
                            let tx = lane % 16;
                            let _ty = 2 * q + lane / 16;
                            Some(compute_read_pairs(SmemLayout::Swizzled, tx, k)[j] + phase)
                        });
                        assert_eq!(
                            warp_transactions(&addrs, 32),
                            1,
                            "load conflict q={q} k={k} j={j} phase={phase}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn swizzled_a_operand_loads_broadcast_cleanly() {
        // A-operand: lane (tx, ty) reads microtile ty; 16 tx lanes
        // broadcast the same word.
        for q in 0..8 {
            for k in 0..K_TILE {
                for j in 0..4 {
                    for phase in 0..2u32 {
                        let addrs: [Option<u32>; 32] = std::array::from_fn(|lane| {
                            let ty = 2 * q + lane / 16;
                            Some(compute_read_pairs(SmemLayout::Swizzled, ty, k)[j] + phase)
                        });
                        assert_eq!(warp_transactions(&addrs, 32), 1);
                    }
                }
            }
        }
    }

    #[test]
    fn naive_compute_loads_do_conflict() {
        // The problem Fig 5 fixes: naive [k][point] placement makes the
        // 16 tx lanes hit 8·tx strides → 4-way conflicts.
        let mut worst = 0;
        for k in 0..K_TILE {
            for j in 0..4 {
                for phase in 0..2u32 {
                    let addrs: [Option<u32>; 32] = std::array::from_fn(|lane| {
                        let tx = lane % 16;
                        Some(compute_read_pairs(SmemLayout::NaiveRowMajor, tx, k)[j] + phase)
                    });
                    worst = worst.max(warp_transactions(&addrs, 32));
                }
            }
        }
        assert!(worst >= 4, "naive layout should conflict, worst={worst}");
    }

    #[test]
    fn compute_pairs_agree_with_tile_words() {
        // pair j phase p of microtile m at step k must be the word of
        // track 2j+p.
        for layout in [SmemLayout::Swizzled, SmemLayout::NaiveRowMajor] {
            for m in 0..MICROTILES {
                for k in 0..K_TILE {
                    let pairs = compute_read_pairs(layout, m, k);
                    for j in 0..4 {
                        let (c0, c1) = pair_tracks(j);
                        assert_eq!(
                            pairs[j],
                            tile_word(layout, m, c0, k),
                            "{layout:?} m={m} k={k} j={j}"
                        );
                        assert_eq!(
                            pairs[j] + 1,
                            tile_word(layout, m, c1, k),
                            "{layout:?} m={m} k={k} j={j}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn track_global_offsets_are_point_contiguous() {
        assert_eq!(track_global_offset(0, 0, 8), 0);
        assert_eq!(track_global_offset(0, 1, 8), 8);
        assert_eq!(track_global_offset(2, 3, 32), (2 * 8 + 3) * 32);
    }

    #[test]
    fn warp_stores_fill_one_row_per_phase() {
        // In the swizzled layout, warp w's store phase k writes exactly
        // row 8w+k of the 32-bank array — the property that makes the
        // mapping easy to reason about.
        for w in 0..4 {
            for k in 0..K_TILE {
                for u in 0..32 {
                    let (m, c) = loader_assignment(w, u);
                    let word = tile_word(SmemLayout::Swizzled, m, c, k);
                    assert_eq!(word / 32, (8 * w + k) as u32, "w={w} k={k} u={u}");
                    assert_eq!(word % 32, u as u32);
                }
            }
        }
    }
}
