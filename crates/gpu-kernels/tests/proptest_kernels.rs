//! Property-based tests of the GPU kernels: functional correctness on
//! random tiling-compatible shapes, exact instruction-count formulas,
//! and traffic/functional equivalence.

use ks_gpu_kernels::aux_kernels::{Bandwidth, EvalSumKernel, NormsKernel};
use ks_gpu_kernels::fused::FusedKernelSummation;
use ks_gpu_kernels::gemm_engine::{syncs_per_block, GemmOperands, GemmShape};
use ks_gpu_kernels::{CudaSgemm, TileGeometry};
use ks_gpu_sim::GpuDevice;
use proptest::prelude::*;

fn rand_vec(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) * 0.5
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn sgemm_functional_matches_cpu_on_random_shapes(
        mb in 1usize..3,
        nb in 1usize..3,
        kt in 1usize..5,
        seed in 0u64..1_000,
    ) {
        let shape = GemmShape { m: mb * 128, n: nb * 128, k: kt * 8 };
        let a = rand_vec(shape.m * shape.k, seed);
        let b = rand_vec(shape.k * shape.n, seed + 1);
        let mut dev = GpuDevice::gtx970();
        let ops = GemmOperands { a: dev.upload(&a), b: dev.upload(&b) };
        let c = dev.alloc(shape.m * shape.n);
        dev.run(&CudaSgemm::new(ops, c, shape)).unwrap();
        let got = dev.download(c);
        for _ in 0..32 {
            // Spot-check 32 random elements against the scalar oracle.
            let mut state = seed.wrapping_add(got.len() as u64) | 1;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let i = (state >> 33) as usize % shape.m;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % shape.n;
            let want: f64 = (0..shape.k).map(|p| a[i * shape.k + p] as f64 * b[j * shape.k + p] as f64).sum();
            let gotv = got[i * shape.n + j] as f64;
            prop_assert!((gotv - want).abs() < 1e-3 * want.abs().max(1.0), "({i},{j}): {gotv} vs {want}");
        }
    }

    #[test]
    fn gemm_counters_obey_closed_forms(
        mb in 1usize..3,
        nb in 1usize..3,
        kt in 1usize..6,
        double_buffer in any::<bool>(),
    ) {
        let shape = GemmShape { m: mb * 128, n: nb * 128, k: kt * 8 };
        let mut dev = GpuDevice::gtx970();
        let ops = GemmOperands { a: dev.alloc_virtual(shape.m * shape.k), b: dev.alloc_virtual(shape.k * shape.n) };
        let c = dev.alloc_virtual(shape.m * shape.n);
        let p = dev.launch(&CudaSgemm::new(ops, c, shape).with_double_buffer(double_buffer)).unwrap();

        let blocks = (shape.m / 128) as u64 * (shape.n / 128) as u64;
        let tiles = (shape.k / 8) as u64;
        // FLOPs: exactly 2·M·N·K from the FFMAs.
        prop_assert_eq!(p.counters.flops, 2 * (shape.m * shape.n * shape.k) as u64);
        // FFMA warp instructions: blocks × tiles × 8 warps × 8 steps × 64.
        prop_assert_eq!(p.counters.ffma_insts, blocks * tiles * 8 * 8 * 64);
        // Global loads: 2 LDG.128 per warp per tile.
        prop_assert_eq!(p.counters.global_load_insts, blocks * tiles * 16);
        // Stores: 8 warps × 8 rows × 2 per block.
        prop_assert_eq!(p.counters.global_store_insts, blocks * 128);
        // Barriers.
        let geo = TileGeometry {
            double_buffer_depth: if double_buffer { 2 } else { 1 },
            ..TileGeometry::paper_default()
        };
        prop_assert_eq!(p.counters.sync_insts, blocks * 8 * syncs_per_block(&geo, shape.k));
        // Swizzled layout ⇒ conflict-free: store transactions equal
        // instructions, load transactions exactly two phases each.
        prop_assert_eq!(p.counters.smem.store_transactions, p.counters.smem.store_instructions);
        prop_assert_eq!(p.counters.smem.load_transactions, 2 * p.counters.smem.load_instructions);
        // DRAM reads bounded by compulsory traffic (every operand byte
        // at most ~twice through L2 in the worst case).
        let compulsory = ((shape.m + shape.n) * shape.k) as u64 / 8;
        prop_assert!(p.mem.dram_reads() >= compulsory.min(8) || shape.k == 0);
    }

    #[test]
    fn fused_kernel_matches_scalar_oracle(
        mb in 1usize..3,
        nb in 1usize..3,
        kt in 1usize..4,
        seed in 0u64..1_000,
    ) {
        let shape = GemmShape { m: mb * 128, n: nb * 128, k: kt * 8 };
        let bw = Bandwidth { h: 1.0 };
        let a = rand_vec(shape.m * shape.k, seed);
        let b = rand_vec(shape.k * shape.n, seed + 1);
        let w = rand_vec(shape.n, seed + 2);
        let a2: Vec<f32> = (0..shape.m).map(|i| a[i * shape.k..(i + 1) * shape.k].iter().map(|v| v * v).sum()).collect();
        let b2: Vec<f32> = (0..shape.n).map(|j| b[j * shape.k..(j + 1) * shape.k].iter().map(|v| v * v).sum()).collect();

        let mut dev = GpuDevice::gtx970();
        let ops = GemmOperands { a: dev.upload(&a), b: dev.upload(&b) };
        let (ba2, bb2, bwv, bv) = (dev.upload(&a2), dev.upload(&b2), dev.upload(&w), dev.alloc(shape.m));
        dev.run(&FusedKernelSummation::new(ops, ba2, bb2, bwv, bv, shape, bw)).unwrap();
        let got = dev.download(bv);

        let s = bw.inv_2h2() as f64;
        for i in (0..shape.m).step_by(37) {
            let want: f64 = (0..shape.n)
                .map(|j| {
                    let d: f64 = (0..shape.k).map(|t| (a[i * shape.k + t] as f64 - b[j * shape.k + t] as f64).powi(2)).sum();
                    (-d * s).exp() * w[j] as f64
                })
                .sum();
            prop_assert!((got[i] as f64 - want).abs() < 3e-3 * want.abs().max(1.0), "row {i}: {} vs {want}", got[i]);
        }
    }

    #[test]
    fn norms_kernel_counters_scale_linearly(
        blocks in 1usize..5,
        kq in 1usize..8,
    ) {
        let (n_points, dim) = (blocks * 128, kq * 4);
        let mut dev = GpuDevice::gtx970();
        let pts = dev.alloc_virtual(n_points * dim);
        let out = dev.alloc_virtual(n_points);
        let p = dev.launch(&NormsKernel::new(pts, out, n_points, dim, "prop")).unwrap();
        // One FFMA per coordinate (square-accumulate).
        prop_assert_eq!(p.counters.flops, 2 * (n_points * dim) as u64);
        prop_assert_eq!(p.counters.global_store_insts, blocks as u64 * 4);
    }

    #[test]
    fn eval_sum_reads_every_c_element_once(
        mb in 1usize..4,
        n in proptest::sample::select(vec![128usize, 256, 512]),
    ) {
        let m = mb * 128;
        let mut dev = GpuDevice::gtx970();
        let c = dev.alloc_virtual(m * n);
        let (a2, b2, w, v) = (dev.alloc_virtual(m), dev.alloc_virtual(n), dev.alloc_virtual(n), dev.alloc_virtual(m));
        let p = dev.launch(&EvalSumKernel::new(c, a2, b2, w, v, m, n, Bandwidth { h: 1.0 })).unwrap();
        // Thread-per-row baseline: one scattered sector per element for
        // C, plus two broadcast loads.
        let elems = (m * n) as u64;
        prop_assert_eq!(p.counters.global_load_insts, 3 * elems / 32 + (m as u64 / 32));
        prop_assert_eq!(p.counters.sfu_insts, elems / 32);
        // DRAM reads bounded by the unique C footprint (+ small).
        prop_assert!(p.mem.dram_reads() <= elems / 8 + 1024);
    }
}
