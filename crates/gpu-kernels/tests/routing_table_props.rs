//! Property tests for the packed launch's block routing.
//!
//! The [`RoutingTable`] is the load-bearing piece of horizontal
//! fusion: if any linear block routed to the wrong segment, to
//! out-of-range local coordinates, or to two segments at once, the
//! packed kernel would read or write another segment's buffers and
//! the bit-identity contract would fall. These properties pin that
//! the table is an **exact partition** of the packed grid.

use ks_gpu_kernels::RoutingTable;
use proptest::prelude::*;

/// Random per-segment grids, sized like real packed waves (the serve
/// planner caps segments at 16 blocks, but the table itself must hold
/// for any non-empty grid list).
fn grids() -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((1u32..=8, 1u32..=8), 1..25)
}

proptest! {
    /// Every linear block routes to exactly one `(segment, local)`
    /// pair with in-range local coordinates — no block unassigned, no
    /// segment overlap, extents within the segment's grid.
    #[test]
    fn every_block_routes_to_exactly_one_in_range_slot(grids in grids()) {
        let table = RoutingTable::new(&grids);
        let total: u32 = grids.iter().map(|&(gx, gy)| gx * gy).sum();
        prop_assert_eq!(table.total_blocks(), total);
        prop_assert_eq!(table.segments(), grids.len());
        let mut seen = vec![vec![false; 0]; grids.len()];
        for (s, &(gx, gy)) in grids.iter().enumerate() {
            seen[s] = vec![false; (gx * gy) as usize];
        }
        for linear in 0..total {
            let (seg, local) = table.route(linear);
            let (gx, gy) = grids[seg];
            prop_assert!(local.x < gx, "block {}: x {} ≥ gx {}", linear, local.x, gx);
            prop_assert!(local.y < gy, "block {}: y {} ≥ gy {}", linear, local.y, gy);
            prop_assert_eq!(local.z, 1, "packed grids are 2-D");
            let slot = (local.y * gx + local.x) as usize;
            prop_assert!(!seen[seg][slot], "block {} double-covers segment {}", linear, seg);
            seen[seg][slot] = true;
        }
        // No slot unassigned: every (segment, local) pair was hit.
        for (s, slots) in seen.iter().enumerate() {
            prop_assert!(slots.iter().all(|&v| v), "segment {} has unrouted blocks", s);
        }
    }

    /// Segments own contiguous linear ranges in declaration order:
    /// `segment_start` is the prefix sum of grid sizes, and routing is
    /// the inverse of local linearization within each range.
    #[test]
    fn segment_ranges_are_contiguous_and_routing_inverts_linearization(grids in grids()) {
        let table = RoutingTable::new(&grids);
        let mut start = 0u32;
        for (s, &(gx, gy)) in grids.iter().enumerate() {
            prop_assert_eq!(table.segment_start(s), start);
            prop_assert_eq!(table.grid(s), (gx, gy));
            for local in 0..gx * gy {
                let (seg, d) = table.route(start + local);
                prop_assert_eq!(seg, s);
                prop_assert_eq!(d.y * gx + d.x, local);
            }
            start += gx * gy;
        }
    }
}

#[test]
#[should_panic(expected = "outside packed grid")]
fn routing_past_the_grid_panics() {
    let table = RoutingTable::new(&[(2, 2)]);
    let _ = table.route(4);
}
