//! Differential harness over the tile-geometry lattice: every
//! feasible [`TileGeometry`] must produce results bit-identical to the
//! geometry-aware CPU oracle under the sequential (`run_counted`)
//! schedule — the same reduction-order contract the serving ladder's
//! CPU/GPU cross-checks rely on.
//!
//! The shapes here are compact so the sweep stays debug-build fast;
//! the CI `tune-bench` job repeats the same check on the full smoke
//! grid in release through the tuner's admission gate
//! (`ks_tune::admit_geometry`), which refuses to ship any geometry
//! that fails it.

use ks_gpu_kernels::aux_kernels::Bandwidth;
use ks_gpu_kernels::fused::FusedKernelSummation;
use ks_gpu_kernels::fused_multi::FusedMultiWeight;
use ks_gpu_kernels::gemm_engine::{GemmOperands, GemmShape};
use ks_gpu_kernels::{fused_multi_oracle, fused_oracle, TileGeometry};
use ks_gpu_sim::config::DeviceConfig;
use ks_gpu_sim::GpuDevice;

fn rand_vec(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) * 0.5
        })
        .collect()
}

fn host_norms(pts: &[f32], rows: usize, k: usize) -> Vec<f32> {
    (0..rows)
        .map(|i| pts[i * k..(i + 1) * k].iter().map(|v| v * v).sum())
        .collect()
}

/// Runs every feasible lattice geometry that divides `shape` through
/// the full-device sequential schedule and asserts bit-identity with
/// the oracle. Returns how many geometries were exercised.
fn sweep_shape(shape: GemmShape, seed: u64) -> usize {
    let bw = Bandwidth { h: 1.0 };
    let a = rand_vec(shape.m * shape.k, seed);
    let b = rand_vec(shape.k * shape.n, seed + 1);
    let w = rand_vec(shape.n, seed + 2);
    let a2 = host_norms(&a, shape.m, shape.k);
    let b2 = host_norms(&b, shape.n, shape.k);

    let mut exercised = 0;
    for geo in TileGeometry::lattice(&DeviceConfig::gtx970()) {
        if !geo.divides(shape.m, shape.n, shape.k) {
            continue;
        }
        let mut dev = GpuDevice::gtx970();
        let ops = GemmOperands {
            a: dev.upload(&a),
            b: dev.upload(&b),
        };
        let (ba2, bb2, bw_buf, bv) = (
            dev.upload(&a2),
            dev.upload(&b2),
            dev.upload(&w),
            dev.alloc(shape.m),
        );
        dev.run_counted(
            &FusedKernelSummation::new(ops, ba2, bb2, bw_buf, bv, shape, bw).with_geometry(geo),
        )
        .unwrap();
        let got = dev.download(bv);
        let want = fused_oracle(&geo, &a, &b, &a2, &b2, &w, shape.m, shape.n, shape.k, bw.h);
        for (i, (g, x)) in got.iter().zip(want.iter()).enumerate() {
            assert_eq!(
                g.to_bits(),
                x.to_bits(),
                "{geo} shape {}x{}x{} row {i}: {g} vs {x}",
                shape.m,
                shape.n,
                shape.k
            );
        }
        exercised += 1;
    }
    exercised
}

#[test]
fn every_feasible_geometry_matches_the_oracle_bit_for_bit() {
    let n = sweep_shape(
        GemmShape {
            m: 256,
            n: 256,
            k: 16,
        },
        101,
    );
    // The lattice must be a real sweep, not a handful of near-paper
    // points — a feasibility regression that silently empties it would
    // otherwise pass vacuously.
    assert!(n >= 10, "only {n} feasible geometries divided the shape");
}

#[test]
fn non_square_shapes_are_covered_too() {
    let n = sweep_shape(
        GemmShape {
            m: 512,
            n: 256,
            k: 32,
        },
        202,
    );
    assert!(n >= 10, "only {n} feasible geometries divided the shape");
}

#[test]
fn multi_weight_lattice_matches_the_multi_oracle() {
    // The R-column variant under a few non-paper geometries: same
    // contract, column-major output.
    let shape = GemmShape {
        m: 256,
        n: 256,
        k: 16,
    };
    let r = 3;
    let bw = Bandwidth { h: 1.0 };
    let a = rand_vec(shape.m * shape.k, 303);
    let b = rand_vec(shape.k * shape.n, 304);
    let w_flat = rand_vec(shape.n * r, 305);
    let a2 = host_norms(&a, shape.m, shape.k);
    let b2 = host_norms(&b, shape.n, shape.k);

    let mut exercised = 0;
    for geo in TileGeometry::lattice(&DeviceConfig::gtx970()) {
        if !geo.divides(shape.m, shape.n, shape.k) || geo.tile_k < r {
            continue;
        }
        // Keep the debug-build sweep quick: multi-weight only differs
        // from the single-weight path in the per-column epilogue, so a
        // microtile-8 block-diverse subset is representative.
        if geo.micro_m != 8 || geo.micro_n != 8 {
            continue;
        }
        let mut dev = GpuDevice::gtx970();
        let ops = GemmOperands {
            a: dev.upload(&a),
            b: dev.upload(&b),
        };
        let (ba2, bb2, bw_buf, bv) = (
            dev.upload(&a2),
            dev.upload(&b2),
            dev.upload(&w_flat),
            dev.alloc(shape.m * r),
        );
        dev.run_counted(
            &FusedMultiWeight::new(ops, ba2, bb2, bw_buf, bv, shape, bw, r).with_geometry(geo),
        )
        .unwrap();
        let got = dev.download(bv);
        let want = fused_multi_oracle(
            &geo, &a, &b, &a2, &b2, &w_flat, shape.m, shape.n, shape.k, bw.h, r,
        );
        for (i, (g, x)) in got.iter().zip(want.iter()).enumerate() {
            assert_eq!(g.to_bits(), x.to_bits(), "{geo} multi elem {i}: {g} vs {x}");
        }
        exercised += 1;
    }
    assert!(exercised >= 4, "only {exercised} multi geometries swept");
}
