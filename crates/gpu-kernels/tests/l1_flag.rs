//! The §II-C compiler flag, measured: "a compiler flag can be used to
//! specify that all global loads must be cached at all levels". With
//! the flag on, the naive thread-per-row summation kernel's scattered
//! C reads become L1 hits (each block's working set is 128 rows × one
//! 32-byte sector = 4KB, far below the 24KB L1), collapsing its L2
//! amplification.

use ks_gpu_kernels::aux_kernels::{Bandwidth, EvalSumKernel};
use ks_gpu_kernels::{GpuKernelSummation, GpuVariant};
use ks_gpu_sim::{DeviceConfig, GpuDevice};

fn eval_sum_profile(l1: bool, m: usize, n: usize) -> ks_gpu_sim::profiler::KernelProfile {
    let mut cfg = DeviceConfig::gtx970();
    cfg.l1_cache_global_loads = l1;
    let mut dev = GpuDevice::new(cfg);
    let c = dev.alloc_virtual(m * n);
    let (a2, b2, w, v) = (
        dev.alloc_virtual(m),
        dev.alloc_virtual(n),
        dev.alloc_virtual(n),
        dev.alloc_virtual(m),
    );
    dev.launch(&EvalSumKernel::new(
        c,
        a2,
        b2,
        w,
        v,
        m,
        n,
        Bandwidth { h: 1.0 },
    ))
    .unwrap()
}

#[test]
fn l1_flag_collapses_the_naive_summation_kernels_l2_amplification() {
    let (m, n) = (2048, 1024);
    let off = eval_sum_profile(false, m, n);
    let on = eval_sum_profile(true, m, n);
    assert_eq!(
        off.counters.l1_read_sectors, 0,
        "L1 disabled by default, as on Maxwell"
    );
    assert!(on.counters.l1_read_sectors > 0);
    let hit_rate = on.counters.l1_read_hits as f64 / on.counters.l1_read_sectors as f64;
    println!("L1 hit rate with -dlcm=ca: {hit_rate:.3}");
    assert!(
        hit_rate > 0.7,
        "scattered row reads should mostly hit L1: {hit_rate}"
    );
    // L2 traffic collapses accordingly.
    assert!(
        (on.counters.l2_read_sectors as f64) < 0.4 * off.counters.l2_read_sectors as f64,
        "L2 reads {} vs {}",
        on.counters.l2_read_sectors,
        off.counters.l2_read_sectors
    );
    // Unique DRAM traffic is unchanged (same compulsory misses).
    assert_eq!(on.mem.dram_reads(), off.mem.dram_reads());
}

#[test]
fn l1_flag_does_not_change_fused_pipeline_dram_traffic() {
    // The fused kernel reads each input sector once per block from L2
    // anyway; L1 caching can reduce its L2 traffic but must not change
    // what reaches DRAM.
    let ks = GpuKernelSummation::new(1024, 1024, 32, 1.0);
    let run = |l1: bool| {
        let mut cfg = DeviceConfig::gtx970();
        cfg.l1_cache_global_loads = l1;
        let mut dev = GpuDevice::new(cfg);
        ks.profile(&mut dev, GpuVariant::Fused).unwrap()
    };
    let off = run(false);
    let on = run(true);
    assert_eq!(on.total_mem().dram_reads(), off.total_mem().dram_reads());
    assert_eq!(on.total_mem().dram_writes, off.total_mem().dram_writes);
}

#[test]
fn l1_state_does_not_leak_between_kernels() {
    // L1s are invalidated at every launch: two identical launches see
    // identical L1 hit counts.
    let p1 = eval_sum_profile(true, 1024, 512);
    let p2 = eval_sum_profile(true, 1024, 512);
    assert_eq!(p1.counters.l1_read_hits, p2.counters.l1_read_hits);
}
