//! Property-based tests of the BLAS substrate: algebraic identities
//! and implementation-equivalence on random shapes, layouts and
//! blocking parameters.

use ks_blas::{
    col_sq_norms, gemm_blocked, gemm_naive, gemm_parallel, gemv, gemv_parallel, row_sq_norms,
    GemmConfig, Layout, Matrix,
};
use proptest::prelude::*;

fn matrix(rows: usize, cols: usize, layout: Layout, seed: u64) -> Matrix {
    let mut state = seed | 1;
    Matrix::from_fn(rows, cols, layout, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
    })
}

fn layout_strategy() -> impl Strategy<Value = Layout> {
    prop_oneof![Just(Layout::RowMajor), Just(Layout::ColMajor)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn blocked_equals_naive(
        m in 1usize..80,
        n in 1usize..80,
        k in 1usize..48,
        mc in 1usize..40,
        kc in 1usize..40,
        nc in 1usize..40,
        la in layout_strategy(),
        lb in layout_strategy(),
        seed in 0u64..1_000,
    ) {
        let a = matrix(m, k, la, seed);
        let b = matrix(k, n, lb, seed + 1);
        let mut c0 = matrix(m, n, Layout::RowMajor, seed + 2);
        let mut c1 = c0.clone();
        gemm_naive(1.3, &a, &b, -0.4, &mut c0);
        gemm_blocked(1.3, &a, &b, -0.4, &mut c1, GemmConfig { mc, kc, nc });
        prop_assert!(c0.max_abs_diff(&c1) < 1e-3);
    }

    #[test]
    fn parallel_equals_naive(
        m in 1usize..100,
        n in 1usize..100,
        k in 1usize..32,
        seed in 0u64..1_000,
    ) {
        let a = matrix(m, k, Layout::RowMajor, seed);
        let b = matrix(k, n, Layout::ColMajor, seed + 1);
        let mut c0 = Matrix::zeros(m, n, Layout::RowMajor);
        let mut c1 = c0.clone();
        gemm_naive(1.0, &a, &b, 0.0, &mut c0);
        gemm_parallel(1.0, &a, &b, 0.0, &mut c1, GemmConfig { mc: 24, kc: 16, nc: 32 });
        prop_assert!(c0.max_abs_diff(&c1) < 1e-3);
    }

    #[test]
    fn gemm_is_linear_in_alpha(
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..24,
        alpha in -4.0f32..4.0,
        seed in 0u64..1_000,
    ) {
        let a = matrix(m, k, Layout::RowMajor, seed);
        let b = matrix(k, n, Layout::ColMajor, seed + 1);
        let mut c1 = Matrix::zeros(m, n, Layout::RowMajor);
        let mut c2 = Matrix::zeros(m, n, Layout::RowMajor);
        gemm_blocked(1.0, &a, &b, 0.0, &mut c1, GemmConfig::default());
        gemm_blocked(alpha, &a, &b, 0.0, &mut c2, GemmConfig::default());
        for r in 0..m {
            for cc in 0..n {
                let want = alpha * c1.get(r, cc);
                prop_assert!((c2.get(r, cc) - want).abs() < 1e-3 * want.abs().max(1.0));
            }
        }
    }

    #[test]
    fn gemv_parallel_equals_sequential(
        m in 1usize..120,
        n in 1usize..120,
        alpha in -2.0f32..2.0,
        beta in -2.0f32..2.0,
        seed in 0u64..1_000,
    ) {
        let a = matrix(m, n, Layout::RowMajor, seed);
        let x = matrix(n, 1, Layout::RowMajor, seed + 1).into_vec();
        let y0 = matrix(m, 1, Layout::RowMajor, seed + 2).into_vec();
        let mut y1 = y0.clone();
        let mut y2 = y0;
        gemv(alpha, &a, &x, beta, &mut y1);
        gemv_parallel(alpha, &a, &x, beta, &mut y2);
        for (u, v) in y1.iter().zip(y2.iter()) {
            prop_assert!((u - v).abs() < 1e-4 * u.abs().max(1.0));
        }
    }

    #[test]
    fn norms_satisfy_distance_identity(
        k in 1usize..32,
        seed in 0u64..1_000,
    ) {
        // For random points α, β: ‖α−β‖² = ‖α‖² + ‖β‖² − 2αᵀβ.
        let a = matrix(1, k, Layout::RowMajor, seed);
        let b = matrix(k, 1, Layout::ColMajor, seed + 1);
        let na = row_sq_norms(&a)[0];
        let nb = col_sq_norms(&b)[0];
        let dot: f32 = (0..k).map(|i| a.get(0, i) * b.get(i, 0)).sum();
        let direct: f32 = (0..k).map(|i| (a.get(0, i) - b.get(i, 0)).powi(2)).sum();
        prop_assert!((direct - (na + nb - 2.0 * dot)).abs() < 1e-3 * direct.max(1.0));
    }

    #[test]
    fn transpose_round_trip_and_layout_change_preserve_elements(
        m in 1usize..50,
        n in 1usize..50,
        la in layout_strategy(),
        lb in layout_strategy(),
        seed in 0u64..1_000,
    ) {
        let a = matrix(m, n, la, seed);
        prop_assert_eq!(a.max_abs_diff(&a.transposed().transposed()), 0.0);
        prop_assert_eq!(a.max_abs_diff(&a.to_layout(lb)), 0.0);
    }

    #[test]
    fn gemm_transpose_identity(
        m in 1usize..30,
        n in 1usize..30,
        k in 1usize..16,
        seed in 0u64..1_000,
    ) {
        // (A·B)ᵀ == Bᵀ·Aᵀ.
        let a = matrix(m, k, Layout::RowMajor, seed);
        let b = matrix(k, n, Layout::ColMajor, seed + 1);
        let mut ab = Matrix::zeros(m, n, Layout::RowMajor);
        gemm_blocked(1.0, &a, &b, 0.0, &mut ab, GemmConfig::default());
        let mut btat = Matrix::zeros(n, m, Layout::RowMajor);
        gemm_blocked(1.0, &b.transposed(), &a.transposed(), 0.0, &mut btat, GemmConfig::default());
        prop_assert!(ab.transposed().max_abs_diff(&btat) < 1e-3);
    }
}
