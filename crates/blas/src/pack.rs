//! Panel packing for the blocked GEMM.
//!
//! Packing re-stores a block of `A` (resp. `B`) so the microkernel
//! streams it contiguously: the CPU analogue of staging `tileA`/`tileB`
//! in GPU shared memory with a conflict-free placement (paper §III-B).
//!
//! Packed-A format: for each micro-row-panel of [`MR`] rows, `kc`
//! column slivers of `MR` values each (column `p` of the panel, rows
//! `i..i+MR`). Packed-B format: for each micro-col-panel of [`NR`]
//! columns, `kc` row slivers of `NR` values. Fringe panels are
//! zero-padded to full `MR`/`NR` width so the microkernel never needs a
//! bounds check on the K loop.

use crate::matrix::Matrix;
use crate::microkernel::{MR, NR};

/// Packs the `mc × kc` block of `a` starting at (`row0`, `col0`) into
/// `buf`, zero-padding each row panel to `MR` rows.
///
/// `buf` is resized to `ceil(mc/MR) * kc * MR`.
pub fn pack_a(a: &Matrix, row0: usize, col0: usize, mc: usize, kc: usize, buf: &mut Vec<f32>) {
    let panels = mc.div_ceil(MR);
    buf.clear();
    buf.resize(panels * kc * MR, 0.0);
    for panel in 0..panels {
        let r0 = row0 + panel * MR;
        let rows = MR.min(row0 + mc - r0);
        let dst = &mut buf[panel * kc * MR..(panel + 1) * kc * MR];
        for p in 0..kc {
            for i in 0..rows {
                dst[p * MR + i] = a.get(r0 + i, col0 + p);
            }
        }
    }
}

/// Packs the `kc × nc` block of `b` starting at (`row0`, `col0`) into
/// `buf`, zero-padding each column panel to `NR` columns.
///
/// `buf` is resized to `ceil(nc/NR) * kc * NR`.
pub fn pack_b(b: &Matrix, row0: usize, col0: usize, kc: usize, nc: usize, buf: &mut Vec<f32>) {
    let panels = nc.div_ceil(NR);
    buf.clear();
    buf.resize(panels * kc * NR, 0.0);
    for panel in 0..panels {
        let c0 = col0 + panel * NR;
        let cols = NR.min(col0 + nc - c0);
        let dst = &mut buf[panel * kc * NR..(panel + 1) * kc * NR];
        for p in 0..kc {
            for j in 0..cols {
                dst[p * NR + j] = b.get(row0 + p, c0 + j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Layout;

    #[test]
    fn pack_a_round_trips_full_panels() {
        let a = Matrix::from_fn(16, 5, Layout::RowMajor, |r, c| (r * 100 + c) as f32);
        let mut buf = Vec::new();
        pack_a(&a, 0, 0, 16, 5, &mut buf);
        assert_eq!(buf.len(), 2 * 5 * MR);
        // Panel 0, column sliver p=2, row i=3 -> element (3, 2).
        assert_eq!(buf[2 * MR + 3], a.get(3, 2));
        // Panel 1, p=4, i=7 -> element (8+7, 4).
        assert_eq!(buf[5 * MR + 4 * MR + 7], a.get(15, 4));
    }

    #[test]
    fn pack_a_zero_pads_fringe() {
        let a = Matrix::from_fn(10, 3, Layout::RowMajor, |_, _| 1.0);
        let mut buf = Vec::new();
        pack_a(&a, 0, 0, 10, 3, &mut buf);
        // Second panel holds rows 8..10 -> 2 real rows, 6 padded zeros per sliver.
        let panel1 = &buf[3 * MR..];
        for p in 0..3 {
            for i in 0..MR {
                let want = if i < 2 { 1.0 } else { 0.0 };
                assert_eq!(panel1[p * MR + i], want, "p={p} i={i}");
            }
        }
    }

    #[test]
    fn pack_b_round_trips() {
        let b = Matrix::from_fn(4, 16, Layout::ColMajor, |r, c| (r * 100 + c) as f32);
        let mut buf = Vec::new();
        pack_b(&b, 0, 0, 4, 16, &mut buf);
        assert_eq!(buf.len(), 2 * 4 * NR);
        // Panel 1, row sliver p=3, col j=5 -> element (3, 8+5).
        assert_eq!(buf[4 * NR + 3 * NR + 5], b.get(3, 13));
    }

    #[test]
    fn pack_respects_offsets() {
        let a = Matrix::from_fn(20, 9, Layout::RowMajor, |r, c| (r * 31 + c) as f32);
        let mut buf = Vec::new();
        pack_a(&a, 8, 2, 8, 4, &mut buf);
        assert_eq!(buf.len(), 4 * MR);
        assert_eq!(buf[0], a.get(8, 2));
        assert_eq!(buf[3 * MR + 7], a.get(15, 5));
    }

    #[test]
    fn pack_b_fringe_pads() {
        let b = Matrix::from_fn(2, 11, Layout::ColMajor, |_, _| 2.0);
        let mut buf = Vec::new();
        pack_b(&b, 0, 0, 2, 11, &mut buf);
        let panel1 = &buf[2 * NR..];
        for p in 0..2 {
            for j in 0..NR {
                let want = if j < 3 { 2.0 } else { 0.0 };
                assert_eq!(panel1[p * NR + j], want);
            }
        }
    }
}
