//! # ks-blas — CPU BLAS substrate
//!
//! A small, self-contained, single-precision BLAS built for the kernel
//! summation reproduction. It provides the pieces the paper's host-side
//! pipeline depends on (the paper uses Intel MKL on the host and cuBLAS
//! on the device; both are closed — we build our own):
//!
//! * [`Matrix`] — dense matrix with explicit row-/column-major layout,
//!   matching the paper's convention (`A` row-major, `B` column-major).
//! * [`gemm`] — naive, blocked, and packed + rayon-parallel SGEMM.
//! * [`gemv`](crate::gemv()) — SGEMV.
//! * [`norms`] — row/column squared norms (`‖α_i‖²`, `‖β_j‖²`).
//! * [`pack`] / [`microkernel`] — panel packing and the register-blocked
//!   8×8 microkernel, mirroring the GPU kernel's microtile structure.
//!
//! All routines are deterministic and are used as correctness oracles
//! for the GPU-simulated kernels in `ks-gpu-kernels`.

#![warn(missing_docs)]

pub mod gemm;
pub mod gemv;
pub mod matrix;
pub mod microkernel;
pub mod norms;
pub mod pack;

pub use gemm::{gemm_blocked, gemm_naive, gemm_parallel, GemmConfig};
pub use gemv::{gemv, gemv_parallel};
pub use matrix::{Layout, Matrix};
pub use norms::{col_sq_norms, row_sq_norms};
