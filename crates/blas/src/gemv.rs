//! Single-precision matrix-vector multiply (`y ← α·A·x + β·y`).
//!
//! The final step of the unfused kernel-summation pipeline
//! (`V ← K·W`, Algorithm 1 line 16). Accumulation is done in `f64`
//! per output element so the sequential and parallel variants agree to
//! within rounding of the final store.

use rayon::prelude::*;

use crate::matrix::Matrix;

fn check_dims(a: &Matrix, x: &[f32], y: &[f32]) {
    assert_eq!(
        a.cols(),
        x.len(),
        "GEMV: A has {} cols but x has {} elements",
        a.cols(),
        x.len()
    );
    assert_eq!(
        a.rows(),
        y.len(),
        "GEMV: A has {} rows but y has {} elements",
        a.rows(),
        y.len()
    );
}

/// Sequential GEMV: `y ← α·A·x + β·y`.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn gemv(alpha: f32, a: &Matrix, x: &[f32], beta: f32, y: &mut [f32]) {
    check_dims(a, x, y);
    for (i, yi) in y.iter_mut().enumerate() {
        let mut acc = 0.0f64;
        for (j, xj) in x.iter().enumerate() {
            acc += a.get(i, j) as f64 * *xj as f64;
        }
        let base = if beta == 0.0 {
            0.0
        } else {
            beta as f64 * *yi as f64
        };
        *yi = (alpha as f64 * acc + base) as f32;
    }
}

/// Parallel GEMV over output rows.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn gemv_parallel(alpha: f32, a: &Matrix, x: &[f32], beta: f32, y: &mut [f32]) {
    check_dims(a, x, y);
    y.par_iter_mut().enumerate().for_each(|(i, yi)| {
        let mut acc = 0.0f64;
        for (j, xj) in x.iter().enumerate() {
            acc += a.get(i, j) as f64 * *xj as f64;
        }
        let base = if beta == 0.0 {
            0.0
        } else {
            beta as f64 * *yi as f64
        };
        *yi = (alpha as f64 * acc + base) as f32;
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Layout;

    #[test]
    fn matches_hand_computation() {
        let a = Matrix::from_vec(2, 3, Layout::RowMajor, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let x = [1.0, 0.5, -1.0];
        let mut y = [10.0, 20.0];
        gemv(2.0, &a, &x, 1.0, &mut y);
        // row0: 1 + 1 - 3 = -1 -> 2*-1 + 10 = 8 ; row1: 4 + 2.5 - 6 = 0.5 -> 1 + 20 = 21
        assert_eq!(y, [8.0, 21.0]);
    }

    #[test]
    fn parallel_matches_sequential() {
        let a = Matrix::from_fn(127, 63, Layout::ColMajor, |r, c| {
            ((r * 7 + c * 3) % 11) as f32 - 5.0
        });
        let x: Vec<f32> = (0..63).map(|i| (i as f32).sin()).collect();
        let mut y0 = vec![1.0f32; 127];
        let mut y1 = y0.clone();
        gemv(0.7, &a, &x, -0.2, &mut y0);
        gemv_parallel(0.7, &a, &x, -0.2, &mut y1);
        for (u, v) in y0.iter().zip(y1.iter()) {
            assert!((u - v).abs() < 1e-5);
        }
    }

    #[test]
    fn beta_zero_clears_nan() {
        let a = Matrix::zeros(3, 2, Layout::RowMajor);
        let x = [1.0, 1.0];
        let mut y = [f32::NAN; 3];
        gemv(1.0, &a, &x, 0.0, &mut y);
        assert_eq!(y, [0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "GEMV")]
    fn rejects_bad_x_len() {
        let a = Matrix::zeros(2, 3, Layout::RowMajor);
        let mut y = [0.0; 2];
        gemv(1.0, &a, &[1.0; 4], 0.0, &mut y);
    }

    #[test]
    fn empty_matrix() {
        let a = Matrix::zeros(0, 0, Layout::RowMajor);
        let mut y: [f32; 0] = [];
        gemv_parallel(1.0, &a, &[], 1.0, &mut y);
    }
}
