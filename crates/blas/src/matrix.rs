//! Dense single-precision matrix with explicit storage layout.
//!
//! The paper fixes the layouts of its operands: the source-point matrix
//! `A` (M×K) is row-major and the target-point matrix `B` (K×N) is
//! column-major, so that both are traversed contiguously along the K
//! dimension during the rank-8 updates. [`Matrix`] makes the layout part
//! of the value so every routine in the workspace can assert it instead
//! of silently mis-indexing.

/// Storage order of a [`Matrix`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layout {
    /// Row-major: element `(r, c)` lives at `r * cols + c`.
    RowMajor,
    /// Column-major: element `(r, c)` lives at `c * rows + r`.
    ColMajor,
}

impl Layout {
    /// The other layout.
    #[must_use]
    pub fn flipped(self) -> Layout {
        match self {
            Layout::RowMajor => Layout::ColMajor,
            Layout::ColMajor => Layout::RowMajor,
        }
    }
}

/// A dense `rows × cols` matrix of `f32` in a contiguous allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    data: Vec<f32>,
    rows: usize,
    cols: usize,
    layout: Layout,
}

impl Matrix {
    /// An all-zero matrix.
    ///
    /// # Panics
    /// Panics if `rows * cols` overflows `usize`.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize, layout: Layout) -> Self {
        let len = rows
            .checked_mul(cols)
            .expect("matrix dimensions overflow usize");
        Self {
            data: vec![0.0; len],
            rows,
            cols,
            layout,
        }
    }

    /// Builds a matrix by evaluating `f(row, col)` for every element.
    #[must_use]
    pub fn from_fn(
        rows: usize,
        cols: usize,
        layout: Layout,
        mut f: impl FnMut(usize, usize) -> f32,
    ) -> Self {
        let mut m = Self::zeros(rows, cols, layout);
        match layout {
            Layout::RowMajor => {
                for r in 0..rows {
                    for c in 0..cols {
                        m.data[r * cols + c] = f(r, c);
                    }
                }
            }
            Layout::ColMajor => {
                for c in 0..cols {
                    for r in 0..rows {
                        m.data[c * rows + r] = f(r, c);
                    }
                }
            }
        }
        m
    }

    /// Wraps an existing buffer. `data.len()` must equal `rows * cols`.
    ///
    /// # Panics
    /// Panics on a length mismatch.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, layout: Layout, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Self {
            data,
            rows,
            cols,
            layout,
        }
    }

    /// Number of rows.
    #[inline]
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Storage layout.
    #[inline]
    #[must_use]
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Linear index of element `(r, c)` in the backing buffer.
    #[inline]
    #[must_use]
    pub fn index(&self, r: usize, c: usize) -> usize {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds {}x{}",
            self.rows,
            self.cols
        );
        match self.layout {
            Layout::RowMajor => r * self.cols + c,
            Layout::ColMajor => c * self.rows + r,
        }
    }

    /// Element `(r, c)`.
    #[inline]
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[self.index(r, c)]
    }

    /// Overwrites element `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        let i = self.index(r, c);
        self.data[i] = v;
    }

    /// Adds `v` to element `(r, c)`.
    #[inline]
    pub fn add_assign(&mut self, r: usize, c: usize, v: f32) {
        let i = self.index(r, c);
        self.data[i] += v;
    }

    /// Read-only view of the backing buffer (layout order).
    #[inline]
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing buffer (layout order).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning the backing buffer.
    #[must_use]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// A copy of row `r` as a contiguous vector.
    #[must_use]
    pub fn row_copy(&self, r: usize) -> Vec<f32> {
        (0..self.cols).map(|c| self.get(r, c)).collect()
    }

    /// A copy of column `c` as a contiguous vector.
    #[must_use]
    pub fn col_copy(&self, c: usize) -> Vec<f32> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Same logical matrix, re-stored in `layout`.
    #[must_use]
    pub fn to_layout(&self, layout: Layout) -> Matrix {
        if layout == self.layout {
            return self.clone();
        }
        Matrix::from_fn(self.rows, self.cols, layout, |r, c| self.get(r, c))
    }

    /// The transpose, stored in the same layout as `self`.
    #[must_use]
    pub fn transposed(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, self.layout, |r, c| self.get(c, r))
    }

    /// Largest absolute element-wise difference between two
    /// equally-shaped matrices (layouts may differ).
    ///
    /// # Panics
    /// Panics on a shape mismatch.
    #[must_use]
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        let mut worst = 0.0f32;
        for r in 0..self.rows {
            for c in 0..self.cols {
                worst = worst.max((self.get(r, c) - other.get(r, c)).abs());
            }
        }
        worst
    }

    /// Frobenius norm.
    #[must_use]
    pub fn frobenius_norm(&self) -> f32 {
        self.data
            .iter()
            .map(|v| (*v as f64) * (*v as f64))
            .sum::<f64>()
            .sqrt() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_shape_and_content() {
        let m = Matrix::zeros(3, 5, Layout::RowMajor);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 5);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn row_major_indexing_matches_definition() {
        let m = Matrix::from_fn(2, 3, Layout::RowMajor, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(m.get(1, 2), 12.0);
    }

    #[test]
    fn col_major_indexing_matches_definition() {
        let m = Matrix::from_fn(2, 3, Layout::ColMajor, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.as_slice(), &[0.0, 10.0, 1.0, 11.0, 2.0, 12.0]);
        assert_eq!(m.get(1, 2), 12.0);
    }

    #[test]
    fn layout_round_trip_preserves_elements() {
        let m = Matrix::from_fn(4, 7, Layout::RowMajor, |r, c| (r * 100 + c) as f32);
        let back = m.to_layout(Layout::ColMajor).to_layout(Layout::RowMajor);
        assert_eq!(m, back);
    }

    #[test]
    fn transpose_is_involution() {
        let m = Matrix::from_fn(3, 4, Layout::ColMajor, |r, c| (r * 13 + c * 7) as f32);
        assert_eq!(m.transposed().transposed(), m);
        assert_eq!(m.transposed().get(2, 1), m.get(1, 2));
    }

    #[test]
    fn set_and_add_assign() {
        let mut m = Matrix::zeros(2, 2, Layout::RowMajor);
        m.set(0, 1, 3.0);
        m.add_assign(0, 1, 2.0);
        assert_eq!(m.get(0, 1), 5.0);
    }

    #[test]
    fn row_and_col_copy() {
        let m = Matrix::from_fn(2, 3, Layout::ColMajor, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.row_copy(1), vec![10.0, 11.0, 12.0]);
        assert_eq!(m.col_copy(2), vec![2.0, 12.0]);
    }

    #[test]
    fn max_abs_diff_across_layouts() {
        let a = Matrix::from_fn(3, 3, Layout::RowMajor, |r, c| (r + c) as f32);
        let mut b = a.to_layout(Layout::ColMajor);
        b.set(2, 0, b.get(2, 0) + 0.5);
        assert_eq!(a.max_abs_diff(&b), 0.5);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_rejects_wrong_length() {
        let _ = Matrix::from_vec(2, 2, Layout::RowMajor, vec![1.0; 3]);
    }

    #[test]
    fn frobenius_norm_simple() {
        let m = Matrix::from_vec(1, 2, Layout::RowMajor, vec![3.0, 4.0]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn flipped_layout() {
        assert_eq!(Layout::RowMajor.flipped(), Layout::ColMajor);
        assert_eq!(Layout::ColMajor.flipped(), Layout::RowMajor);
    }
}
