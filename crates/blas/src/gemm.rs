//! Single-precision general matrix-matrix multiply (`C ← α·A·B + β·C`).
//!
//! Three implementations with identical semantics:
//!
//! * [`gemm_naive`] — triple loop; the oracle everything else is tested
//!   against.
//! * [`gemm_blocked`] — GotoBLAS-style cache blocking (MC/KC/NC) with
//!   packed panels and the 8×8 register microkernel.
//! * [`gemm_parallel`] — the blocked algorithm with rayon parallelism
//!   over M-blocks (the CPU analogue of the GPU grid of thread blocks;
//!   each M-block × N-block pair is an independent task, exactly like
//!   the paper's `submatrixC` decomposition).

use rayon::prelude::*;

use crate::matrix::Matrix;
use crate::microkernel::{microkernel_8x8, microkernel_edge, MR, NR};
use crate::pack::{pack_a, pack_b};

/// Cache-blocking parameters for [`gemm_blocked`] / [`gemm_parallel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmConfig {
    /// Rows of A packed per outer iteration (L2-resident block).
    pub mc: usize,
    /// Depth of the packed panels (L1-resident block).
    pub kc: usize,
    /// Columns of B packed per outer iteration (L3-resident block).
    pub nc: usize,
}

impl Default for GemmConfig {
    fn default() -> Self {
        // Sized for a ~256KB L2 / 32KB L1 class core; also exercised by
        // the ablation benches with other values.
        Self {
            mc: 128,
            kc: 256,
            nc: 1024,
        }
    }
}

impl GemmConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics if any block dimension is zero.
    pub fn validate(&self) {
        assert!(
            self.mc > 0 && self.kc > 0 && self.nc > 0,
            "GEMM block sizes must be non-zero"
        );
    }
}

fn check_dims(a: &Matrix, b: &Matrix, c: &Matrix) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "GEMM inner dimensions differ: A is {}x{}, B is {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    assert_eq!(
        c.rows(),
        a.rows(),
        "C row count {} != A row count {}",
        c.rows(),
        a.rows()
    );
    assert_eq!(
        c.cols(),
        b.cols(),
        "C col count {} != B col count {}",
        c.cols(),
        b.cols()
    );
}

/// Reference triple-loop GEMM: `C ← α·A·B + β·C`.
///
/// Accumulates in `f64` so it can serve as a tight oracle.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn gemm_naive(alpha: f32, a: &Matrix, b: &Matrix, beta: f32, c: &mut Matrix) {
    check_dims(a, b, c);
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for p in 0..k {
                acc += a.get(i, p) as f64 * b.get(p, j) as f64;
            }
            let v = alpha as f64 * acc + beta as f64 * c.get(i, j) as f64;
            c.set(i, j, v as f32);
        }
    }
}

/// Scales `c` by `beta` in place (`beta == 1` is a no-op, `beta == 0`
/// zeroes, matching BLAS semantics where `0 * NaN = 0`).
fn scale_c(beta: f32, c: &mut Matrix) {
    if beta == 1.0 {
        return;
    }
    if beta == 0.0 {
        c.as_mut_slice().fill(0.0);
    } else {
        for v in c.as_mut_slice() {
            *v *= beta;
        }
    }
}

/// Inner macro-kernel: multiplies one packed A block (mc×kc) by one
/// packed B block (kc×nc) into the row-major scratch `c_block`
/// (mc rows × nc cols, leading dimension `nc_ld`).
fn macro_kernel(
    mc: usize,
    nc: usize,
    kc: usize,
    packed_a: &[f32],
    packed_b: &[f32],
    c_block: &mut [f32],
    nc_ld: usize,
) {
    let m_panels = mc.div_ceil(MR);
    let n_panels = nc.div_ceil(NR);
    for jp in 0..n_panels {
        let nr = NR.min(nc - jp * NR);
        let b_panel = &packed_b[jp * kc * NR..(jp + 1) * kc * NR];
        for ip in 0..m_panels {
            let mr = MR.min(mc - ip * MR);
            let a_panel = &packed_a[ip * kc * MR..(ip + 1) * kc * MR];
            let c_off = ip * MR * nc_ld + jp * NR;
            if mr == MR && nr == NR {
                microkernel_8x8(kc, a_panel, b_panel, &mut c_block[c_off..], nc_ld);
            } else {
                microkernel_edge(kc, mr, nr, a_panel, b_panel, &mut c_block[c_off..], nc_ld);
            }
        }
    }
}

/// Blocked, packed GEMM: `C ← α·A·B + β·C`.
///
/// # Panics
/// Panics on dimension mismatch or a zero block size in `cfg`.
pub fn gemm_blocked(
    alpha: f32,
    a: &Matrix,
    b: &Matrix,
    beta: f32,
    c: &mut Matrix,
    cfg: GemmConfig,
) {
    check_dims(a, b, c);
    cfg.validate();
    scale_c(beta, c);
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    if m == 0 || n == 0 || k == 0 || alpha == 0.0 {
        return;
    }

    let mut packed_a = Vec::new();
    let mut packed_b = Vec::new();
    let mut c_scratch = Vec::new();

    for jc in (0..n).step_by(cfg.nc) {
        let nc = cfg.nc.min(n - jc);
        for pc in (0..k).step_by(cfg.kc) {
            let kc = cfg.kc.min(k - pc);
            pack_b(b, pc, jc, kc, nc, &mut packed_b);
            for ic in (0..m).step_by(cfg.mc) {
                let mc = cfg.mc.min(m - ic);
                pack_a(a, ic, pc, mc, kc, &mut packed_a);
                c_scratch.clear();
                c_scratch.resize(mc.div_ceil(MR) * MR * nc, 0.0);
                macro_kernel(mc, nc, kc, &packed_a, &packed_b, &mut c_scratch, nc);
                for i in 0..mc {
                    for j in 0..nc {
                        c.add_assign(ic + i, jc + j, alpha * c_scratch[i * nc + j]);
                    }
                }
            }
        }
    }
}

/// Parallel blocked GEMM. Work is split over row blocks of `C`
/// (independent tasks, mirroring the GPU thread-block decomposition)
/// and executed on the global rayon pool.
///
/// # Panics
/// Panics on dimension mismatch or a zero block size in `cfg`.
pub fn gemm_parallel(
    alpha: f32,
    a: &Matrix,
    b: &Matrix,
    beta: f32,
    c: &mut Matrix,
    cfg: GemmConfig,
) {
    check_dims(a, b, c);
    cfg.validate();
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    scale_c(beta, c);
    if m == 0 || n == 0 || k == 0 || alpha == 0.0 {
        return;
    }

    // Each task owns a horizontal strip of C. Collect the strips first
    // so we can hand out disjoint &mut windows without unsafe.
    let strips: Vec<(usize, usize)> = (0..m)
        .step_by(cfg.mc)
        .map(|ic| (ic, cfg.mc.min(m - ic)))
        .collect();

    let results: Vec<(usize, usize, Vec<f32>)> = strips
        .par_iter()
        .map(|&(ic, mc)| {
            let mut packed_a = Vec::new();
            let mut packed_b = Vec::new();
            let mut strip = vec![0.0f32; mc * n];
            for jc in (0..n).step_by(cfg.nc) {
                let nc = cfg.nc.min(n - jc);
                for pc in (0..k).step_by(cfg.kc) {
                    let kc = cfg.kc.min(k - pc);
                    pack_b(b, pc, jc, kc, nc, &mut packed_b);
                    pack_a(a, ic, pc, mc, kc, &mut packed_a);
                    let mut c_scratch = vec![0.0f32; mc.div_ceil(MR) * MR * nc];
                    macro_kernel(mc, nc, kc, &packed_a, &packed_b, &mut c_scratch, nc);
                    for i in 0..mc {
                        for j in 0..nc {
                            strip[i * n + jc + j] += c_scratch[i * nc + j];
                        }
                    }
                }
            }
            (ic, mc, strip)
        })
        .collect();

    for (ic, mc, strip) in results {
        for i in 0..mc {
            for j in 0..n {
                c.add_assign(ic + i, j, alpha * strip[i * n + j]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Layout;

    fn rand_matrix(rows: usize, cols: usize, layout: Layout, seed: u64) -> Matrix {
        // Simple deterministic LCG; avoids pulling rand into unit tests.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        Matrix::from_fn(rows, cols, layout, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        })
    }

    fn assert_close(a: &Matrix, b: &Matrix, tol: f32) {
        let d = a.max_abs_diff(b);
        assert!(d <= tol, "max abs diff {d} > {tol}");
    }

    #[test]
    fn blocked_matches_naive_square() {
        let a = rand_matrix(64, 48, Layout::RowMajor, 1);
        let b = rand_matrix(48, 56, Layout::ColMajor, 2);
        let mut c0 = rand_matrix(64, 56, Layout::RowMajor, 3);
        let mut c1 = c0.clone();
        gemm_naive(1.0, &a, &b, 0.5, &mut c0);
        gemm_blocked(
            1.0,
            &a,
            &b,
            0.5,
            &mut c1,
            GemmConfig {
                mc: 16,
                kc: 8,
                nc: 24,
            },
        );
        assert_close(&c0, &c1, 1e-3);
    }

    #[test]
    fn blocked_handles_fringe_dims() {
        // Deliberately awkward sizes: nothing divides MR/NR or the blocks.
        let a = rand_matrix(37, 13, Layout::RowMajor, 7);
        let b = rand_matrix(13, 29, Layout::ColMajor, 8);
        let mut c0 = Matrix::zeros(37, 29, Layout::RowMajor);
        let mut c1 = c0.clone();
        gemm_naive(2.0, &a, &b, 0.0, &mut c0);
        gemm_blocked(
            2.0,
            &a,
            &b,
            0.0,
            &mut c1,
            GemmConfig {
                mc: 10,
                kc: 5,
                nc: 12,
            },
        );
        assert_close(&c0, &c1, 1e-3);
    }

    #[test]
    fn parallel_matches_naive() {
        let a = rand_matrix(100, 33, Layout::RowMajor, 11);
        let b = rand_matrix(33, 70, Layout::ColMajor, 12);
        let mut c0 = rand_matrix(100, 70, Layout::RowMajor, 13);
        let mut c1 = c0.clone();
        gemm_naive(1.5, &a, &b, -0.5, &mut c0);
        gemm_parallel(
            1.5,
            &a,
            &b,
            -0.5,
            &mut c1,
            GemmConfig {
                mc: 24,
                kc: 16,
                nc: 32,
            },
        );
        assert_close(&c0, &c1, 2e-3);
    }

    #[test]
    fn beta_zero_overwrites_garbage() {
        let a = rand_matrix(8, 8, Layout::RowMajor, 21);
        let b = rand_matrix(8, 8, Layout::ColMajor, 22);
        let mut c = Matrix::from_fn(8, 8, Layout::RowMajor, |_, _| f32::NAN);
        gemm_blocked(1.0, &a, &b, 0.0, &mut c, GemmConfig::default());
        assert!(
            c.as_slice().iter().all(|v| v.is_finite()),
            "beta=0 must clear NaNs"
        );
    }

    #[test]
    fn alpha_zero_only_scales() {
        let a = rand_matrix(4, 4, Layout::RowMajor, 31);
        let b = rand_matrix(4, 4, Layout::ColMajor, 32);
        let mut c = Matrix::from_fn(4, 4, Layout::RowMajor, |r, _| r as f32);
        gemm_parallel(0.0, &a, &b, 2.0, &mut c, GemmConfig::default());
        for r in 0..4 {
            for j in 0..4 {
                assert_eq!(c.get(r, j), 2.0 * r as f32);
            }
        }
    }

    #[test]
    fn works_with_row_major_b_too() {
        let a = rand_matrix(20, 10, Layout::ColMajor, 41);
        let b = rand_matrix(10, 15, Layout::RowMajor, 42);
        let mut c0 = Matrix::zeros(20, 15, Layout::ColMajor);
        let mut c1 = c0.clone();
        gemm_naive(1.0, &a, &b, 0.0, &mut c0);
        gemm_blocked(
            1.0,
            &a,
            &b,
            0.0,
            &mut c1,
            GemmConfig {
                mc: 7,
                kc: 3,
                nc: 4,
            },
        );
        assert_close(&c0, &c1, 1e-3);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn rejects_mismatched_inner_dims() {
        let a = Matrix::zeros(2, 3, Layout::RowMajor);
        let b = Matrix::zeros(4, 2, Layout::ColMajor);
        let mut c = Matrix::zeros(2, 2, Layout::RowMajor);
        gemm_naive(1.0, &a, &b, 0.0, &mut c);
    }

    #[test]
    fn empty_matrices_are_noops() {
        let a = Matrix::zeros(0, 5, Layout::RowMajor);
        let b = Matrix::zeros(5, 0, Layout::ColMajor);
        let mut c = Matrix::zeros(0, 0, Layout::RowMajor);
        gemm_blocked(1.0, &a, &b, 1.0, &mut c, GemmConfig::default());
        gemm_parallel(1.0, &a, &b, 1.0, &mut c, GemmConfig::default());
    }

    #[test]
    fn identity_times_matrix_is_matrix() {
        let n = 24;
        let eye = Matrix::from_fn(
            n,
            n,
            Layout::RowMajor,
            |r, c| if r == c { 1.0 } else { 0.0 },
        );
        let b = rand_matrix(n, n, Layout::ColMajor, 55);
        let mut c = Matrix::zeros(n, n, Layout::RowMajor);
        gemm_parallel(
            1.0,
            &eye,
            &b,
            0.0,
            &mut c,
            GemmConfig {
                mc: 8,
                kc: 8,
                nc: 8,
            },
        );
        assert_close(&c, &b.to_layout(Layout::RowMajor), 1e-5);
    }
}
