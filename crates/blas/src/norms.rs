//! Squared-norm helpers (`vecα`, `vecβ` of Algorithm 1).
//!
//! The expansion `‖α−β‖² = ‖α‖² + ‖β‖² − 2αᵀβ` needs the squared
//! Euclidean norm of every source row of `A` and every target column of
//! `B`. These are the host-side precomputations of Algorithm 1
//! lines 3–4.

use rayon::prelude::*;

use crate::matrix::Matrix;

/// `‖row_i‖²` for every row of `a` (source points, `A` is M×K).
#[must_use]
pub fn row_sq_norms(a: &Matrix) -> Vec<f32> {
    (0..a.rows())
        .into_par_iter()
        .map(|r| {
            let mut acc = 0.0f64;
            for c in 0..a.cols() {
                let v = a.get(r, c) as f64;
                acc += v * v;
            }
            acc as f32
        })
        .collect()
}

/// `‖col_j‖²` for every column of `b` (target points, `B` is K×N).
#[must_use]
pub fn col_sq_norms(b: &Matrix) -> Vec<f32> {
    (0..b.cols())
        .into_par_iter()
        .map(|c| {
            let mut acc = 0.0f64;
            for r in 0..b.rows() {
                let v = b.get(r, c) as f64;
                acc += v * v;
            }
            acc as f32
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Layout;

    #[test]
    fn row_norms_match_hand_values() {
        let a = Matrix::from_vec(2, 2, Layout::RowMajor, vec![3.0, 4.0, 1.0, 1.0]);
        assert_eq!(row_sq_norms(&a), vec![25.0, 2.0]);
    }

    #[test]
    fn col_norms_match_hand_values() {
        let b = Matrix::from_vec(2, 2, Layout::ColMajor, vec![3.0, 4.0, 0.0, 2.0]);
        assert_eq!(col_sq_norms(&b), vec![25.0, 4.0]);
    }

    #[test]
    fn norms_are_layout_invariant() {
        let a = Matrix::from_fn(9, 5, Layout::RowMajor, |r, c| (r as f32 - c as f32) * 0.3);
        let a2 = a.to_layout(Layout::ColMajor);
        assert_eq!(row_sq_norms(&a), row_sq_norms(&a2));
        assert_eq!(col_sq_norms(&a), col_sq_norms(&a2));
    }

    #[test]
    fn zero_matrix_gives_zero_norms() {
        let a = Matrix::zeros(4, 3, Layout::RowMajor);
        assert!(row_sq_norms(&a).iter().all(|&v| v == 0.0));
        assert!(col_sq_norms(&a).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn distance_identity_holds() {
        // ‖α−β‖² == ‖α‖² + ‖β‖² − 2αᵀβ for a concrete pair.
        let alpha = [1.0f32, -2.0, 0.5];
        let beta = [0.25f32, 3.0, -1.0];
        let direct: f32 = alpha
            .iter()
            .zip(beta.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        let na: f32 = alpha.iter().map(|v| v * v).sum();
        let nb: f32 = beta.iter().map(|v| v * v).sum();
        let dot: f32 = alpha.iter().zip(beta.iter()).map(|(a, b)| a * b).sum();
        assert!((direct - (na + nb - 2.0 * dot)).abs() < 1e-5);
    }
}
