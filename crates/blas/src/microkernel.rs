//! Register-blocked GEMM microkernel.
//!
//! The CPU analogue of the GPU thread's 8×8 `microtileC`: an
//! `MR × NR` accumulator tile updated with a sequence of rank-1 updates
//! from packed A- and B-panels. `MR = NR = 8` mirrors the paper's
//! per-thread microtile, keeps the accumulator in registers, and lets
//! LLVM auto-vectorise the inner loop.

/// Rows of the microtile (per-thread tile height in the paper).
pub const MR: usize = 8;
/// Columns of the microtile (per-thread tile width in the paper).
pub const NR: usize = 8;

/// Computes `c[MR×NR] += a_panel · b_panel` where
/// `a_panel` is `kc` MR-element column slivers (packed contiguously)
/// and `b_panel` is `kc` NR-element row slivers.
///
/// `c` is row-major with leading dimension `ldc`.
///
/// # Panics
/// Debug-asserts panel lengths.
#[inline]
pub fn microkernel_8x8(kc: usize, a_panel: &[f32], b_panel: &[f32], c: &mut [f32], ldc: usize) {
    debug_assert!(a_panel.len() >= kc * MR);
    debug_assert!(b_panel.len() >= kc * NR);
    debug_assert!(c.len() >= (MR - 1) * ldc + NR);

    // Accumulate in a local array: the compiler keeps this in vector
    // registers, exactly as the GPU thread keeps microtileC in its RF.
    let mut acc = [[0.0f32; NR]; MR];
    for p in 0..kc {
        let a = &a_panel[p * MR..p * MR + MR];
        let b = &b_panel[p * NR..p * NR + NR];
        for (i, ai) in a.iter().enumerate() {
            for (j, bj) in b.iter().enumerate() {
                acc[i][j] += ai * bj;
            }
        }
    }
    for (i, row) in acc.iter().enumerate() {
        let dst = &mut c[i * ldc..i * ldc + NR];
        for (d, v) in dst.iter_mut().zip(row.iter()) {
            *d += v;
        }
    }
}

/// Edge-case microkernel for partial tiles (`mr ≤ MR`, `nr ≤ NR`).
///
/// Slower than [`microkernel_8x8`]; only used on matrix fringes.
#[inline]
pub fn microkernel_edge(
    kc: usize,
    mr: usize,
    nr: usize,
    a_panel: &[f32],
    b_panel: &[f32],
    c: &mut [f32],
    ldc: usize,
) {
    debug_assert!(mr <= MR && nr <= NR);
    let mut acc = [[0.0f32; NR]; MR];
    for p in 0..kc {
        let a = &a_panel[p * MR..p * MR + MR];
        let b = &b_panel[p * NR..p * NR + NR];
        for i in 0..mr {
            for j in 0..nr {
                acc[i][j] += a[i] * b[j];
            }
        }
    }
    for i in 0..mr {
        for j in 0..nr {
            c[i * ldc + j] += acc[i][j];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(kc: usize, mr: usize, nr: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0f32; mr * nr];
        for p in 0..kc {
            for i in 0..mr {
                for j in 0..nr {
                    c[i * nr + j] += a[p * MR + i] * b[p * NR + j];
                }
            }
        }
        c
    }

    #[test]
    fn full_tile_matches_reference() {
        let kc = 17;
        let a: Vec<f32> = (0..kc * MR).map(|i| (i % 13) as f32 * 0.5 - 2.0).collect();
        let b: Vec<f32> = (0..kc * NR).map(|i| (i % 7) as f32 * 0.25 - 1.0).collect();
        let mut c = vec![0.0f32; MR * NR];
        microkernel_8x8(kc, &a, &b, &mut c, NR);
        let want = reference(kc, MR, NR, &a, &b);
        for (x, y) in c.iter().zip(want.iter()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn accumulates_into_existing_c() {
        let kc = 3;
        let a = vec![1.0f32; kc * MR];
        let b = vec![1.0f32; kc * NR];
        let mut c = vec![10.0f32; MR * NR];
        microkernel_8x8(kc, &a, &b, &mut c, NR);
        assert!(c.iter().all(|&v| (v - 13.0).abs() < 1e-6));
    }

    #[test]
    fn respects_leading_dimension() {
        let kc = 2;
        let a = vec![1.0f32; kc * MR];
        let b = vec![2.0f32; kc * NR];
        let ldc = NR + 3;
        let mut c = vec![0.0f32; MR * ldc];
        microkernel_8x8(kc, &a, &b, &mut c, ldc);
        for i in 0..MR {
            for j in 0..ldc {
                let want = if j < NR { 4.0 } else { 0.0 };
                assert_eq!(c[i * ldc + j], want);
            }
        }
    }

    #[test]
    fn edge_kernel_matches_reference_on_fringe() {
        let (kc, mr, nr) = (5, 3, 6);
        let a: Vec<f32> = (0..kc * MR).map(|i| i as f32 * 0.1).collect();
        let b: Vec<f32> = (0..kc * NR).map(|i| i as f32 * 0.2 - 1.5).collect();
        let mut c = vec![0.0f32; mr * nr];
        microkernel_edge(kc, mr, nr, &a, &b, &mut c, nr);
        let want = reference(kc, mr, nr, &a, &b);
        for (x, y) in c.iter().zip(want.iter()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn zero_kc_is_identity() {
        let mut c = vec![7.0f32; MR * NR];
        microkernel_8x8(0, &[], &[], &mut c, NR);
        assert!(c.iter().all(|&v| v == 7.0));
    }
}
