//! Per-event energy constants.
//!
//! All values are for a 28nm-class GPU (GM204 is TSMC 28nm) and are
//! taken from public sources, not fitted to the paper:
//!
//! * **FLOP energy** — Horowitz (ISSCC'14) puts a 45nm FP32 FMA at
//!   ~1.5 pJ for the arithmetic alone; at GPU level each scalar FLOP
//!   drags register-file reads, operand routing and pipeline control,
//!   landing at ~20–30 pJ/FLOP system-side (a GTX970 at 145 W TDP and
//!   ~3.9 TFLOP/s peak is 37 pJ/FLOP for the *whole card*). We use
//!   25 pJ per scalar FLOP for the compute slice.
//! * **Instruction overhead** — McPAT-class fetch/decode/schedule
//!   energy, ~8 pJ per thread-level instruction.
//! * **Shared memory** — CACTI 6.5 for a 96KB, 32-bank SRAM: ~40 pJ
//!   per 128-byte transaction (row across all banks).
//! * **L2** — CACTI for a 1.75MB 16-way array: ~100 pJ per 32-byte
//!   sector access.
//! * **DRAM** — GDDR5 core + I/O ≈ 14 pJ/bit (O'Connor, MemSys'17),
//!   i.e. ~3.5 nJ per 32-byte sector transaction.

use serde::{Deserialize, Serialize};

/// Energy cost of each counted event, in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyParams {
    /// Per scalar single-precision FLOP (FPU + RF + routing).
    pub flop_pj: f64,
    /// Per thread-level instruction (fetch/decode/schedule).
    pub inst_pj: f64,
    /// Per shared-memory transaction (full 32-bank row).
    pub smem_transaction_pj: f64,
    /// Per L1 32-byte sector access (only non-zero traffic when the
    /// device caches global loads in L1, §II-C).
    pub l1_sector_pj: f64,
    /// Per L2 32-byte sector access.
    pub l2_sector_pj: f64,
    /// Per DRAM 32-byte sector transaction (read or write).
    pub dram_sector_pj: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self {
            flop_pj: 25.0,
            inst_pj: 8.0,
            smem_transaction_pj: 40.0,
            l1_sector_pj: 25.0,
            l2_sector_pj: 100.0,
            dram_sector_pj: 3500.0,
        }
    }
}

impl EnergyParams {
    /// DRAM energy in pJ per byte (for documentation/sanity checks).
    #[must_use]
    pub fn dram_pj_per_byte(&self) -> f64 {
        self.dram_sector_pj / 32.0
    }

    /// Validates physical plausibility (positive, DRAM ≫ L2 ≫ SMEM per
    /// byte).
    ///
    /// # Panics
    /// Panics if the hierarchy ordering is violated.
    pub fn validate(&self) {
        assert!(
            self.flop_pj > 0.0 && self.inst_pj > 0.0,
            "non-positive compute energy"
        );
        assert!(
            self.dram_sector_pj > self.l2_sector_pj,
            "DRAM access must cost more than L2"
        );
        assert!(
            self.l2_sector_pj > self.smem_transaction_pj / 4.0,
            "L2 per byte must cost more than shared memory per byte"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        EnergyParams::default().validate();
    }

    #[test]
    fn dram_is_gddr5_class() {
        // 14 pJ/bit ≈ 112 pJ/B; allow the 50–200 pJ/B band.
        let p = EnergyParams::default().dram_pj_per_byte();
        assert!((50.0..200.0).contains(&p), "{p} pJ/B");
    }

    #[test]
    #[should_panic(expected = "DRAM access must cost more")]
    fn validate_rejects_inverted_hierarchy() {
        EnergyParams {
            dram_sector_pj: 1.0,
            ..Default::default()
        }
        .validate();
    }
}
