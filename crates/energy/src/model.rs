//! Counters × per-event energies → the four-way breakdown.

use ks_gpu_sim::profiler::{KernelProfile, PipelineProfile};
use serde::{Deserialize, Serialize};

use crate::params::EnergyParams;

/// Energy of one kernel or pipeline, split the way the paper plots it
/// (Fig 1, Fig 9): compute, shared memory, L2, DRAM. Joules.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// FPU + instruction pipeline energy.
    pub compute_j: f64,
    /// Shared-memory array energy.
    pub smem_j: f64,
    /// L2 array energy.
    pub l2_j: f64,
    /// DRAM core + interface energy.
    pub dram_j: f64,
}

impl EnergyBreakdown {
    /// Total energy in joules.
    #[must_use]
    pub fn total_j(&self) -> f64 {
        self.compute_j + self.smem_j + self.l2_j + self.dram_j
    }

    /// DRAM share of the total, in [0, 1] (the quantity of Fig 1).
    #[must_use]
    pub fn dram_share(&self) -> f64 {
        let t = self.total_j();
        if t > 0.0 {
            self.dram_j / t
        } else {
            0.0
        }
    }

    /// Compute share of the total, in [0, 1].
    #[must_use]
    pub fn compute_share(&self) -> f64 {
        let t = self.total_j();
        if t > 0.0 {
            self.compute_j / t
        } else {
            0.0
        }
    }

    /// Element-wise accumulation.
    pub fn merge(&mut self, o: &EnergyBreakdown) {
        self.compute_j += o.compute_j;
        self.smem_j += o.smem_j;
        self.l2_j += o.l2_j;
        self.dram_j += o.dram_j;
    }

    /// Total-energy saving of `self` relative to `baseline`
    /// (Table III: `1 − self/baseline`).
    #[must_use]
    pub fn saving_vs(&self, baseline: &EnergyBreakdown) -> f64 {
        let b = baseline.total_j();
        if b > 0.0 {
            1.0 - self.total_j() / b
        } else {
            0.0
        }
    }
}

/// Energy of a single kernel launch.
#[must_use]
pub fn kernel_energy(params: &EnergyParams, p: &KernelProfile) -> EnergyBreakdown {
    let c = &p.counters;
    let pj = 1e-12;
    EnergyBreakdown {
        compute_j: (c.flops as f64 * params.flop_pj + c.thread_insts as f64 * params.inst_pj) * pj,
        smem_j: (c.smem.load_transactions + c.smem.store_transactions) as f64
            * params.smem_transaction_pj
            * pj,
        // Atomics do a read-modify-write in L2 (two array accesses);
        // L1 lookups (when the device caches global loads there) are
        // charged to the same on-chip-cache bucket.
        l2_j: (p.mem.l2_transactions() + 2 * c.atomic_sectors) as f64 * params.l2_sector_pj * pj
            + c.l1_read_sectors as f64 * params.l1_sector_pj * pj,
        dram_j: p.mem.dram_transactions() as f64 * params.dram_sector_pj * pj,
    }
}

/// Energy of a whole pipeline (sum over kernels).
#[must_use]
pub fn pipeline_energy(params: &EnergyParams, p: &PipelineProfile) -> EnergyBreakdown {
    let mut e = EnergyBreakdown::default();
    for k in &p.kernels {
        e.merge(&kernel_energy(params, k));
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use ks_gpu_kernels::{GpuKernelSummation, GpuVariant};
    use ks_gpu_sim::kernel::LaunchError;
    use ks_gpu_sim::GpuDevice;

    fn energies(m: usize, k: usize) -> Result<(EnergyBreakdown, EnergyBreakdown), LaunchError> {
        let ks = GpuKernelSummation::new(m, 1024, k, 1.0);
        let params = EnergyParams::default();
        let mut d1 = GpuDevice::gtx970();
        let fused = pipeline_energy(&params, &ks.profile(&mut d1, GpuVariant::Fused)?);
        let mut d2 = GpuDevice::gtx970();
        let unfused = pipeline_energy(&params, &ks.profile(&mut d2, GpuVariant::CublasUnfused)?);
        Ok((fused, unfused))
    }

    #[test]
    fn breakdown_merge_and_total() {
        let mut a = EnergyBreakdown {
            compute_j: 1.0,
            smem_j: 0.5,
            l2_j: 0.25,
            dram_j: 0.25,
        };
        let b = a;
        a.merge(&b);
        assert!((a.total_j() - 4.0).abs() < 1e-12);
        assert!((a.dram_share() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn fused_saves_over_80_percent_of_dram_energy() -> Result<(), LaunchError> {
        // §V-C: "the Fused approach saves more than 80% [of DRAM
        // energy]" in all test configurations.
        for k in [32, 64, 128, 256] {
            let (fused, unfused) = energies(4096, k)?;
            let saving = 1.0 - fused.dram_j / unfused.dram_j;
            assert!(saving > 0.80, "K={k}: DRAM energy saving {saving}");
        }
        Ok(())
    }

    #[test]
    fn total_savings_shrink_with_k() -> Result<(), LaunchError> {
        // Table III: ~31% at K=32 falling to ~4–9% at K=256.
        let (f32_, u32_) = energies(4096, 32)?;
        let (f256, u256) = energies(4096, 256)?;
        let s32 = f32_.saving_vs(&u32_);
        let s256 = f256.saving_vs(&u256);
        assert!(s32 > s256, "savings must fall with K: {s32} vs {s256}");
        assert!((0.15..0.45).contains(&s32), "K=32 saving {s32}");
        assert!((0.0..0.15).contains(&s256), "K=256 saving {s256}");
        Ok(())
    }

    #[test]
    fn dram_share_of_unfused_is_10_to_35_percent() -> Result<(), LaunchError> {
        // Fig 1: "around 10% to 30% of total energy is spent on DRAM".
        for k in [32, 64, 128, 256] {
            let (_, unfused) = energies(4096, k)?;
            let share = unfused.dram_share();
            assert!((0.03..0.40).contains(&share), "K={k}: DRAM share {share}");
        }
        Ok(())
    }

    #[test]
    fn compute_dominates_at_high_k() -> Result<(), LaunchError> {
        // §V-C: at K=256 "more than 80% of energy is spent on floating
        // point computing operations".
        let (fused, _) = energies(4096, 256)?;
        assert!(
            fused.compute_share() > 0.7,
            "compute share {}",
            fused.compute_share()
        );
        Ok(())
    }

    #[test]
    fn saving_vs_handles_zero_baseline() {
        let z = EnergyBreakdown::default();
        assert_eq!(z.saving_vs(&z), 0.0);
        assert_eq!(z.dram_share(), 0.0);
    }
}
