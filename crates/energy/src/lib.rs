//! # ks-energy — CACTI/McPAT-style GPU energy model
//!
//! The paper's energy methodology (§IV): "Energy model of the GPU
//! memory is built based on CACTI and McPAT, and the statistics are
//! collected from the counter value reported by nvprof." We do the
//! same: per-event energy constants multiplied by the simulator's
//! counters, reported as the paper's four-way breakdown
//! (Fig 1 / Fig 9): **Compute**, **Shared memory**, **L2**, **DRAM**.
//!
//! Per-event constants live in [`EnergyParams`]; each is documented
//! with its provenance (public 28nm-class CACTI/McPAT and
//! GDDR5-datasheet numbers). None is fitted to the paper's outputs.

#![warn(missing_docs)]

pub mod model;
pub mod params;

pub use model::{kernel_energy, pipeline_energy, EnergyBreakdown};
pub use params::EnergyParams;
