//! Property suite for the autotuner (ISSUE 8 satellites):
//!
//! * cost-model predictions are finite and strictly positive over the
//!   entire legal geometry lattice, for arbitrary shapes;
//! * the paper's default geometry is never mispredicted outside the
//!   fit's advertised error band on the golden sweep;
//! * tuner output is deterministic for a fixed seed.
//!
//! One full-lattice tune over compact shapes is computed once and
//! shared — the sweep itself (static gate, differential admission,
//! exact-counter profiling) is the expensive part; every property
//! reads the same evidence.

use std::sync::OnceLock;

use ks_gpu_kernels::TileGeometry;
use ks_gpu_sim::config::DeviceConfig;
use ks_tune::{fit, tune, ProblemShape, TuneConfig, TuneOutcome};
use proptest::prelude::*;

fn golden_sweep() -> &'static (TuneConfig, TuneOutcome) {
    static SWEEP: OnceLock<(TuneConfig, TuneOutcome)> = OnceLock::new();
    SWEEP.get_or_init(|| {
        let mut cfg = TuneConfig::new(DeviceConfig::gtx970());
        // Compact shapes keep the debug-build sweep quick; the CI
        // tune-bench job runs the real smoke grid in release.
        cfg.train_shapes = vec![
            ProblemShape::new(256, 256, 16),
            ProblemShape::new(512, 256, 32),
            ProblemShape::new(256, 512, 16),
        ];
        cfg.pick_shapes = vec![
            ProblemShape::new(256, 256, 16),
            ProblemShape::new(384, 256, 96),
        ];
        let out = tune(&cfg);
        (cfg, out)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn predictions_are_finite_and_positive_over_the_lattice(
        m in 1usize..20_000,
        n in 1usize..4_096,
        k in 1usize..2_048,
    ) {
        let (cfg, out) = golden_sweep();
        let shape = ProblemShape::new(m, n, k);
        for geo in TileGeometry::lattice(&cfg.device) {
            let t = out.model.predict_time_s(&geo, &shape, &cfg.device);
            let e = out.model.predict_energy_j(&geo, &shape, &cfg.device);
            prop_assert!(t.is_finite() && t > 0.0, "{geo} at {shape}: time {t}");
            prop_assert!(e.is_finite() && e > 0.0, "{geo} at {shape}: energy {e}");
        }
    }

    #[test]
    fn fit_is_deterministic_for_any_seed(seed in 0u64..10_000) {
        let (cfg, out) = golden_sweep();
        let (m1, r1) = fit(&out.samples, &cfg.device, seed, cfg.holdout_frac);
        let (m2, r2) = fit(&out.samples, &cfg.device, seed, cfg.holdout_frac);
        prop_assert_eq!(m1, m2);
        prop_assert_eq!(r1, r2);
    }
}

#[test]
fn default_geometry_is_never_mispredicted_outside_the_advertised_band() {
    let (cfg, out) = golden_sweep();
    let band = out.fit.advertised_rel_err();
    assert!(band > 0.0 && band < 0.5, "implausible error band {band}");
    let default = TileGeometry::paper_default();
    let mut checked = 0;
    for s in out.samples.iter().filter(|s| s.geometry == default) {
        let pred = out.model.predict_time_s(&default, &s.shape(), &cfg.device);
        let rel = (pred / s.time_s - 1.0).abs();
        assert!(
            rel <= band,
            "default geometry mispredicted at {}: rel err {rel:.4} > band {band:.4}",
            s.shape()
        );
        checked += 1;
    }
    assert_eq!(
        checked,
        cfg.train_shapes.len(),
        "the default geometry must appear in the golden sweep"
    );
}

#[test]
fn tune_outcome_is_deterministic_for_a_fixed_seed() {
    let (cfg, out) = golden_sweep();
    let again = tune(cfg);
    assert_eq!(
        *out, again,
        "same config + seed must reproduce byte-identically"
    );
}

#[test]
fn picks_never_predict_worse_than_the_paper_default() {
    let (cfg, out) = golden_sweep();
    let default = TileGeometry::paper_default();
    assert!(out.admitted.contains(&default));
    for p in &out.picks {
        let shape = ProblemShape::new(p.m, p.n, p.k);
        let t_default = out.model.predict_time_s(&default, &shape, &cfg.device);
        assert!(
            p.choice.pred_time_s <= t_default * (1.0 + 1e-12),
            "{shape}: pick {} predicted {} vs default {}",
            p.choice.geometry,
            p.choice.pred_time_s,
            t_default
        );
    }
}

#[test]
fn rejection_reasons_are_recorded_not_silently_dropped() {
    // A fault-injected device must reject geometries at the
    // differential gate and say why.
    let mut dev = DeviceConfig::gtx970();
    dev.fault = Some(ks_gpu_sim::fault::FaultSpec::parse("seed=3,reg=64").expect("valid spec"));
    let mut cfg = TuneConfig::new(dev);
    cfg.candidates = Some(vec![TileGeometry::paper_default()]);
    cfg.train_shapes = vec![ProblemShape::new(256, 256, 16)];
    let err = std::panic::catch_unwind(|| tune(&cfg))
        .expect_err("an all-rejected lattice must panic loudly");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(ToString::to_string))
        .unwrap_or_default();
    assert!(
        msg.contains("rejected"),
        "panic must name the rejection: {msg}"
    );
}
