//! The learned cost model: ridge regression of log-time and
//! log-energy on the closed-form geometry × shape features.
//!
//! Working in log space does two jobs at once. It makes the
//! multiplicative structure of the timing model (terms × tail scale)
//! linear, and it makes every prediction `exp(x·β)` **finite and
//! strictly positive by construction** — the property the proptest
//! suite pins over the whole lattice. The normal equations are tiny
//! (11×11), solved by Gaussian elimination with partial pivoting; the
//! ridge term keeps them well-conditioned despite collinear features.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::features::{features, ProblemShape, N_FEATURES};
use ks_gpu_kernels::TileGeometry;
use ks_gpu_sim::config::DeviceConfig;

/// One profiled observation: a geometry run at a shape, with its
/// measured simulated time and modelled energy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// The geometry profiled.
    pub geometry: TileGeometry,
    /// The raw (unpadded) shape it was profiled at.
    pub m: usize,
    /// Target count.
    pub n: usize,
    /// Point dimension.
    pub k: usize,
    /// Simulated kernel time in seconds (exact counters through the
    /// analytic timing model).
    pub time_s: f64,
    /// Modelled kernel energy in joules.
    pub energy_j: f64,
}

impl Sample {
    /// The shape this sample was measured at.
    #[must_use]
    pub fn shape(&self) -> ProblemShape {
        ProblemShape::new(self.m, self.n, self.k)
    }
}

/// Ridge strength. Small enough not to bias the fit, large enough to
/// keep collinear features (the two DRAM brackets agree when
/// `blocks = 1`) from blowing up the solve.
const RIDGE_LAMBDA: f64 = 1e-6;

/// Fitted coefficients for one target (log-time or log-energy).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearHead {
    /// Regression coefficients, one per feature.
    pub beta: Vec<f64>,
}

impl LinearHead {
    fn predict_ln(&self, x: &[f64; N_FEATURES]) -> f64 {
        self.beta.iter().zip(x.iter()).map(|(b, f)| b * f).sum()
    }
}

/// The two-headed cost model: time and energy as functions of the
/// same feature vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Log-time head.
    pub time: LinearHead,
    /// Log-energy head.
    pub energy: LinearHead,
}

impl CostModel {
    /// Predicted kernel time in seconds. Finite and positive for any
    /// feasible geometry and positive shape.
    #[must_use]
    pub fn predict_time_s(
        &self,
        geo: &TileGeometry,
        shape: &ProblemShape,
        dev: &DeviceConfig,
    ) -> f64 {
        self.time.predict_ln(&features(geo, shape, dev)).exp()
    }

    /// Predicted kernel energy in joules. Finite and positive.
    #[must_use]
    pub fn predict_energy_j(
        &self,
        geo: &TileGeometry,
        shape: &ProblemShape,
        dev: &DeviceConfig,
    ) -> f64 {
        self.energy.predict_ln(&features(geo, shape, dev)).exp()
    }
}

/// Fit quality on the held-out split.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FitReport {
    /// Training observations.
    pub train_count: usize,
    /// Held-out observations.
    pub holdout_count: usize,
    /// Mean |pred/actual − 1| of the time head on the holdout.
    pub holdout_mape_time: f64,
    /// Worst |pred/actual − 1| of the time head on the holdout.
    pub holdout_max_rel_time: f64,
    /// Mean |pred/actual − 1| of the energy head on the holdout.
    pub holdout_mape_energy: f64,
    /// Worst |pred/actual − 1| of the energy head on the holdout.
    pub holdout_max_rel_energy: f64,
}

impl FitReport {
    /// The relative time-prediction error the tuner advertises: the
    /// worst holdout error widened by 1.5× plus two points of slack
    /// for interpolation between holdout points. Every consumer that
    /// gates on "prediction within reported error" — the property
    /// suite, the CI `tune-bench` job — uses this band, so the claim
    /// stays self-consistent.
    #[must_use]
    pub fn advertised_rel_err(&self) -> f64 {
        self.holdout_max_rel_time.mul_add(1.5, 0.02)
    }
}

/// Solves `(XᵀX + λI) β = Xᵀy` by Gaussian elimination with partial
/// pivoting. `N_FEATURES` is small, so this is exact enough and has
/// no dependencies.
fn solve_normal_equations(xs: &[[f64; N_FEATURES]], ys: &[f64]) -> Vec<f64> {
    let nf = N_FEATURES;
    let mut ata = vec![[0.0f64; N_FEATURES]; nf];
    let mut aty = vec![0.0f64; nf];
    for (x, &y) in xs.iter().zip(ys.iter()) {
        for i in 0..nf {
            aty[i] += x[i] * y;
            for j in 0..nf {
                ata[i][j] += x[i] * x[j];
            }
        }
    }
    for (i, row) in ata.iter_mut().enumerate() {
        row[i] += RIDGE_LAMBDA;
    }
    // Augmented elimination.
    for col in 0..nf {
        let pivot = (col..nf)
            .max_by(|&a, &b| ata[a][col].abs().total_cmp(&ata[b][col].abs()))
            .expect("non-empty range");
        ata.swap(col, pivot);
        aty.swap(col, pivot);
        let diag = ata[col][col];
        assert!(
            diag.abs() > 1e-30,
            "singular normal equations despite ridge"
        );
        for row in col + 1..nf {
            let f = ata[row][col] / diag;
            if f == 0.0 {
                continue;
            }
            let (head, tail) = ata.split_at_mut(row);
            let pivot = &head[col];
            for (j, v) in tail[0].iter_mut().enumerate().skip(col) {
                *v -= f * pivot[j];
            }
            aty[row] -= f * aty[col];
        }
    }
    let mut beta = vec![0.0f64; nf];
    for i in (0..nf).rev() {
        let mut acc = aty[i];
        for j in i + 1..nf {
            acc -= ata[i][j] * beta[j];
        }
        beta[i] = acc / ata[i][i];
    }
    assert!(
        beta.iter().all(|b| b.is_finite()),
        "non-finite regression coefficients"
    );
    beta
}

/// Deterministic Fisher–Yates shuffle of `0..len` driven by a seeded
/// ChaCha stream.
fn shuffled_indices(len: usize, seed: u64) -> Vec<usize> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..len).collect();
    for i in (1..len).rev() {
        let j = rng.gen_range(0..i + 1);
        idx.swap(i, j);
    }
    idx
}

fn rel_errors(head: &LinearHead, xs: &[[f64; N_FEATURES]], actual: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mut sum = 0.0;
    let mut worst = 0.0f64;
    for (x, &a) in xs.iter().zip(actual.iter()) {
        let pred = head.predict_ln(x).exp();
        let rel = (pred / a - 1.0).abs();
        sum += rel;
        worst = worst.max(rel);
    }
    (sum / xs.len() as f64, worst)
}

/// Fits the cost model on `samples` with a deterministic
/// `holdout_frac` split (seeded shuffle) and reports holdout error.
///
/// # Panics
/// Panics when `samples` is empty, any measurement is non-positive,
/// or `holdout_frac` is outside `[0, 0.9]`.
#[must_use]
pub fn fit(
    samples: &[Sample],
    dev: &DeviceConfig,
    seed: u64,
    holdout_frac: f64,
) -> (CostModel, FitReport) {
    assert!(
        !samples.is_empty(),
        "cannot fit a cost model on zero samples"
    );
    assert!(
        (0.0..=0.9).contains(&holdout_frac),
        "holdout fraction must be in [0, 0.9]"
    );
    for s in samples {
        assert!(
            s.time_s > 0.0 && s.energy_j > 0.0,
            "non-positive measurement for {} at {}x{}x{}",
            s.geometry,
            s.m,
            s.n,
            s.k
        );
    }
    let xs: Vec<[f64; N_FEATURES]> = samples
        .iter()
        .map(|s| features(&s.geometry, &s.shape(), dev))
        .collect();
    let ln_t: Vec<f64> = samples.iter().map(|s| s.time_s.ln()).collect();
    let ln_e: Vec<f64> = samples.iter().map(|s| s.energy_j.ln()).collect();

    let order = shuffled_indices(samples.len(), seed);
    let n_holdout = ((samples.len() as f64) * holdout_frac).round() as usize;
    // Never hold out so much that training is degenerate.
    let n_holdout = n_holdout.min(samples.len().saturating_sub(N_FEATURES));
    let (hold_idx, train_idx) = order.split_at(n_holdout);

    let pick = |idx: &[usize]| -> (Vec<[f64; N_FEATURES]>, Vec<f64>, Vec<f64>) {
        (
            idx.iter().map(|&i| xs[i]).collect(),
            idx.iter().map(|&i| ln_t[i]).collect(),
            idx.iter().map(|&i| ln_e[i]).collect(),
        )
    };
    let (train_x, train_t, train_e) = pick(train_idx);
    let (hold_x, _, _) = pick(hold_idx);
    let hold_t: Vec<f64> = hold_idx.iter().map(|&i| samples[i].time_s).collect();
    let hold_e: Vec<f64> = hold_idx.iter().map(|&i| samples[i].energy_j).collect();

    let model = CostModel {
        time: LinearHead {
            beta: solve_normal_equations(&train_x, &train_t),
        },
        energy: LinearHead {
            beta: solve_normal_equations(&train_x, &train_e),
        },
    };
    let (mape_t, max_t) = rel_errors(&model.time, &hold_x, &hold_t);
    let (mape_e, max_e) = rel_errors(&model.energy, &hold_x, &hold_e);
    let report = FitReport {
        train_count: train_idx.len(),
        holdout_count: hold_idx.len(),
        holdout_mape_time: mape_t,
        holdout_max_rel_time: max_t,
        holdout_mape_energy: mape_e,
        holdout_max_rel_energy: max_e,
    };
    (model, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_samples() -> Vec<Sample> {
        // A plausibly-shaped synthetic law: time grows with work,
        // shrinks with block size; energy proportional to work.
        let dev = DeviceConfig::gtx970();
        let mut out = Vec::new();
        for geo in TileGeometry::lattice(&dev).into_iter().step_by(3) {
            for (m, n, k) in [(1024, 1024, 32), (4096, 1024, 64), (512, 512, 128)] {
                let shape = ProblemShape::new(m, n, k);
                let x = features(&geo, &shape, &dev);
                // Ground truth exactly in the model family.
                let t = (x[1] * 0.9 + x[7] * 1.0 - 20.0).exp();
                let e = (x[1] * 1.0 - 18.0).exp();
                out.push(Sample {
                    geometry: geo,
                    m,
                    n,
                    k,
                    time_s: t,
                    energy_j: e,
                });
            }
        }
        out
    }

    #[test]
    fn recovers_a_law_inside_the_model_family() {
        let dev = DeviceConfig::gtx970();
        let samples = synthetic_samples();
        let (_, report) = fit(&samples, &dev, 7, 0.2);
        assert!(report.holdout_count > 0);
        assert!(
            report.holdout_mape_time < 1e-6,
            "in-family law must fit exactly: {report:?}"
        );
        assert!(report.holdout_mape_energy < 1e-6);
    }

    #[test]
    fn fit_is_deterministic_in_the_seed() {
        let dev = DeviceConfig::gtx970();
        let samples = synthetic_samples();
        let (m1, r1) = fit(&samples, &dev, 42, 0.25);
        let (m2, r2) = fit(&samples, &dev, 42, 0.25);
        assert_eq!(m1, m2);
        assert_eq!(r1, r2);
        let (m3, _) = fit(&samples, &dev, 43, 0.25);
        assert_ne!(m1, m3, "a different seed must change the split");
    }

    #[test]
    fn predictions_are_finite_and_positive() {
        let dev = DeviceConfig::gtx970();
        let samples = synthetic_samples();
        let (model, _) = fit(&samples, &dev, 1, 0.2);
        for geo in TileGeometry::lattice(&dev) {
            let shape = ProblemShape::new(2048, 1024, 96);
            let t = model.predict_time_s(&geo, &shape, &dev);
            let e = model.predict_energy_j(&geo, &shape, &dev);
            assert!(t.is_finite() && t > 0.0, "{geo}: time {t}");
            assert!(e.is_finite() && e > 0.0, "{geo}: energy {e}");
        }
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn empty_sample_set_is_rejected() {
        let _ = fit(&[], &DeviceConfig::gtx970(), 0, 0.2);
    }
}
