//! The sweep driver: lattice → static prune → differential admission
//! → profiling → cost-model fit → per-shape picks.
//!
//! Every stage is deterministic for a fixed [`TuneConfig`]: the
//! lattice is enumerated in a fixed order, the train/holdout split is
//! seeded, the simulator's counters are exact, and picks break ties
//! by the lattice order. Running the tuner twice with the same config
//! yields byte-identical [`TuneOutcome`]s.
//!
//! Picks are made **from the model alone** — no candidate is replayed
//! at pick time. The profiling replays happen once, on the training
//! shapes, to fit the model; after that, any shape (trained or not)
//! gets its geometry from `exp(x·β)` comparisons. The CI `tune-bench`
//! job independently replays the picks to prove they beat or match
//! the paper default.

use serde::{Deserialize, Serialize};

use ks_analyze::static_::analyze_spec;
use ks_energy::{kernel_energy, EnergyParams};
use ks_gpu_kernels::aux_kernels::Bandwidth;
use ks_gpu_kernels::fused::FusedKernelSummation;
use ks_gpu_kernels::gemm_engine::{GemmOperands, GemmShape};
use ks_gpu_kernels::TileGeometry;
use ks_gpu_sim::config::DeviceConfig;
use ks_gpu_sim::kernel::Kernel;
use ks_gpu_sim::GpuDevice;

use crate::features::ProblemShape;
use crate::model::{fit, CostModel, FitReport, Sample};

/// Which gate refused a candidate geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectStage {
    /// The static analyzer proved a hazard (bank conflicts,
    /// coalescing, bounds, occupancy) from the access spec alone.
    Static,
    /// The differential harness found a result that is not
    /// bit-identical to the CPU fused oracle, or the kernel failed to
    /// launch at all.
    Differential,
    /// Profiling the candidate on a training shape failed.
    Profile,
}

impl std::fmt::Display for RejectStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RejectStage::Static => "static",
            RejectStage::Differential => "differential",
            RejectStage::Profile => "profile",
        })
    }
}

/// A geometry the tuner refused to ship, and why.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rejection {
    /// The candidate.
    pub geometry: TileGeometry,
    /// The gate that refused it.
    pub stage: RejectStage,
    /// Human-readable cause.
    pub reason: String,
}

/// One tuned decision for one shape.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TunedChoice {
    /// The geometry predicted fastest (with the default-bias margin).
    pub geometry: TileGeometry,
    /// Model-predicted kernel time at this shape, seconds.
    pub pred_time_s: f64,
    /// Model-predicted kernel energy at this shape, joules.
    pub pred_energy_j: f64,
    /// The lowest-predicted-energy admitted geometry that is
    /// [`TileGeometry::bit_compatible`] with `geometry` — the variant
    /// an energy-budgeted server may route to without changing a
    /// single result bit. `None` when `geometry` is already the
    /// cheapest in its bit-compatibility class.
    pub low_power: Option<TileGeometry>,
    /// Predicted energy of `low_power` (equals `pred_energy_j` when
    /// `low_power` is `None`).
    pub low_power_energy_j: f64,
}

/// A [`TunedChoice`] tagged with the shape it was made for.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TunedPick {
    /// Source count.
    pub m: usize,
    /// Target count.
    pub n: usize,
    /// Point dimension.
    pub k: usize,
    /// The decision.
    pub choice: TunedChoice,
}

/// Everything the tuner needs to run.
#[derive(Debug, Clone)]
pub struct TuneConfig {
    /// The device model to tune for.
    pub device: DeviceConfig,
    /// Shapes profiled to fit the cost model.
    pub train_shapes: Vec<ProblemShape>,
    /// Shapes to emit picks for (model-only; need not be trained).
    pub pick_shapes: Vec<ProblemShape>,
    /// Shape of the differential admission run (padded per geometry).
    pub admission_shape: ProblemShape,
    /// Seed of the train/holdout split.
    pub seed: u64,
    /// Fraction of samples held out for error reporting.
    pub holdout_frac: f64,
    /// The paper default wins any comparison it loses by less than
    /// this relative margin — mispredictions inside the band can only
    /// ever fall back to the known-good geometry, never away from it.
    pub default_margin: f64,
    /// Candidate override for targeted runs; `None` sweeps the full
    /// legal lattice.
    pub candidates: Option<Vec<TileGeometry>>,
}

impl TuneConfig {
    /// A config with the standard knobs and no shapes yet.
    #[must_use]
    pub fn new(device: DeviceConfig) -> Self {
        Self {
            device,
            train_shapes: Vec::new(),
            pick_shapes: Vec::new(),
            admission_shape: ProblemShape::new(256, 256, 16),
            seed: 0x5EED,
            holdout_frac: 0.2,
            default_margin: 0.03,
            candidates: None,
        }
    }

    /// The smoke-grid config the CI `tune-bench` job runs: trains on
    /// the bench smoke sweep plus tail-bound small shapes, picks for
    /// the same grid plus non-paper shapes where the default geometry
    /// wastes most of the device.
    #[must_use]
    pub fn smoke(device: DeviceConfig) -> Self {
        let mut cfg = Self::new(device);
        cfg.train_shapes = vec![
            ProblemShape::new(1024, 1024, 32),
            ProblemShape::new(1024, 1024, 256),
            ProblemShape::new(4096, 1024, 32),
            ProblemShape::new(4096, 1024, 256),
            ProblemShape::new(256, 256, 64),
            ProblemShape::new(512, 512, 32),
            ProblemShape::new(2048, 512, 128),
        ];
        cfg.pick_shapes = vec![
            ProblemShape::new(1024, 1024, 32),
            ProblemShape::new(1024, 1024, 256),
            ProblemShape::new(4096, 1024, 32),
            ProblemShape::new(4096, 1024, 256),
            ProblemShape::new(256, 256, 64),
            ProblemShape::new(384, 256, 96),
        ];
        cfg
    }
}

/// The tuner's full output: what survived, what was refused, the
/// evidence, the fitted model, and the decisions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneOutcome {
    /// Geometries that passed every gate, in lattice order.
    pub admitted: Vec<TileGeometry>,
    /// Geometries refused, with the stage and reason.
    pub rejected: Vec<Rejection>,
    /// The profiled evidence the model was fitted on.
    pub samples: Vec<Sample>,
    /// The fitted two-headed cost model.
    pub model: CostModel,
    /// Holdout error of the fit.
    pub fit: FitReport,
    /// Per-shape decisions for [`TuneConfig::pick_shapes`].
    pub picks: Vec<TunedPick>,
}

impl TuneOutcome {
    /// The decision for a shape: the stored pick when one exists,
    /// otherwise a fresh model-only selection (no replay either way).
    #[must_use]
    pub fn choice_for(&self, shape: &ProblemShape, dev: &DeviceConfig, margin: f64) -> TunedChoice {
        for p in &self.picks {
            if (p.m, p.n, p.k) == (shape.m, shape.n, shape.k) {
                return p.choice;
            }
        }
        select(&self.model, &self.admitted, shape, dev, margin)
    }
}

/// Deterministic pseudo-random operand data for the differential run.
fn lcg_vec(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) * 0.5
        })
        .collect()
}

fn host_norms(pts: &[f32], rows: usize, k: usize) -> Vec<f32> {
    (0..rows)
        .map(|i| pts[i * k..(i + 1) * k].iter().map(|v| v * v).sum())
        .collect()
}

/// The differential admission gate: runs the fused kernel at `geo`
/// on `shape` (padded to the geometry) under the sequential
/// (`run_counted`) schedule and demands bit-identity with the
/// geometry-aware CPU fused oracle — the same reduction-order
/// contract the serve ladder's CPU/GPU cross-checks rely on.
///
/// # Errors
/// Returns a description of the first divergence: a launch failure,
/// or the first row whose bits differ from the oracle's. A geometry
/// that errors here is rejected by the tuner, not shipped.
pub fn admit_geometry(
    dev_cfg: &DeviceConfig,
    geo: &TileGeometry,
    shape: &ProblemShape,
) -> Result<(), String> {
    let p = shape.padded_for(geo);
    let shape = GemmShape {
        m: p.m,
        n: p.n,
        k: p.k,
    };
    let bw = Bandwidth { h: 1.0 };
    let a = lcg_vec(shape.m * shape.k, 0xAD417 ^ geo.block_m as u64);
    let b = lcg_vec(shape.k * shape.n, 0xAD418 ^ geo.block_n as u64);
    let w = lcg_vec(shape.n, 0xAD419);
    let a2 = host_norms(&a, shape.m, shape.k);
    let b2 = host_norms(&b, shape.n, shape.k);

    let mut dev = GpuDevice::new(dev_cfg.clone());
    let ops = GemmOperands {
        a: dev.upload(&a),
        b: dev.upload(&b),
    };
    let (ba2, bb2, bw_buf, bv) = (
        dev.upload(&a2),
        dev.upload(&b2),
        dev.upload(&w),
        dev.alloc(shape.m),
    );
    let kernel =
        FusedKernelSummation::new(ops, ba2, bb2, bw_buf, bv, shape, bw).with_geometry(*geo);
    dev.run_counted(&kernel)
        .map_err(|e| format!("launch failed: {e}"))?;
    let got = dev.download(bv);
    let want =
        ks_gpu_kernels::fused_oracle(geo, &a, &b, &a2, &b2, &w, shape.m, shape.n, shape.k, bw.h);
    for (i, (g, x)) in got.iter().zip(want.iter()).enumerate() {
        if g.to_bits() != x.to_bits() {
            return Err(format!(
                "row {i} diverges from the fused oracle at {}x{}x{}: {g} vs {x}",
                shape.m, shape.n, shape.k
            ));
        }
    }
    Ok(())
}

/// The static gate: proves the fused kernel at `geo` clean from its
/// declared access spec alone (zero replay). Follows the serve
/// admission policy — only a *positive* proof of a violation rejects;
/// an unprovable spec passes through to the differential gate.
///
/// # Errors
/// Returns the analyzer's findings when the proof fails.
pub fn static_gate(
    dev_cfg: &DeviceConfig,
    geo: &TileGeometry,
    shape: &ProblemShape,
) -> Result<(), String> {
    let (kernel, _dev) = shadow_kernel(dev_cfg, geo, shape);
    match kernel.access_spec() {
        Some(spec) if spec.is_affine() => {
            let (report, _) = analyze_spec(dev_cfg, &kernel, &spec);
            if report.is_clean() {
                Ok(())
            } else {
                Err(report
                    .findings
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("; "))
            }
        }
        _ => Ok(()),
    }
}

/// Builds the fused kernel at `geo` over virtual buffers sized for
/// the padded shape. The device is returned alongside so profiling
/// can launch the exact kernel the gates inspected.
fn shadow_kernel(
    dev_cfg: &DeviceConfig,
    geo: &TileGeometry,
    shape: &ProblemShape,
) -> (FusedKernelSummation, GpuDevice) {
    let p = shape.padded_for(geo);
    let shape = GemmShape {
        m: p.m,
        n: p.n,
        k: p.k,
    };
    let mut dev = GpuDevice::new(dev_cfg.clone());
    let ops = GemmOperands {
        a: dev.alloc_virtual(shape.m * shape.k),
        b: dev.alloc_virtual(shape.k * shape.n),
    };
    let a2 = dev.alloc_virtual(shape.m);
    let b2 = dev.alloc_virtual(shape.n);
    let w = dev.alloc_virtual(shape.n);
    let v = dev.alloc_virtual(shape.m);
    let kernel = FusedKernelSummation::new(ops, a2, b2, w, v, shape, Bandwidth { h: 1.0 })
        .with_geometry(*geo);
    (kernel, dev)
}

/// Profiles `geo` at `shape`: one traffic replay through the memory
/// system and timing model, plus the energy model over the exact
/// counters.
///
/// # Errors
/// Returns the launch error message when the device refuses the
/// kernel.
pub fn profile_geometry(
    dev_cfg: &DeviceConfig,
    geo: &TileGeometry,
    shape: &ProblemShape,
) -> Result<Sample, String> {
    let (kernel, mut dev) = shadow_kernel(dev_cfg, geo, shape);
    let kp = dev.launch(&kernel).map_err(|e| format!("{e}"))?;
    let energy = kernel_energy(&EnergyParams::default(), &kp).total_j();
    let time = kp.timing.time_s;
    if !(time > 0.0 && energy > 0.0) {
        return Err(format!("degenerate profile: time {time}, energy {energy}"));
    }
    Ok(Sample {
        geometry: *geo,
        m: shape.m,
        n: shape.n,
        k: shape.k,
        time_s: time,
        energy_j: energy,
    })
}

/// Model-only selection for one shape over the admitted candidates.
/// The argmin of predicted time wins unless the paper default is
/// within `margin` of it, in which case the default wins — a
/// misprediction inside the band can only fall back to the known-good
/// geometry. Also derives the bit-compatible low-power alternative.
#[must_use]
pub fn select(
    model: &CostModel,
    admitted: &[TileGeometry],
    shape: &ProblemShape,
    dev: &DeviceConfig,
    margin: f64,
) -> TunedChoice {
    assert!(
        !admitted.is_empty(),
        "no admitted geometries to select from"
    );
    let default = TileGeometry::paper_default();
    let mut best = admitted[0];
    let mut best_t = model.predict_time_s(&best, shape, dev);
    for geo in &admitted[1..] {
        let t = model.predict_time_s(geo, shape, dev);
        if t < best_t {
            best = *geo;
            best_t = t;
        }
    }
    if admitted.contains(&default) && best != default {
        let t_default = model.predict_time_s(&default, shape, dev);
        if t_default <= best_t * (1.0 + margin) {
            best = default;
            best_t = t_default;
        }
    }
    let best_e = model.predict_energy_j(&best, shape, dev);

    // Energy-aware alternative: cheapest predicted energy inside the
    // bit-compatibility class of the pick.
    let mut low = best;
    let mut low_e = best_e;
    for geo in admitted {
        if !geo.bit_compatible(&best) {
            continue;
        }
        let e = model.predict_energy_j(geo, shape, dev);
        if e < low_e {
            low = *geo;
            low_e = e;
        }
    }
    TunedChoice {
        geometry: best,
        pred_time_s: best_t,
        pred_energy_j: best_e,
        low_power: (low != best).then_some(low),
        low_power_energy_j: low_e,
    }
}

/// Runs the full tuner: gates, profiling, fit, picks.
///
/// # Panics
/// Panics when no geometry survives the gates or the config has no
/// training shapes — both indicate a broken config, not a tunable
/// condition.
#[must_use]
pub fn tune(cfg: &TuneConfig) -> TuneOutcome {
    assert!(
        !cfg.train_shapes.is_empty(),
        "tuner needs at least one training shape"
    );
    let candidates = cfg
        .candidates
        .clone()
        .unwrap_or_else(|| TileGeometry::lattice(&cfg.device));

    let mut admitted = Vec::new();
    let mut rejected = Vec::new();
    for geo in candidates {
        if let Err(reason) = static_gate(&cfg.device, &geo, &cfg.admission_shape) {
            rejected.push(Rejection {
                geometry: geo,
                stage: RejectStage::Static,
                reason,
            });
            continue;
        }
        if let Err(reason) = admit_geometry(&cfg.device, &geo, &cfg.admission_shape) {
            rejected.push(Rejection {
                geometry: geo,
                stage: RejectStage::Differential,
                reason,
            });
            continue;
        }
        admitted.push(geo);
    }
    assert!(
        !admitted.is_empty(),
        "every candidate geometry was rejected; device model or gates are broken"
    );

    let mut samples = Vec::new();
    let mut profiled = Vec::new();
    'geo: for geo in admitted {
        let mut geo_samples = Vec::new();
        for shape in &cfg.train_shapes {
            match profile_geometry(&cfg.device, &geo, shape) {
                Ok(s) => geo_samples.push(s),
                Err(reason) => {
                    rejected.push(Rejection {
                        geometry: geo,
                        stage: RejectStage::Profile,
                        reason: format!("at {shape}: {reason}"),
                    });
                    continue 'geo;
                }
            }
        }
        samples.extend(geo_samples);
        profiled.push(geo);
    }
    let admitted = profiled;

    let (model, fit_report) = fit(&samples, &cfg.device, cfg.seed, cfg.holdout_frac);
    let picks = cfg
        .pick_shapes
        .iter()
        .map(|shape| {
            let choice = select(&model, &admitted, shape, &cfg.device, cfg.default_margin);
            TunedPick {
                m: shape.m,
                n: shape.n,
                k: shape.k,
                choice,
            }
        })
        .collect();

    TuneOutcome {
        admitted,
        rejected,
        samples,
        model,
        fit: fit_report,
        picks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ks_gpu_sim::fault::FaultSpec;

    /// A handful of lattice points spanning block sizes, kept small so
    /// debug-build tests stay quick; the full lattice runs in release
    /// through the integration tests and CI.
    fn small_candidates(dev: &DeviceConfig) -> Vec<TileGeometry> {
        let lattice = TileGeometry::lattice(dev);
        let default = TileGeometry::paper_default();
        let mut picked: Vec<TileGeometry> = lattice
            .iter()
            .copied()
            .filter(|g| {
                (g.block_m, g.block_n) != (default.block_m, default.block_n)
                    && g.double_buffer_depth == 2
            })
            .step_by(7)
            .take(6)
            .collect();
        picked.push(default);
        picked
    }

    fn tiny_config(dev: DeviceConfig) -> TuneConfig {
        let mut cfg = TuneConfig::new(dev.clone());
        cfg.candidates = Some(small_candidates(&dev));
        cfg.train_shapes = vec![
            ProblemShape::new(256, 256, 16),
            ProblemShape::new(512, 256, 32),
            ProblemShape::new(256, 512, 16),
        ];
        cfg.pick_shapes = vec![
            ProblemShape::new(256, 256, 16),
            ProblemShape::new(320, 320, 24),
        ];
        cfg.holdout_frac = 0.25;
        cfg
    }

    #[test]
    fn tune_is_deterministic_and_produces_picks() {
        let cfg = tiny_config(DeviceConfig::gtx970());
        let a = tune(&cfg);
        let b = tune(&cfg);
        assert_eq!(a, b, "tuner must be deterministic for a fixed config");
        assert_eq!(a.picks.len(), cfg.pick_shapes.len());
        assert!(!a.admitted.is_empty());
        for p in &a.picks {
            assert!(p.choice.pred_time_s > 0.0 && p.choice.pred_time_s.is_finite());
            assert!(p.choice.pred_energy_j > 0.0 && p.choice.pred_energy_j.is_finite());
            if let Some(low) = p.choice.low_power {
                assert!(low.bit_compatible(&p.choice.geometry));
                assert!(p.choice.low_power_energy_j <= p.choice.pred_energy_j);
            }
        }
    }

    #[test]
    fn gates_admit_the_paper_default_on_the_reference_device() {
        let dev = DeviceConfig::gtx970();
        let geo = TileGeometry::paper_default();
        let shape = ProblemShape::new(256, 256, 16);
        static_gate(&dev, &geo, &shape).expect("default must pass the static gate");
        admit_geometry(&dev, &geo, &shape).expect("default must pass the differential gate");
    }

    #[test]
    fn faulty_device_fails_the_differential_gate() {
        let mut dev = DeviceConfig::gtx970();
        // A deterministic register-flip fault: the kernel computes,
        // but not the oracle's bits — exactly what the gate exists to
        // refuse.
        dev.fault = Some(FaultSpec::parse("seed=9,reg=64").expect("valid spec"));
        let geo = TileGeometry::paper_default();
        let err = admit_geometry(&dev, &geo, &ProblemShape::new(256, 256, 16))
            .expect_err("bit divergence must be refused");
        assert!(
            err.contains("diverges") || err.contains("launch failed"),
            "unexpected rejection: {err}"
        );
    }

    #[test]
    fn choice_for_falls_back_to_model_selection_on_unknown_shapes() {
        let cfg = tiny_config(DeviceConfig::gtx970());
        let out = tune(&cfg);
        let unknown = ProblemShape::new(640, 256, 40);
        let c = out.choice_for(&unknown, &cfg.device, cfg.default_margin);
        assert!(out.admitted.contains(&c.geometry));
        // And the stored pick is returned verbatim for known shapes.
        let known = cfg.pick_shapes[0];
        let stored = out.choice_for(&known, &cfg.device, cfg.default_margin);
        assert_eq!(stored, out.picks[0].choice);
    }
}
