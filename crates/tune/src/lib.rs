//! Tile-geometry autotuner for the fused kernel-summation pipeline.
//!
//! The paper fixes one geometry — 128×128 blocks, 8×8 microtiles,
//! rank-8 K-tiles — chosen by hand for the GTX 970 at large shapes.
//! This crate searches the whole legal geometry lattice instead, and
//! ships only candidates that survive three gates:
//!
//! 1. **Static gate** ([`static_gate`]): the symbolic analyzer proves
//!    the kernel free of bank conflicts, uncoalesced access, bounds
//!    and occupancy hazards from its declared access spec — zero
//!    replay.
//! 2. **Differential gate** ([`admit_geometry`]): the kernel's output
//!    under the sequential schedule must be bit-identical to the
//!    geometry-aware CPU fused oracle. A geometry that cannot meet
//!    the serve ladder's reduction-order contract is rejected, not
//!    shipped.
//! 3. **Profiling** ([`profile_geometry`]): one exact-counter traffic
//!    replay per training shape, feeding the energy model.
//!
//! The profiled evidence fits a log-linear ridge [`CostModel`]
//! (closed-form features, seeded train/holdout split, reported
//! holdout error). After the fit, picks for *any* shape come from the
//! model alone ([`select`]) — no candidate replay — with a safety
//! margin that lets the paper default win near-ties, and an
//! energy-aware alternative restricted to the pick's
//! bit-compatibility class so an energy-budgeted server can downshift
//! without changing a single result bit.

pub mod features;
pub mod model;
pub mod tuner;

pub use features::{features, ProblemShape, N_FEATURES};
pub use model::{fit, CostModel, FitReport, LinearHead, Sample};
pub use tuner::{
    admit_geometry, profile_geometry, select, static_gate, tune, RejectStage, Rejection,
    TuneConfig, TuneOutcome, TunedChoice, TunedPick,
};
