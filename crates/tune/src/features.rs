//! Feature extraction: geometry × problem shape → the regressor
//! inputs of the learned cost model.
//!
//! The simulator's timing model is a max over per-resource cycle
//! terms (issue/core, LSU, DRAM, exposed latency) plus barrier and
//! launch overhead, scaled by the partial-wave tail effect. The
//! features below are closed-form proxies for exactly those terms —
//! all computable from the geometry and the padded shape alone, with
//! **zero replay** — so a log-linear model over them can recover the
//! measured time to within a few percent and, more importantly,
//! preserve the *ordering* of candidate geometries.

use ks_gpu_kernels::gemm_engine::syncs_per_block;
use ks_gpu_kernels::TileGeometry;
use ks_gpu_sim::config::DeviceConfig;

/// Number of regressor inputs (including the intercept).
pub const N_FEATURES: usize = 11;

/// A problem shape as the tuner sees it: raw (unpadded) dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProblemShape {
    /// Source count.
    pub m: usize,
    /// Target count.
    pub n: usize,
    /// Point-space dimension.
    pub k: usize,
}

impl ProblemShape {
    /// Creates a shape; all dimensions must be positive.
    #[must_use]
    pub fn new(m: usize, n: usize, k: usize) -> Self {
        assert!(m > 0 && n > 0 && k > 0, "shape dimensions must be positive");
        Self { m, n, k }
    }

    /// The shape after padding to `geo`'s tiling constraints, the way
    /// the serve executor pads batches.
    #[must_use]
    pub fn padded_for(&self, geo: &TileGeometry) -> ProblemShape {
        ProblemShape {
            m: self.m.next_multiple_of(geo.block_m),
            n: self.n.next_multiple_of(geo.block_n),
            k: self.k.next_multiple_of(geo.tile_k.max(4)),
        }
    }
}

impl std::fmt::Display for ProblemShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}x{}", self.m, self.n, self.k)
    }
}

/// The feature vector of one (geometry, shape) pair on `dev`. Every
/// entry is finite for any feasible geometry and positive shape:
/// logarithms are only taken of quantities that are provably ≥ 1.
#[must_use]
pub fn features(geo: &TileGeometry, shape: &ProblemShape, dev: &DeviceConfig) -> [f64; N_FEATURES] {
    let p = shape.padded_for(geo);
    let (m, n, k) = (p.m as f64, p.n as f64, p.k as f64);
    let blocks = (p.m / geo.block_m) as f64 * (p.n / geo.block_n) as f64;
    let tiles = (p.k / geo.tile_k) as f64;
    let warps = geo.warps_per_block() as f64;
    let (mm, mn) = (geo.micro_m as f64, geo.micro_n as f64);
    let (bm, bn) = (geo.block_m as f64, geo.block_n as f64);
    let tk = geo.tile_k as f64;

    // Core/issue proxy: warp-level FFMAs of the GEMM inner loop
    // (exact closed form — blocks · tiles · tk steps · warps · mm·mn
    // per warp-step).
    let ffma = blocks * tiles * tk * warps * mm * mn;
    // LSU proxy: staging stores (one scalar word per tile element)
    // plus compute fragment loads per k-step.
    let sts = blocks * tiles * (bm + bn) * tk / 32.0;
    let lds = blocks * tiles * tk * warps * (mm + mn) / 2.0;
    // Global-load instructions: V4 tile fetches.
    let ldg = blocks * tiles * (bm + bn) * tk / 128.0;
    // DRAM traffic brackets in bytes: compulsory (every operand byte
    // once) vs no-reuse-across-blocks (each tile refetched per block
    // row/column).
    let dram_lb = 4.0 * (m * k + n * k + m);
    let dram_ub = 4.0 * k * (m * (n / bn) + n * (m / bm));
    // Barrier executions (exact closed form from the engine).
    let syncs = blocks * warps * syncs_per_block(geo, p.k) as f64;

    let occ = geo.occupancy(dev);
    let blocks_per_wave = (occ.blocks_per_sm as f64 * f64::from(dev.num_sms)).max(1.0);
    let exact_waves = blocks / blocks_per_wave;
    // Tail effect ≥ 1: partial last wave leaves SMs idle.
    let sm_scale = (exact_waves.ceil() / exact_waves).max(1.0);

    [
        1.0,
        ffma.ln(),
        (sts + lds).ln(),
        ldg.max(1.0).ln(),
        dram_lb.ln(),
        dram_ub.ln(),
        syncs.max(1.0).ln(),
        sm_scale.ln(),
        occ.fraction,
        f64::from(occ.warps_per_sm.max(1)).ln(),
        (geo.double_buffer_depth - 1) as f64,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn features_are_finite_over_the_lattice() {
        let dev = DeviceConfig::gtx970();
        let shapes = [
            ProblemShape::new(1, 1, 1),
            ProblemShape::new(1024, 1024, 32),
            ProblemShape::new(524_288, 1024, 256),
        ];
        for geo in TileGeometry::lattice(&dev) {
            for s in &shapes {
                for (i, f) in features(&geo, s, &dev).iter().enumerate() {
                    assert!(f.is_finite(), "{geo} {s} feature {i} = {f}");
                }
            }
        }
    }

    #[test]
    fn padding_rounds_up_to_the_geometry() {
        let geo = TileGeometry::paper_default();
        let p = ProblemShape::new(100, 70, 5).padded_for(&geo);
        assert_eq!((p.m, p.n, p.k), (128, 128, 8));
        let small = TileGeometry {
            block_m: 32,
            block_n: 32,
            tile_k: 4,
            micro_m: 4,
            micro_n: 4,
            ..geo
        };
        let q = ProblemShape::new(100, 70, 5).padded_for(&small);
        assert_eq!((q.m, q.n, q.k), (128, 96, 8));
    }

    #[test]
    fn tail_heavy_small_grids_raise_the_wave_feature() {
        let dev = DeviceConfig::gtx970();
        let geo = TileGeometry::paper_default();
        let tiny = features(&geo, &ProblemShape::new(256, 256, 32), &dev);
        let big = features(&geo, &ProblemShape::new(8192, 1024, 32), &dev);
        // Feature 7 is ln(sm_scale): 4 blocks on 13 SMs is heavily
        // tail-bound, 512 blocks barely.
        assert!(tiny[7] > big[7]);
    }
}
